"""Figure 4 (+ §4.2): MPPM STP/ANTT accuracy versus detailed simulation.

Paper shape: average STP error of 1.4%/1.6%/1.7% and ANTT error of
1.5%/1.9%/2.1% for 2/4/8 cores on configuration #1, and 2.3%/2.9% for
16 cores on configuration #4; predicted and measured values cluster
around the bisector of the scatter plot.
"""

from conftest import run_once

from repro.experiments.accuracy import accuracy_experiment


def test_fig4_stp_antt_accuracy(benchmark, setup):
    result = run_once(
        benchmark,
        accuracy_experiment,
        setup,
        core_counts=(2, 4, 8),
        mixes_per_core_count=30,
        llc_config=1,
        include_16_core=True,
        mixes_16_core=8,
        llc_config_16_core=4,
    )
    print()
    print(result.render())

    for entry in result.per_core_count:
        # The paper's errors are ~2-3%; allow headroom while still
        # requiring "accurate" in any reasonable sense.
        assert entry.average_stp_error < 0.10, f"{entry.num_cores}-core STP error too large"
        assert entry.average_antt_error < 0.12, f"{entry.num_cores}-core ANTT error too large"
        # Scatter points straddle the bisector rather than lying on one side
        # by a wide margin.
        scatter = entry.stp_scatter()
        assert all(point["predicted"] > 0 and point["measured"] > 0 for point in scatter)
