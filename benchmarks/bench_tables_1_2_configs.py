"""Tables 1 and 2: baseline machine and LLC design space.

Regenerates the two configuration tables of the paper (at paper scale
and at the scaled-down experiment scale) and sanity-checks the six LLC
design points.
"""

from conftest import run_once

from repro.experiments.configurations import configuration_tables


def test_tables_1_and_2(benchmark, setup):
    tables = run_once(benchmark, configuration_tables, setup)
    print()
    print(tables.render())

    rows = tables.to_rows()
    assert len(rows) == 6
    # Table 2 shape: sizes 512KB/1MB/2MB, associativities 8 and 16.
    assert [row["size_KB"] for row in rows] == [512, 512, 1024, 1024, 2048, 2048]
    assert [row["associativity"] for row in rows] == [8, 16, 8, 16, 8, 16]
    # Latency grows with size and associativity (the design trade-off that
    # makes the ranking experiment non-trivial).
    latencies = [row["latency"] for row in rows]
    assert latencies == [16, 20, 18, 22, 20, 24]
