"""Benchmark guard: the heapq ready queue versus the linear min-scan.

The multi-core reference simulator picks, per LLC access, the core
whose next access is ready earliest.  The historical implementation
scanned all cores (O(num_cores) per access); the default now keeps a
binary heap (O(log num_cores)).  This guard times both variants on the
same 8-core mix and asserts (generously, to stay robust on noisy
machines) that the heap is not slower — on wider machines the gap
grows with the core count.
"""

from __future__ import annotations

import time

import pytest

from conftest import run_once
from repro.simulators import MultiCoreSimulator
from repro.workloads import sample_mixes


def _eight_core_traces(setup):
    machine = setup.machine(num_cores=8, llc_config=1)
    mix = sample_mixes(setup.benchmark_names, 8, 1, seed=7)[0]
    return machine, setup.llc_traces(mix, machine)


@pytest.mark.parametrize("ready_queue", ["heap", "scan"])
def test_ready_queue_variants(benchmark, setup, ready_queue):
    machine, traces = _eight_core_traces(setup)
    simulator = MultiCoreSimulator(machine, ready_queue=ready_queue)
    result = run_once(benchmark, simulator.run, traces)
    assert result.num_cores == 8


def test_heap_is_not_slower_than_scan(setup):
    """The guard: median-of-three timings, with a generous 1.25x margin."""
    machine, traces = _eight_core_traces(setup)

    def median_seconds(simulator):
        timings = []
        for _ in range(3):
            start = time.perf_counter()
            simulator.run(traces)
            timings.append(time.perf_counter() - start)
        return sorted(timings)[1]

    heap_seconds = median_seconds(MultiCoreSimulator(machine, ready_queue="heap"))
    scan_seconds = median_seconds(MultiCoreSimulator(machine, ready_queue="scan"))
    assert heap_seconds <= 1.25 * scan_seconds, (
        f"heap ready queue regressed: {heap_seconds:.4f}s vs scan {scan_seconds:.4f}s"
    )


def test_heap_and_scan_agree_at_experiment_scale(setup):
    machine, traces = _eight_core_traces(setup)
    heap_result = MultiCoreSimulator(machine, ready_queue="heap").run(traces)
    scan_result = MultiCoreSimulator(machine, ready_queue="scan").run(traces)
    assert heap_result == scan_result
