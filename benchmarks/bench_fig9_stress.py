"""Figure 9 (+ §6): identifying stress workloads.

Paper shape: sorting the workload mixes by measured STP, the MPPM curve
tracks the detailed-simulation curve closely, and MPPM finds almost all
of the worst-case mixes (23 of the paper's worst 25).  The worst mixes
are dominated by gamess, the suite's most sharing-sensitive benchmark.
"""

from conftest import run_once

from repro.experiments.stress import benchmark_sensitivity, stress_experiment


def test_fig9_stress_workloads(benchmark, setup):
    result = run_once(
        benchmark, stress_experiment, setup, num_cores=4, llc_config=1, num_mixes=60, worst_k=10
    )
    print()
    print(result.render())

    sensitivity = benchmark_sensitivity(result.evaluations)
    print()
    print(sensitivity.render())

    measured = result.measured_stp_curve()
    predicted = result.predicted_stp_curve()
    # The measured curve is sorted by construction; MPPM's curve follows it
    # (strongly increasing trend: the first quarter is clearly below the
    # last quarter).
    quarter = max(1, len(predicted) // 4)
    assert sum(predicted[:quarter]) / quarter < sum(predicted[-quarter:]) / quarter
    # MPPM identifies most of the worst-case workloads (paper: 23 of 25).
    assert result.worst_case_overlap() >= int(0.6 * result.worst_k)
    # gamess is the most contention-sensitive benchmark of the suite (§6).
    assert sensitivity.most_sensitive() == "gamess"
    assert sensitivity.max_slowdown("gamess") > 1.8
