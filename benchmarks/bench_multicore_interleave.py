"""Benchmark guard: the chunked interleaving kernel versus the reference loops.

The detailed multi-core simulator interleaves per-core LLC traces into
one shared-LLC access stream.  The per-access reference kernels
(``heap``, ``scan``) walk that stream one element at a time in Python;
the default ``chunked`` kernel speculates whole windows — it proposes a
global order from estimated ready times, replays it against the batched
per-set LRU, and commits the prefix whose exact ready times confirm the
proposal, rolling the rest back.  This guard asserts that all three
kernels stay bit-identical (including on a duplicated-program mix,
where ready-time ties are the common case) *and* that the chunked
kernel keeps its speedup — so a silent fallback to the reference path
(or a regression that slows the kernel to parity) fails the build.

Timing methodology: the kernels are measured *interleaved* (each round
times every kernel back to back) and scored by per-kernel minimum
across rounds.  Host frequency drift on shared runners can swing
repeated runs of identical code by >10%; interleaving keeps both
kernels inside the same drift envelope so the ratio stays meaningful.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_multicore_interleave.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro.config import baseline_machine, scaled
from repro.profiling import ProfileStore
from repro.simulators import MultiCoreSimulator
from repro.workloads import small_suite

#: The timed workload: the four most heterogeneous benchmarks of the
#: small suite on the scaled 4-core Table-2 machine (LLC config #1).
MIX = ("gamess", "mcf", "soplex", "lbm")
SCALE = 16
#: Full mode: long traces so per-access Python costs dominate the
#: reference loop and the chunked walk amortises its numpy setup.
DEFAULT_INSTRUCTIONS = 800_000
#: Speedup floor at the default scale (measured 2.1-2.8x across idle
#: hosts; the margin absorbs machine noise while still catching a
#: fallback, which would measure ~1x).
DEFAULT_FLOOR = 1.7
#: Quick mode: shorter traces for CI smoke.  Fixed numpy overheads eat
#: into the ratio at this size, so the floor only needs to prove the
#: chunked path is live.
QUICK_INSTRUCTIONS = 200_000
QUICK_FLOOR = 1.2

#: The identity sweep also runs a duplicated-program mix: identical
#: gaps make exact ready-time ties the common case, exercising the
#: core-index tie-break on every wave of accesses.
DUP_MIX = ("gamess",) * 4


def _assert_identical(machine, traces):
    """All kernels must produce frozen-dataclass-equal run results."""
    results = {
        kernel: MultiCoreSimulator(machine, kernel=kernel).run(traces)
        for kernel in ("heap", "scan", "chunked")
    }
    for kernel, result in results.items():
        assert result == results["heap"], (
            f"kernel {kernel!r} diverged from the heap reference"
        )


def measure_kernels(
    num_instructions: int = DEFAULT_INSTRUCTIONS, rounds: int = 3
) -> dict:
    """Time the kernels over one 4-core simulation; returns seconds + speedup.

    Interleaved best-of-``rounds`` per kernel (the minimum is the least
    noisy estimator of the true cost), with bit-identity asserted on
    both the timed mix and a duplicated-program mix first.
    """
    store = ProfileStore(
        num_instructions=num_instructions, interval_instructions=4_000, seed=0
    )
    suite = small_suite(6)
    machine = scaled(baseline_machine(num_cores=4, llc_config=1), SCALE)
    traces = [store.get_llc_trace(suite[name], machine) for name in MIX]
    dup_traces = [store.get_llc_trace(suite[name], machine) for name in DUP_MIX]

    _assert_identical(machine, traces)
    _assert_identical(machine, dup_traces)

    simulators = {
        kernel: MultiCoreSimulator(machine, kernel=kernel)
        for kernel in ("chunked", "heap")
    }
    timings = {kernel: [] for kernel in simulators}
    for _ in range(rounds):
        for kernel, simulator in simulators.items():
            start = time.perf_counter()
            simulator.run(traces)
            timings[kernel].append(time.perf_counter() - start)

    chunked_seconds = min(timings["chunked"])
    heap_seconds = min(timings["heap"])
    return {
        "num_instructions": num_instructions,
        "mix": list(MIX),
        "scale": SCALE,
        "rounds": rounds,
        "chunked_seconds": chunked_seconds,
        "heap_seconds": heap_seconds,
        "speedup": heap_seconds / chunked_seconds,
    }


def run_guard(quick: bool = False) -> dict:
    """Measure and enforce the speedup floor; returns the measurement."""
    result = measure_kernels(
        num_instructions=QUICK_INSTRUCTIONS if quick else DEFAULT_INSTRUCTIONS
    )
    floor = QUICK_FLOOR if quick else DEFAULT_FLOOR
    print(
        f"4-core interleaving of {'/'.join(result['mix'])} "
        f"({result['num_instructions']} instructions per trace): "
        f"chunked {result['chunked_seconds']:.3f}s, "
        f"heap {result['heap_seconds']:.3f}s "
        f"-> speedup {result['speedup']:.1f}x (floor {floor:.1f}x)"
    )
    assert result["speedup"] >= floor, (
        f"chunked interleaving kernel regressed (or silently fell back "
        f"to the reference path): {result['speedup']:.2f}x < required "
        f"{floor:.1f}x"
    )
    return result


def test_multicore_interleave_guard():
    """Pytest entry point: full default-scale guard."""
    run_guard(quick=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short traces + relaxed floor (CI smoke: catches a fallback, "
        "tolerates shared-runner noise)",
    )
    args = parser.parse_args()
    result = run_guard(quick=args.quick)
    from perf_snapshot import round_floats, write_snapshot

    write_snapshot("multicore_interleave", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
