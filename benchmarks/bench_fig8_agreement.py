"""Figure 8: pairwise configuration decisions — who gets them right?

Paper shape: comparing configuration #1 against #2..#6, current
practice (a dozen category-sampled mixes, detailed-simulated) disagrees
with MPPM in a substantial fraction of trials for the harder
comparisons (about 40% for #1 vs #6) and, when they disagree, MPPM is
the one that matches the large-sample reference.
"""

from conftest import run_once

from repro.experiments.agreement import agreement_experiment


def test_fig8_pairwise_agreement(benchmark, setup):
    result = run_once(
        benchmark,
        agreement_experiment,
        setup,
        num_trials=12,
        mixes_per_trial=12,
        reference_mixes=40,
        mppm_mixes=200,
        metric="stp",
    )
    print()
    print(result.render())

    for pair in result.pairs:
        fractions = (
            pair.agree_both_right
            + pair.agree_both_wrong
            + pair.disagree_mppm_right
            + pair.disagree_practice_right
        )
        assert abs(fractions - 1.0) < 1e-9

    # Clear-cut comparisons (config #1 against the much larger #5 and #6) are
    # decided correctly by everyone.
    for challenger in (5, 6):
        pair = result.pair(challenger)
        assert pair.agree_both_right >= 0.75

    # The close comparisons (#2..#4) are exactly where a dozen category-sampled
    # mixes mislead: current practice reaches the wrong conclusion in a
    # substantial fraction of trials for at least one of them (the paper's
    # debunking claim).
    close_pairs = [result.pair(challenger) for challenger in (2, 3, 4)]
    assert max(pair.practice_wrong_fraction for pair in close_pairs) >= 0.3
    # Trials frequently disagree with each other / with the large-sample view
    # on the close comparisons.
    assert any(
        pair.disagree_fraction > 0 or pair.agree_both_wrong > 0 for pair in close_pairs
    )
