"""Benchmark: the experiment engine's backends and cache on a real sweep.

Times an accuracy-style sweep (predict + reference-simulate a mix
sample) three ways:

* serial backend (the baseline every experiment used historically),
* a 4-worker process pool (the ``repro run --jobs 4`` path) — on a
  multi-core machine this is where the wall-clock drops; the sweep's
  one-time profiling cost fans out too,
* a warm persistent result cache (the second run of a campaign), which
  should be orders of magnitude faster than either.

Correctness (serial == parallel, bit-identical) is asserted here as
well as in the unit tests, so the timing numbers are comparing equal
work.
"""

from __future__ import annotations

import shutil
import tempfile

import pytest

from conftest import run_once
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.workloads import sample_mixes

#: Sweep shape: 2- and 4-core mixes, as in the Figure 4 accuracy sweep.
SWEEP_CORES = (2, 4)
MIXES_PER_CORE_COUNT = 10


def _sweep_pairs(setup):
    pairs = []
    for num_cores in SWEEP_CORES:
        machine = setup.machine(num_cores=num_cores, llc_config=1)
        for mix in sample_mixes(
            setup.benchmark_names, num_cores, MIXES_PER_CORE_COUNT, seed=23 + num_cores
        ):
            pairs.append((mix, machine))
    return pairs


def _fresh_setup(**kwargs):
    return ExperimentSetup(
        config=ExperimentConfig(scale=16, num_instructions=100_000, interval_instructions=2_000),
        **kwargs,
    )


@pytest.fixture(scope="module")
def reference_evaluations():
    setup = _fresh_setup()
    return setup.evaluate_batch(_sweep_pairs(setup))


def test_engine_serial(benchmark, reference_evaluations):
    setup = _fresh_setup()
    evaluations = run_once(benchmark, setup.evaluate_batch, _sweep_pairs(setup))
    assert evaluations == reference_evaluations


def test_engine_process_pool_4(benchmark, reference_evaluations):
    setup = _fresh_setup(jobs=4)
    try:
        evaluations = run_once(benchmark, setup.evaluate_batch, _sweep_pairs(setup))
    finally:
        setup.close()
    assert evaluations == reference_evaluations


def test_engine_warm_cache(benchmark, reference_evaluations):
    cache_dir = tempfile.mkdtemp(prefix="repro-engine-bench-")
    try:
        cold = _fresh_setup(cache_dir=cache_dir)
        cold.evaluate_batch(_sweep_pairs(cold))

        warm = _fresh_setup(cache_dir=cache_dir)
        evaluations = run_once(benchmark, warm.evaluate_batch, _sweep_pairs(warm))
        assert evaluations == reference_evaluations
        assert warm.store.simulated_profiles == 0
        assert warm.reference_runs() == 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
