"""Benchmark guard: the distributed fleet backend vs serial execution.

The fleet backend's contract is that distribution changes *where* jobs
run and nothing else.  This guard runs the same sweep (MPPM predictions
plus detailed reference simulations) serially and on a two-worker
loopback fleet and enforces:

* **bit-identity** — every fleet prediction and simulation equals the
  serial run's, field for field;
* **fleet-wide dedup** — repeating the sweep on the warm driver stores
  zero new results and dispatches zero jobs; a second, cache-less
  driver attached to the same fleet has every simulate job answered
  from a worker's cache (``remote_cache_hits``) instead of recomputed;
* **liveness** — the wave actually spread over both workers and every
  dispatched job completed.

Wall-clock throughput (jobs/second per phase) is recorded for the
committed snapshot ``BENCH_fleet.json``; on a single-core CI box the
fleet is expected to carry launch/transport overhead, so only the
invariants above gate, never the speed ratio.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from perf_snapshot import round_floats, write_snapshot

from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.workloads import small_suite

PREDICTOR = "mppm:foa"


def _setup(config: ExperimentConfig, benchmarks: int, **kwargs) -> ExperimentSetup:
    return ExperimentSetup(config=config, suite=small_suite(benchmarks), **kwargs)


def run_benchmark(quick: bool, tmp_dir) -> dict:
    benchmarks = 5 if quick else 8
    num_mixes = 4 if quick else 10
    config = ExperimentConfig(
        scale=16,
        num_instructions=20_000 if quick else 50_000,
        interval_instructions=1_000,
    )

    serial = _setup(config, benchmarks)
    machine = serial.machine(num_cores=2)
    mixes = serial.mixes(2, num_mixes, seed=3)

    start = time.perf_counter()
    serial_predictions = serial.predict_many(mixes, machine)
    serial_runs = [run.to_dict() for run in serial.simulate_many(mixes, machine)]
    serial_seconds = time.perf_counter() - start
    serial.close()

    launch_start = time.perf_counter()
    fleet = _setup(
        config, benchmarks, jobs="fleet:localhost:2", cache_dir=tmp_dir / "fleet-cache"
    )
    launch_seconds = time.perf_counter() - launch_start
    try:
        start = time.perf_counter()
        fleet_predictions = fleet.predict_many(mixes, machine)
        fleet_runs = [run.to_dict() for run in fleet.simulate_many(mixes, machine)]
        cold_seconds = time.perf_counter() - start

        assert fleet_predictions == serial_predictions, (
            "fleet predictions differ from the serial run"
        )
        assert fleet_runs == serial_runs, (
            "fleet reference simulations differ from the serial run"
        )

        cold_stats = fleet.engine.backend.stats()
        stores = fleet.engine.cache.stores

        start = time.perf_counter()
        again = fleet.predict_many(mixes, machine)
        warm_seconds = time.perf_counter() - start
        assert again == serial_predictions
        warm_stats = fleet.engine.backend.stats()
        assert fleet.engine.cache.stores == stores, (
            "warm fleet sweep stored new results; the driver cache should "
            "have resolved every job"
        )
        assert warm_stats["dispatched"] == cold_stats["dispatched"], (
            "warm fleet sweep dispatched jobs; the driver cache should have "
            "resolved every one before the backend"
        )
        assert cold_stats["alive"] == 2
        assert cold_stats["completed"] == cold_stats["dispatched"]
        spread = [worker["completed"] for worker in cold_stats["workers"]]
        assert all(done > 0 for done in spread), (
            f"one worker sat idle through the cold wave: {spread}"
        )
    finally:
        fleet.close()

    # A second, cache-less driver on the same (re-launched) fleet: every
    # simulate job must be answered from a worker's persisted cache.
    from repro.engine import Executor
    from repro.engine.remote import FleetBackend

    backend = FleetBackend("fleet:localhost:2", cache_dir=str(tmp_dir / "fleet-cache"))
    try:
        second_driver = _setup(config, benchmarks, engine=Executor(backend=backend))
        second_runs = [
            run.to_dict()
            for run in second_driver.simulate_many(
                second_driver.mixes(2, num_mixes, seed=3),
                second_driver.machine(num_cores=2),
            )
        ]
        assert second_runs == serial_runs
        remote_hits = backend.stats()["remote_cache_hits"]
        assert remote_hits == num_mixes, (
            f"expected every one of {num_mixes} simulate jobs answered from a "
            f"worker cache, got {remote_hits}"
        )
    finally:
        backend.close()

    cold_jobs = cold_stats["dispatched"]
    return {
        "benchmarks": benchmarks,
        "num_mixes": num_mixes,
        "workers": 2,
        "launch_seconds": launch_seconds,
        "serial_seconds": serial_seconds,
        "cold": {
            "seconds": cold_seconds,
            "jobs": cold_jobs,
            "jobs_per_second": cold_jobs / cold_seconds if cold_seconds else 0.0,
            "per_worker_completed": spread,
        },
        "warm": {"seconds": warm_seconds, "dispatched": 0, "stores": 0},
        "second_driver_remote_cache_hits": remote_hits,
        "bit_identical": True,
    }


def main() -> None:
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: short traces, same assertions",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory() as tmp:
        result = run_benchmark(quick=args.quick, tmp_dir=Path(tmp))
    cold = result["cold"]
    print(
        f"serial {result['serial_seconds']:.2f}s; fleet launch "
        f"{result['launch_seconds']:.2f}s, cold {cold['jobs']} jobs in "
        f"{cold['seconds']:.2f}s -> {cold['jobs_per_second']:.1f} jobs/s "
        f"(per-worker {cold['per_worker_completed']}), warm "
        f"{result['warm']['seconds']:.2f}s with zero dispatches"
    )
    print(
        f"second driver: {result['second_driver_remote_cache_hits']} simulate "
        f"jobs answered from worker caches, bit-identical: yes"
    )
    write_snapshot("fleet", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
