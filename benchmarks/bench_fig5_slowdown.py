"""Figure 5: per-program slowdown accuracy.

Paper shape: the per-program slowdown error (about 7% for 2-8 cores,
4.5% for 16 cores) is larger than the STP/ANTT error because positive
and negative per-program errors partially cancel in the aggregate
metrics.
"""

from conftest import run_once

from repro.experiments.accuracy import accuracy_experiment


def test_fig5_per_program_slowdown(benchmark, setup):
    result = run_once(
        benchmark,
        accuracy_experiment,
        setup,
        core_counts=(2, 4, 8),
        mixes_per_core_count=30,
        llc_config=1,
    )
    print()
    print(result.render())

    for entry in result.per_core_count:
        assert entry.average_slowdown_error < 0.15
        scatter = entry.slowdown_scatter()
        # Slowdowns are >= 1 by construction on both axes (a program cannot
        # run faster with co-runners in this contention-only model).
        assert all(point["measured"] > 0.99 for point in scatter)
        assert all(point["predicted"] > 0.99 for point in scatter)

    # The paper observes that the per-program error exceeds the STP error
    # because STP averages out signed errors.
    four_core = result.for_cores(4)
    assert four_core.average_slowdown_error >= four_core.average_stp_error * 0.8
