"""Ablations on the iterative model itself.

Two design choices called out in DESIGN.md:

* the exponential-moving-average smoothing factor of the slowdown
  update (§2.2 of the paper says smoothing matters for phased
  programs), and
* the normalisation of the per-iteration slowdown estimate (the literal
  Figure 2 formula versus the self-consistent one used by default —
  see ``MPPMConfig.literal_figure2_update``).
"""

from conftest import run_once

from repro.experiments.ablations import smoothing_ablation, update_rule_ablation


def test_ablation_smoothing_factor(benchmark, setup):
    result = run_once(
        benchmark,
        smoothing_ablation,
        setup,
        smoothing_factors=(0.0, 0.25, 0.5, 0.75),
        num_mixes=20,
    )
    print()
    print(result.render())

    for row in result.rows:
        assert row.stp_error < 0.15
    # The default (f=0.5) must not be far from the best setting found.
    best = min(row.stp_error for row in result.rows)
    assert result.row("f=0.50").stp_error <= best + 0.03


def test_ablation_update_rule(benchmark, setup):
    result = run_once(benchmark, update_rule_ablation, setup, num_mixes=20)
    print()
    print(result.render())

    self_consistent = result.row("self-consistent")
    literal = result.row("literal Figure 2")
    # The self-consistent update is the package default because it is at
    # least as accurate as the literal formula on this substrate.
    assert self_consistent.stp_error <= literal.stp_error + 0.01
