"""Ablation: the value of MPPM's iterative entanglement modelling.

The paper argues that per-core performance and cache contention are
tightly entangled and must be solved iteratively.  This benchmark
compares full MPPM against two stripped-down predictors: a single
application of the contention model (no iteration, no time-varying
behaviour) and ignoring contention entirely.
"""

from conftest import run_once

from repro.experiments.ablations import iteration_ablation


def test_ablation_iterative_vs_one_shot(benchmark, setup):
    result = run_once(benchmark, iteration_ablation, setup, num_mixes=20)
    print()
    print(result.render())

    mppm = result.row("MPPM (iterative)")
    one_shot = result.row("one-shot contention")
    no_contention = result.row("no contention")

    # Modelling contention at all beats ignoring it, and the full iterative
    # model is at least as accurate as the one-shot variant.
    assert mppm.antt_error <= no_contention.antt_error
    assert mppm.stp_error <= one_shot.stp_error + 0.02
    assert mppm.slowdown_error <= no_contention.slowdown_error
