"""Committed performance snapshots: ``BENCH_<name>.json`` at the repo root.

Every standalone benchmark guard (``bench_singlecore_kernel.py``,
``bench_trace_generation.py``, ``bench_mppm_batch.py``,
``bench_multicore_interleave.py``, ``bench_service.py``) writes its
measurement through :func:`write_snapshot`, so the repo carries a
committed perf trajectory next to the code: a reviewer can diff
``BENCH_service.json`` across PRs the same way they diff test
expectations.  Snapshots record the measurement, the mode (``quick``
CI smoke vs full scale) and the python version; wall-clock numbers are
machine-dependent, so diffs are judged by ratios (speedups, cache-hit
rates, batch sizes), not absolute seconds.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict

#: The repo root (this file lives in ``<root>/benchmarks/``).
REPO_ROOT = Path(__file__).resolve().parent.parent


def snapshot_path(name: str) -> Path:
    return REPO_ROOT / f"BENCH_{name}.json"


def write_snapshot(name: str, measurement: Dict, quick: bool = False) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``measurement`` is the guard's result dict, stored verbatim under
    ``"measurement"``; floats are rounded at the JSON layer only by
    ``round_floats`` callers, not here.
    """
    payload = {
        "benchmark": name,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "measurement": measurement,
    }
    path = snapshot_path(name)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {path.name}", file=sys.stderr)
    return path


def round_floats(value, digits: int = 4):
    """Recursively round floats (snapshot noise control for latency dicts)."""
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {key: round_floats(item, digits) for key, item in value.items()}
    if isinstance(value, list):
        return [round_floats(item, digits) for item in value]
    return value
