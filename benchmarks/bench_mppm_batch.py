"""Benchmark guard: the batched MPPM solver versus the per-mix reference loop.

Exploring the paper's workload space means solving the Figure-2 fixed
point for hundreds to thousands of mixes per sweep.  The default
``"batched"`` kernel solves a whole batch at once over mix-major numpy
state arrays (one vectorized iteration step, a convergence mask
retiring mixes in place); the ``"reference"`` kernel iterates each mix
in pure Python.  This guard asserts, at workload-space scale on the
default experiment configuration, that the two kernels stay
bit-identical for every ``mppm:*`` variant *and* that the batched
kernel keeps its speedup — so a silent fallback to the reference path
(or a regression that slows the kernel to parity) fails the build.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_mppm_batch.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro.contention import make_contention_model
from repro.core import MPPM, MPPMConfig
from repro.experiments import ExperimentConfig, ExperimentSetup

#: Every registered ``mppm:*`` spec as (contention model, config);
#: the equivalence sweep runs all of them, the timing run uses FOA.
VARIANTS = {
    "foa": ("foa", MPPMConfig()),
    "sdc": ("sdc", MPPMConfig()),
    "prob": ("prob", MPPMConfig()),
    "windowed": ("foa", MPPMConfig(use_windowed_cpi=True)),
    "figure2": ("foa", MPPMConfig(literal_figure2_update=True)),
}

#: Full mode: default experiment traces, a workload-space-sized sweep.
DEFAULT_INSTRUCTIONS = 200_000
DEFAULT_MIXES = 300
#: Speedup floor at the default scale (measured ~25x; the margin
#: absorbs machine noise while still catching a fallback or regression).
DEFAULT_FLOOR = 5.0
#: Quick mode: short traces + a small sweep for CI smoke; fixed numpy
#: overheads eat into the ratio at this size, so the floor only needs
#: to prove the batched path is live (a fallback would measure ~1x).
QUICK_INSTRUCTIONS = 50_000
QUICK_MIXES = 64
QUICK_FLOOR = 2.0

#: How many mixes of the sweep go through the all-variant identity check
#: (every mix is checked for the timed FOA variant regardless).
IDENTITY_SLICE = 10


def _assert_identical(reference, batched):
    assert len(reference) == len(batched)
    for ref, bat in zip(reference, batched):
        assert ref.kernel == "reference" and bat.kernel == "batched"
        assert ref.iterations == bat.iterations
        assert ref.converged == bat.converged
        for ref_program, bat_program in zip(ref.programs, bat.programs):
            # Exact equality on purpose: the kernels share op order.
            assert ref_program.predicted_cpi == bat_program.predicted_cpi


def measure_kernels(
    num_instructions: int = DEFAULT_INSTRUCTIONS,
    num_mixes: int = DEFAULT_MIXES,
    rounds: int = 3,
) -> dict:
    """Time both kernels over one mix sweep; returns seconds + speedup.

    Uses best-of-``rounds`` per kernel (the minimum is the least noisy
    estimator of the true cost) and asserts bit-identical results for
    every ``mppm:*`` variant along the way.
    """
    interval = min(4_000, num_instructions // 50)
    setup = ExperimentSetup(
        config=ExperimentConfig(
            num_instructions=num_instructions, interval_instructions=interval
        )
    )
    machine = setup.machine(num_cores=4)
    profiles = setup.profiles(machine)
    mixes = setup.mixes(num_programs=4, num_mixes=num_mixes, seed=0)
    batches = [[profiles[name] for name in mix.programs] for mix in mixes]

    for contention, config in VARIANTS.values():
        model = MPPM(machine, make_contention_model(contention), config)
        slice_ = batches[:IDENTITY_SLICE]
        _assert_identical(
            model.predict_batch(slice_, kernel="reference"),
            model.predict_batch(slice_, kernel="batched"),
        )

    model = MPPM(machine)  # the timed variant: mppm:foa defaults
    _assert_identical(
        model.predict_batch(batches, kernel="reference"),
        model.predict_batch(batches, kernel="batched"),
    )

    def best_of(kernel: str) -> float:
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            model.predict_batch(batches, kernel=kernel)
            timings.append(time.perf_counter() - start)
        return min(timings)

    batched_seconds = best_of("batched")
    reference_seconds = best_of("reference")
    return {
        "num_instructions": num_instructions,
        "num_mixes": num_mixes,
        "variants_checked": sorted(VARIANTS),
        "batched_seconds": batched_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / batched_seconds,
    }


def run_guard(quick: bool = False) -> dict:
    """Measure and enforce the speedup floor; returns the measurement."""
    result = measure_kernels(
        num_instructions=QUICK_INSTRUCTIONS if quick else DEFAULT_INSTRUCTIONS,
        num_mixes=QUICK_MIXES if quick else DEFAULT_MIXES,
    )
    floor = QUICK_FLOOR if quick else DEFAULT_FLOOR
    print(
        f"MPPM solve of {result['num_mixes']} 4-core mixes "
        f"({result['num_instructions']} instructions per trace): "
        f"batched {result['batched_seconds']:.3f}s, "
        f"reference {result['reference_seconds']:.3f}s "
        f"-> speedup {result['speedup']:.1f}x (floor {floor:.1f}x)"
    )
    assert result["speedup"] >= floor, (
        f"batched MPPM kernel regressed (or silently fell back to the "
        f"reference path): {result['speedup']:.2f}x < required {floor:.1f}x"
    )
    return result


def test_batched_mppm_guard():
    """Pytest entry point: full default-scale guard."""
    run_guard(quick=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep + relaxed floor (CI smoke: catches a fallback, "
        "tolerates shared-runner noise)",
    )
    args = parser.parse_args()
    result = run_guard(quick=args.quick)
    from perf_snapshot import round_floats, write_snapshot

    write_snapshot("mppm_batch", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
