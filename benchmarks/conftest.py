"""Shared fixtures for the benchmark suite.

Every benchmark target uses the same process-wide
:class:`repro.experiments.ExperimentSetup` so that single-core profiles
and detailed reference simulations are paid for once per session, just
as a research group would reuse its simulation data across plots.

Each benchmark runs its experiment exactly once (``rounds=1``): the
experiments are deterministic end-to-end measurements, not micro-kernels
whose timing noise needs averaging.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSetup, default_setup


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """The shared experiment setup (profiles and reference runs are cached)."""
    return default_setup()


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
