"""Section 1: the workload-space explosion (435 / 35,960 / 30.2M mixes)."""

from conftest import run_once

from repro.experiments.workload_space import workload_space_report


def test_workload_space_counts(benchmark, setup):
    report = run_once(benchmark, workload_space_report, setup)
    print()
    print(report.render())

    counts = {row["cores"]: row["possible_mixes"] for row in report.to_rows()}
    # The paper's §1 numbers for 29 benchmarks.
    assert counts[2] == 435
    assert counts[4] == 35_960
    assert counts[8] > 30_200_000
