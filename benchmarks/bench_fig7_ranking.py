"""Figure 7: ranking the six LLC configurations — current practice vs MPPM.

Paper shape: individual current-practice trials (a dozen detailed-
simulated mixes, random or category-sampled) can rank the six
configurations poorly (Spearman correlations of 0.5 and below), while
MPPM over a large mix sample ranks them essentially perfectly
(1.0 for STP, 0.93 for ANTT).
"""

from conftest import run_once

from repro.experiments.ranking import ranking_experiment


def _check(result):
    # MPPM ranks the design space close to the reference.  (The paper reports a
    # perfect 1.0 STP correlation; on this scaled substrate configurations
    # #1-#4 are nearly tied on average, so adjacent near-ties can swap — see
    # EXPERIMENTS.md for the discussion.)
    assert result.mppm_stp_correlation >= 0.7
    assert result.mppm_antt_correlation >= 0.5
    # Current practice is unreliable: individual dozen-mix trials rank the
    # space clearly worse than the large-sample evaluations do.
    assert min(result.trial_stp_correlations) < 0.8
    assert result.mppm_stp_correlation >= min(result.trial_stp_correlations)
    # And no trial is *better* than perfect agreement, sanity of the scale.
    assert max(result.trial_stp_correlations) <= 1.0 + 1e-9


def test_fig7a_random_selection(benchmark, setup):
    result = run_once(
        benchmark,
        ranking_experiment,
        setup,
        policy="random",
        num_trials=12,
        mixes_per_trial=12,
        reference_mixes=40,
        mppm_mixes=200,
    )
    print()
    print(result.render())
    _check(result)


def test_fig7b_category_selection(benchmark, setup):
    result = run_once(
        benchmark,
        ranking_experiment,
        setup,
        policy="category",
        num_trials=12,
        mixes_per_trial=12,
        reference_mixes=40,
        mppm_mixes=200,
    )
    print()
    print(result.render())
    _check(result)
