"""Ablation: the cache-contention model inside MPPM (FOA vs SDC vs Prob).

The paper uses the FOA model and remarks (§2.3) that MPPM is
independent of the contention model; this ablation quantifies how much
the choice matters on this reproduction.
"""

from conftest import run_once

from repro.experiments.ablations import contention_model_ablation


def test_ablation_contention_models(benchmark, setup):
    result = run_once(
        benchmark, contention_model_ablation, setup, models=("foa", "sdc", "prob"), num_mixes=20
    )
    print()
    print(result.render())

    foa = result.row("foa")
    # FOA (the paper's choice) must be a reasonable model on this setup.
    assert foa.stp_error < 0.10
    # All three models produce finite, sane errors (the pluggability claim).
    for row in result.rows:
        assert 0.0 <= row.stp_error < 0.5
        assert 0.0 <= row.antt_error < 0.6
