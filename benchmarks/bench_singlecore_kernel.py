"""Benchmark guard: the vectorized replay kernel versus the reference loop.

The single-core profiler is the repo's hottest path: every profile of
every (benchmark, machine) pair replays a full memory trace.  The
default ``"vectorized"`` kernel resolves all cache levels with batched
per-set stack distances (a handful of array passes); the
``"reference"`` kernel walks every access through stateful cache
objects.  This guard asserts, on the default experiment trace scale,
that the two kernels stay bit-identical *and* that the vectorized
kernel keeps its speedup — so a silent fallback to the reference path
(or a regression that slows the kernel to parity) fails the build.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_singlecore_kernel.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.config import baseline_machine, scaled
from repro.simulators.single_core import SingleCoreSimulator
from repro.workloads import spec_cpu2006_like_suite
from repro.workloads.generator import TraceGenerator

#: Heterogeneous slice of the suite: cache-friendly, LLC-sensitive and
#: streaming behaviour all exercise different kernel paths.
BENCHMARKS = ("gamess", "hmmer", "soplex", "mcf", "libquantum")

#: Default experiment trace scale (matches ExperimentConfig).
DEFAULT_INSTRUCTIONS = 200_000
#: Speedup floor at the default scale (measured ~6-6.5x; the margin
#: absorbs machine noise while still catching a fallback or regression).
DEFAULT_FLOOR = 5.0
#: Quick mode: small traces for CI smoke; at this size numpy fixed
#: overheads eat into the ratio, so the floor only needs to prove the
#: vectorized path is live (a fallback would measure ~1x).
QUICK_INSTRUCTIONS = 50_000
QUICK_FLOOR = 2.0


def _assert_identical(vectorized, reference):
    assert len(vectorized.intervals) == len(reference.intervals)
    for x, y in zip(vectorized.intervals, reference.intervals):
        assert x.cycles == y.cycles and x.memory_cycles == y.memory_cycles
        assert (x.llc_accesses, x.llc_hits, x.llc_misses) == (
            y.llc_accesses,
            y.llc_hits,
            y.llc_misses,
        )
        assert np.array_equal(x.sdc.counts, y.sdc.counts)
    assert vectorized.cycles == reference.cycles
    assert np.array_equal(
        vectorized.llc_trace.upstream_cycle_gap, reference.llc_trace.upstream_cycle_gap
    )
    assert np.array_equal(vectorized.llc_trace.line, reference.llc_trace.line)
    assert vectorized.llc_trace.tail_cycles == reference.llc_trace.tail_cycles


def measure_kernels(num_instructions: int = DEFAULT_INSTRUCTIONS, rounds: int = 3) -> dict:
    """Time both kernels over the benchmark slice; returns seconds + speedup.

    Uses best-of-``rounds`` per kernel (standard practice for benchmark
    guards: the minimum is the least noisy estimator of the true cost)
    and asserts bit-identical results along the way.
    """
    suite = spec_cpu2006_like_suite()
    generator = TraceGenerator(num_instructions=num_instructions, seed=0)
    machine = scaled(baseline_machine(num_cores=4, llc_config=1), 16)
    simulator = SingleCoreSimulator(machine, interval_instructions=4_000)
    traces = [generator.generate(suite[name]) for name in BENCHMARKS]
    simulator.run(traces[0])  # warm-up (imports, allocator)

    def best_of(kernel: str) -> float:
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            for trace in traces:
                simulator.run(trace, kernel=kernel)
            timings.append(time.perf_counter() - start)
        return min(timings)

    for trace in traces:
        _assert_identical(
            simulator.run(trace, kernel="vectorized"),
            simulator.run(trace, kernel="reference"),
        )

    vectorized_seconds = best_of("vectorized")
    reference_seconds = best_of("reference")
    return {
        "num_instructions": num_instructions,
        "vectorized_seconds": vectorized_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / vectorized_seconds,
    }


def run_guard(quick: bool = False) -> dict:
    """Measure and enforce the speedup floor; returns the measurement."""
    num_instructions = QUICK_INSTRUCTIONS if quick else DEFAULT_INSTRUCTIONS
    floor = QUICK_FLOOR if quick else DEFAULT_FLOOR
    result = measure_kernels(num_instructions=num_instructions)
    print(
        f"single-core replay of {len(BENCHMARKS)} benchmarks x "
        f"{result['num_instructions']} instructions: "
        f"vectorized {result['vectorized_seconds']:.3f}s, "
        f"reference {result['reference_seconds']:.3f}s "
        f"-> speedup {result['speedup']:.1f}x (floor {floor:.1f}x)"
    )
    assert result["speedup"] >= floor, (
        f"vectorized kernel regressed (or silently fell back to the reference "
        f"path): {result['speedup']:.2f}x < required {floor:.1f}x"
    )
    return result


def test_vectorized_kernel_guard():
    """Pytest entry point: full default-scale guard."""
    run_guard(quick=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small traces + relaxed floor (CI smoke: catches a fallback, "
        "tolerates shared-runner noise)",
    )
    args = parser.parse_args()
    result = run_guard(quick=args.quick)
    from perf_snapshot import round_floats, write_snapshot

    write_snapshot("singlecore_kernel", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
