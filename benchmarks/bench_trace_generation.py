"""Benchmark guard: the vectorized trace-generation kernel vs the reference loop.

Trace generation feeds every profile of every (benchmark, machine)
pair, and ROADMAP named it the largest remaining per-access Python
cost.  The default ``"vectorized"`` kernel draws reuse depths, access
positions and base-cycle gaps as whole numpy arrays and resolves
LRU-stack depths to addresses with a tight O(depth) move-to-front
kernel; the ``"reference"`` kernel walks every access through the
original MRU-first list (an O(footprint) memmove per access).  This
guard asserts, on the default experiment trace scale, that the two
kernels stay bit-identical *and* that the vectorized kernel keeps its
speedup — so a silent fallback to the reference path (or a regression
that slows the kernel to parity) fails the build.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_trace_generation.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.workloads import spec_cpu2006_like_suite
from repro.workloads.generator import TraceGenerator

#: Heterogeneous slice of the suite: small-footprint LLC-sensitive
#: (gamess), cache-friendly (hmmer), mid-size (soplex), capacity-bound
#: with working-set wrap-around (mcf) and huge-footprint streaming
#: (libquantum) behaviour all exercise different resolution paths.
BENCHMARKS = ("gamess", "hmmer", "soplex", "mcf", "libquantum")

#: Default experiment trace scale (matches ExperimentConfig).
DEFAULT_INSTRUCTIONS = 200_000
#: Speedup floor at the default scale (measured ~8-10x; the margin
#: absorbs machine noise while still catching a fallback or regression).
DEFAULT_FLOOR = 5.0
#: Quick mode: small traces for CI smoke; at this size fixed overheads
#: eat into the ratio, so the floor only needs to prove the vectorized
#: path is live (a fallback would measure ~1x).
QUICK_INSTRUCTIONS = 50_000
QUICK_FLOOR = 2.0


def _assert_identical(vectorized, reference):
    assert np.array_equal(vectorized.access_insn, reference.access_insn)
    assert np.array_equal(vectorized.access_line, reference.access_line)
    assert np.array_equal(vectorized.base_cycle_gap, reference.base_cycle_gap)
    assert vectorized.access_line.dtype == reference.access_line.dtype
    assert vectorized.base_cycle_gap.dtype == reference.base_cycle_gap.dtype
    assert vectorized.tail_base_cycles == reference.tail_base_cycles


def measure_kernels(num_instructions: int = DEFAULT_INSTRUCTIONS, rounds: int = 3) -> dict:
    """Time both kernels over the benchmark slice; returns seconds + speedup.

    Uses best-of-``rounds`` per kernel (standard practice for benchmark
    guards: the minimum is the least noisy estimator of the true cost)
    and asserts bit-identical traces along the way.
    """
    suite = spec_cpu2006_like_suite()
    generator = TraceGenerator(num_instructions=num_instructions, seed=0)
    specs = [suite[name] for name in BENCHMARKS]
    generator.generate(specs[0])  # warm-up (imports, allocator)

    def best_of(kernel: str) -> float:
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            for spec in specs:
                generator.generate(spec, kernel=kernel)
            timings.append(time.perf_counter() - start)
        return min(timings)

    for spec in specs:
        _assert_identical(
            generator.generate(spec, kernel="vectorized"),
            generator.generate(spec, kernel="reference"),
        )

    vectorized_seconds = best_of("vectorized")
    reference_seconds = best_of("reference")
    return {
        "num_instructions": num_instructions,
        "vectorized_seconds": vectorized_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / vectorized_seconds,
    }


def run_guard(quick: bool = False) -> dict:
    """Measure and enforce the speedup floor; returns the measurement."""
    num_instructions = QUICK_INSTRUCTIONS if quick else DEFAULT_INSTRUCTIONS
    floor = QUICK_FLOOR if quick else DEFAULT_FLOOR
    result = measure_kernels(num_instructions=num_instructions)
    print(
        f"trace generation of {len(BENCHMARKS)} benchmarks x "
        f"{result['num_instructions']} instructions: "
        f"vectorized {result['vectorized_seconds']:.3f}s, "
        f"reference {result['reference_seconds']:.3f}s "
        f"-> speedup {result['speedup']:.1f}x (floor {floor:.1f}x)"
    )
    assert result["speedup"] >= floor, (
        f"vectorized generation kernel regressed (or silently fell back to "
        f"the reference path): {result['speedup']:.2f}x < required {floor:.1f}x"
    )
    return result


def test_trace_generation_guard():
    """Pytest entry point: full default-scale guard."""
    run_guard(quick=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small traces + relaxed floor (CI smoke: catches a fallback, "
        "tolerates shared-runner noise)",
    )
    args = parser.parse_args()
    result = run_guard(quick=args.quick)
    from perf_snapshot import round_floats, write_snapshot

    write_snapshot("trace_generation", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
