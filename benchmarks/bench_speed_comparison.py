"""Section 4.3: MPPM speed versus detailed simulation.

Paper shape: MPPM evaluates a mix in well under a second and is vastly
faster than detailed simulation of the same mix; including the one-time
single-core profiling cost the campaign-level speedup is smaller but
still large.  (Absolute ratios differ here because the reference
simulator is itself a scaled-down trace-driven model rather than a
cycle-accurate x86 simulator — see EXPERIMENTS.md.)
"""

from conftest import run_once

from repro.experiments.speed import speed_experiment


def test_speed_comparison(benchmark, setup):
    result = run_once(benchmark, speed_experiment, setup, num_cores=8, num_mixes=6)
    print()
    print(result.render())

    # MPPM evaluates one mix faster than the detailed reference simulates it.
    assert result.mppm_seconds_per_mix < result.simulation_seconds_per_mix
    assert result.speedup_excluding_profiling > 1.0
    # MPPM stays within the paper's "well under a second per mix" envelope.
    assert result.mppm_seconds_per_mix < 1.0
    # The one-time profiling cost is finite and per-benchmark.
    assert result.profiling_seconds_per_benchmark > 0
