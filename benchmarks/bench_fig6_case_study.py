"""Figure 6: per-program CPI of the worst-STP mix (2x gamess + hmmer + soplex).

Paper shape: the two gamess copies are slowed down substantially (more
than 2x), soplex somewhat, hmmer barely at all — and MPPM tracks the
per-program multi-core CPIs of all four programs.
"""

from conftest import run_once

from repro.experiments.stress import worst_mix_case_study


def test_fig6_worst_mix_case_study(benchmark, setup):
    result = run_once(benchmark, worst_mix_case_study, setup)
    print()
    print(result.render())

    gamess = result.program("gamess")
    hmmer = result.program("hmmer")
    soplex = result.program("soplex")

    # gamess suffers by far the most from sharing, hmmer is barely affected,
    # soplex sits in between (paper: >2x, ~1x, mild).
    assert gamess.measured_slowdown > 1.8
    assert hmmer.measured_slowdown < 1.15
    assert soplex.measured_slowdown < gamess.measured_slowdown
    assert soplex.measured_slowdown > hmmer.measured_slowdown * 0.95

    # MPPM reproduces the ordering and tracks each program's multi-core CPI.
    assert gamess.predicted_slowdown > soplex.predicted_slowdown > 1.0
    assert hmmer.predicted_slowdown < 1.15
    for program in result.programs:
        relative_error = (
            abs(program.predicted_multi_core_cpi - program.measured_multi_core_cpi)
            / program.measured_multi_core_cpi
        )
        assert relative_error < 0.35
