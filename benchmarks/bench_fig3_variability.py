"""Figure 3: variability of STP/ANTT versus the number of workload mixes.

Paper shape: the 95% confidence interval is wide (around 10% for STP
and 18% for ANTT) with only ~10 random mixes and shrinks substantially
as more mixes are added (2.6% / 4.5% at 150 mixes) — small random
samples carry little statistical confidence.
"""

from conftest import run_once

from repro.experiments.variability import variability_experiment


def test_fig3_variability(benchmark, setup):
    result = run_once(
        benchmark,
        variability_experiment,
        setup,
        num_cores=4,
        llc_config=1,
        max_mixes=60,
        source="simulation",
    )
    print()
    print(result.render())

    first = result.points[0]
    last = result.points[-1]
    # The interval must shrink substantially as mixes are added...
    assert last.stp_ci_pct < first.stp_ci_pct
    assert last.antt_ci_pct < first.antt_ci_pct
    # ...and a handful of mixes must leave a non-trivial uncertainty.
    assert first.stp_ci_pct > 2.0
    assert first.antt_ci_pct > first.stp_ci_pct * 0.8
