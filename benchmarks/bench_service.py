"""Load-generator benchmark for the prediction service.

Starts a live ``repro serve`` instance (in-process, on a background
thread) and drives it with concurrent asyncio clients through two
phases over the same mix population:

* **cold** — every prediction is computed: measures sustained
  predictions/sec through profiling + batching + the engine;
* **warm** — every prediction is memoised: measures the pure
  serve-path throughput, and *asserts* (via ``/stats``) that the warm
  phase computed exactly zero new results.

Along the way one served prediction is checked **bit-identical** to
what the batch path (``ExperimentSetup.predict`` — the machinery
behind ``repro predict``) returns for the same spec strings: the
service is a transport, not a different model.

Reports client-side p50/p95/p99 latency per phase and writes the
committed snapshot ``BENCH_service.json`` at the repo root.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import time
from typing import Dict, List, Sequence

from perf_snapshot import round_floats, write_snapshot

from repro.experiments import ExperimentSetup
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.payloads import prediction_payload
from repro.service.stats import LatencyTracker

#: Full scale matches the CLI defaults (bit-identity against
#: ``repro predict`` with no extra flags); quick scale matches the CI
#: smoke commands (``--instructions 20000``).
DEFAULT_INSTRUCTIONS = 200_000
QUICK_INSTRUCTIONS = 20_000

PREDICTOR = "mppm:foa"


def _phase_summary(latency: LatencyTracker, predictions: int, seconds: float) -> Dict:
    return {
        "predictions": predictions,
        "seconds": seconds,
        "predictions_per_second": predictions / seconds if seconds else 0.0,
        "latency_ms": latency.summary(),
    }


async def _drive(
    host: str, port: int, mixes: Sequence[List[str]], clients: int
) -> Dict:
    """One phase: the mixes spread over ``clients`` concurrent connections."""
    latency = LatencyTracker()
    assignments: List[List[List[str]]] = [list(mixes[i::clients]) for i in range(clients)]

    async def worker(rows: List[List[str]]) -> int:
        served = 0
        async with ServiceClient(host, port) as client:
            for row in rows:
                start = time.perf_counter()
                response = await client.predict(mix=row, predictor=PREDICTOR)
                latency.record(time.perf_counter() - start)
                served += response["count"]
        return served

    start = time.perf_counter()
    counts = await asyncio.gather(*(worker(rows) for rows in assignments if rows))
    seconds = time.perf_counter() - start
    return _phase_summary(latency, sum(counts), seconds)


def _reference_prediction(config: ServiceConfig, mix: List[str]) -> Dict:
    """What ``repro predict`` computes for the same specs (the oracle)."""
    setup = ExperimentSetup(config=config.experiment_config(), workload=config.workload)
    try:
        machine = setup.machine(num_cores=len(mix), llc_config=1)
        from repro.workloads import WorkloadMix

        prediction = setup.predict(WorkloadMix(programs=tuple(mix)), machine, predictor=PREDICTOR)
        return prediction_payload(prediction)
    finally:
        setup.close()


def run_benchmark(quick: bool = False, num_mixes: int = 24, clients: int = 8) -> Dict:
    """Cold + warm load phases against a live service; returns the measurement."""
    instructions = QUICK_INSTRUCTIONS if quick else DEFAULT_INSTRUCTIONS
    config = ServiceConfig(instructions=instructions, window=0.002)
    with ServiceThread(config) as live:
        service = live.service
        assert service is not None
        # The mix population, sampled through the service's own setup so
        # the benchmark exercises exactly the registry path clients use.
        sample_setup = service._setup_for(config.workload)
        mixes = [list(mix.programs) for mix in sample_setup.mixes(4, num_mixes, seed=17)]

        cold = asyncio.run(_drive(live.host, live.port, mixes, clients))
        computed_cold = service.stats.predictions_computed

        warm = asyncio.run(_drive(live.host, live.port, mixes, clients))
        computed_warm = service.stats.predictions_computed - computed_cold
        assert computed_warm == 0, (
            f"warm phase recomputed {computed_warm} predictions; "
            "the shared result cache should have served all of them"
        )

        # Bit-identity: the served payload equals the batch path's.
        served = asyncio.run(_drive_single(live.host, live.port, mixes[0]))
        expected = _reference_prediction(config, mixes[0])
        assert served == expected, (
            "served prediction differs from ExperimentSetup.predict for the "
            f"same specs:\nserved:   {served}\nexpected: {expected}"
        )

        stats = service.stats_payload()
    return {
        "instructions": instructions,
        "num_mixes": num_mixes,
        "clients": clients,
        "cold": cold,
        "warm": warm,
        "warm_recomputed": computed_warm,
        "batches": stats["batches"],
        "engine_cache": stats["engine_cache"],
        "bit_identical": True,
    }


async def _drive_single(host: str, port: int, mix: List[str]) -> Dict:
    async with ServiceClient(host, port) as client:
        response = await client.predict(mix=mix, predictor=PREDICTOR)
        return response["prediction"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: short traces, same assertions",
    )
    parser.add_argument(
        "--mixes", type=int, default=24, help="distinct 4-program mixes to serve (default: 24)"
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client connections (default: 8)"
    )
    args = parser.parse_args()
    result = run_benchmark(quick=args.quick, num_mixes=args.mixes, clients=args.clients)
    for phase in ("cold", "warm"):
        summary = result[phase]
        latency = summary["latency_ms"]
        print(
            f"{phase:>4}: {summary['predictions']} predictions in "
            f"{summary['seconds']:.2f}s -> {summary['predictions_per_second']:.1f}/s, "
            f"p50 {latency['p50']:.1f}ms p95 {latency['p95']:.1f}ms p99 {latency['p99']:.1f}ms"
        )
    print(
        f"warm recomputed: {result['warm_recomputed']} "
        f"(cache hits {result['engine_cache']['hits']}), "
        f"max batch {result['batches']['max_size']}, bit-identical: yes"
    )
    write_snapshot("service", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
