"""Benchmark guard: PMU-trace ingestion throughput and round-trip fidelity.

The ingestion subsystem closes a loop the paper's users would run on
real hardware: per-core PMU sample streams are segmented into phases
and fitted into replayable benchmark specs.  This guard synthesizes
PMU-shaped samples from *known* spec29 benchmarks (so the ground truth
is exact, no hardware involved), fits them back, and enforces:

* **fidelity floors** — the fitted specs' replay reproduces each
  core's observed LLC miss rate, access rate and CPI within the
  tolerances documented in the README ("Real traces");
* **fit throughput** — the fitter sustains a minimum samples/second
  (a regression that makes ``repro ingest`` orders slower fails CI);
* **determinism** — fitting the same stream twice is bit-identical,
  so digest-qualified engine cache keys stay trustworthy.

Run standalone (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_perf_ingest.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro.config import machine_with_llc, scaled
from repro.ingest import FitOptions, fit_stream, load_samples, write_samples
from repro.workloads import make_workload

#: Ground-truth benchmarks spanning the MEM/COMP/MIX classes.
DEFAULT_BENCHMARKS = ("gamess", "lbm", "povray", "mcf", "hmmer", "soplex")
QUICK_BENCHMARKS = ("gamess", "lbm", "povray")

#: Synthesized sample stream shape (matches the committed CI fixture).
NUM_INSTRUCTIONS = 60_000
INTERVAL_INSTRUCTIONS = 1_500

#: Fidelity floors: absolute miss-rate residual (phases with LLC
#: traffic), relative access-rate and CPI residuals.  The test-suite
#: tolerances are tighter; the guard adds margin for the larger pool.
MISS_FLOOR = 0.08
ACCESS_FLOOR = 0.40
CPI_FLOOR = 0.20

#: Throughput floor in fitted samples/second.  Measured ~400/s on a
#: laptop-class core; the floor only needs to catch an order-of-
#: magnitude regression (e.g. the fitter falling into per-sample
#: python loops), not machine noise.
SAMPLES_PER_SECOND_FLOOR = 40.0


def measure_ingest(benchmarks, tmp_dir) -> dict:
    suite = make_workload("suite:spec29").suite()
    specs = [suite[name] for name in benchmarks]
    machine = scaled(machine_with_llc(1, num_cores=1), 16)
    csv_path, _ = write_samples(
        specs,
        machine,
        tmp_dir / "samples.csv",
        num_instructions=NUM_INSTRUCTIONS,
        interval_instructions=INTERVAL_INSTRUCTIONS,
    )
    stream = load_samples(csv_path)
    num_samples = sum(core.num_samples for core in stream.cores)

    start = time.perf_counter()
    fits = fit_stream(stream, FitOptions())
    fit_seconds = time.perf_counter() - start

    again = fit_stream(stream, FitOptions())
    assert [fit.spec for fit in again] == [fit.spec for fit in fits], (
        "fitting the same stream twice must be bit-identical"
    )

    report = []
    for name, fit in zip(benchmarks, fits):
        report.append(
            {
                "core": fit.core,
                "source": name,
                "phases": len(fit.phases),
                "coverage": fit.coverage,
                "miss_error": fit.max_miss_rate_error,
                "access_error": fit.max_access_rate_error,
                "cpi_error": fit.max_cpi_error,
            }
        )
    return {
        "benchmarks": list(benchmarks),
        "num_samples": num_samples,
        "fit_seconds": fit_seconds,
        "samples_per_second": num_samples / fit_seconds if fit_seconds else 0.0,
        "fidelity": report,
        "floors": {
            "miss": MISS_FLOOR,
            "access": ACCESS_FLOOR,
            "cpi": CPI_FLOOR,
            "samples_per_second": SAMPLES_PER_SECOND_FLOOR,
        },
    }


def run_guard(quick: bool = False, tmp_dir=None) -> dict:
    import tempfile
    from pathlib import Path

    benchmarks = QUICK_BENCHMARKS if quick else DEFAULT_BENCHMARKS
    if tmp_dir is None:
        with tempfile.TemporaryDirectory() as scratch:
            return run_guard(quick=quick, tmp_dir=Path(scratch))
    result = measure_ingest(benchmarks, tmp_dir)
    print(
        f"fitted {len(benchmarks)} cores / {result['num_samples']} samples in "
        f"{result['fit_seconds']:.2f}s -> {result['samples_per_second']:.0f} samples/s "
        f"(floor {SAMPLES_PER_SECOND_FLOOR:.0f}/s)"
    )
    for row in result["fidelity"]:
        print(
            f"  core {row['core']} ({row['source']}): {row['phases']} phases, "
            f"miss {row['miss_error']:.3f}, access {row['access_error']:.3f}, "
            f"cpi {row['cpi_error']:.3f}"
        )
        assert row["coverage"] > 0.9, row
        assert row["miss_error"] <= MISS_FLOOR, row
        assert row["access_error"] <= ACCESS_FLOOR, row
        assert row["cpi_error"] <= CPI_FLOOR, row
    assert result["samples_per_second"] >= SAMPLES_PER_SECOND_FLOOR, (
        f"ingest fit throughput regressed: {result['samples_per_second']:.0f} "
        f"samples/s < required {SAMPLES_PER_SECOND_FLOOR:.0f}/s"
    )
    return result


def test_perf_ingest_guard(tmp_path):
    """Pytest entry point: full default-scale guard."""
    run_guard(quick=False, tmp_dir=tmp_path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: fewer ground-truth cores, same floors",
    )
    args = parser.parse_args()
    result = run_guard(quick=args.quick)
    from perf_snapshot import round_floats, write_snapshot

    write_snapshot("perf_ingest", round_floats(result), quick=args.quick)


if __name__ == "__main__":
    main()
