"""Unit tests for core and whole-machine configuration."""

import pytest

from repro.config.cache_config import KIB, CacheConfig, ConfigurationError
from repro.config.core_config import CoreConfig
from repro.config.machine import MachineConfig


class TestCoreConfig:
    def test_defaults_match_paper_table1(self):
        core = CoreConfig()
        assert core.width == 4
        assert core.rob_entries == 128
        assert core.pipeline_depth == 8
        assert core.max_loads_per_cycle == 2
        assert core.max_stores_per_cycle == 1
        assert core.perfect_branch_prediction

    def test_ideal_cpi_is_reciprocal_of_width(self):
        assert CoreConfig(width=4).ideal_cpi == pytest.approx(0.25)
        assert CoreConfig(width=2).ideal_cpi == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(width=0), dict(rob_entries=0), dict(pipeline_depth=0), dict(max_loads_per_cycle=0)],
    )
    def test_invalid_core_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CoreConfig(**kwargs)


class TestMachineConfig:
    def test_default_machine_structure(self):
        machine = MachineConfig()
        assert machine.num_cores == 4
        assert [level.name for level in machine.private_levels] == ["L1D", "L2"]
        assert machine.llc.name == "L3"
        assert machine.llc.shared
        assert machine.line_size == 64
        assert len(machine.cache_levels) == 3

    def test_llc_must_be_shared(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(llc=CacheConfig(name="L3", size_bytes=512 * KIB, associativity=8))

    def test_private_levels_must_not_be_shared(self):
        shared_l2 = CacheConfig(name="L2", size_bytes=256 * KIB, associativity=8, shared=True)
        with pytest.raises(ConfigurationError):
            MachineConfig(private_levels=(shared_l2,))

    def test_all_levels_must_share_line_size(self):
        odd_l1 = CacheConfig(name="L1D", size_bytes=32 * KIB, associativity=8, line_size=32)
        with pytest.raises(ConfigurationError):
            MachineConfig(private_levels=(odd_l1,))

    def test_num_cores_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=0)

    def test_with_num_cores_and_single_core(self):
        machine = MachineConfig(num_cores=8)
        assert machine.with_num_cores(2).num_cores == 2
        assert machine.single_core().num_cores == 1
        # The original is unchanged (frozen dataclass semantics).
        assert machine.num_cores == 8

    def test_with_llc_marks_cache_shared(self):
        machine = MachineConfig()
        new_llc = CacheConfig(name="L3", size_bytes=1024 * KIB, associativity=16, latency=22)
        updated = machine.with_llc(new_llc, name="config #4")
        assert updated.llc.shared
        assert updated.llc.size_bytes == 1024 * KIB
        assert updated.name == "config #4"

    def test_profile_key_ignores_core_count_but_not_caches(self):
        machine = MachineConfig(num_cores=4)
        assert machine.profile_key() == machine.with_num_cores(8).profile_key()
        bigger_llc = machine.with_llc(machine.llc.with_size(machine.llc.size_bytes * 2))
        assert machine.profile_key() != bigger_llc.profile_key()

    def test_describe_lists_all_levels(self):
        text = MachineConfig(name="baseline").describe()
        assert "baseline" in text
        for level in ("L1D", "L2", "L3", "memory"):
            assert level in text
