"""Unit and property tests for the set-associative cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.replacement import LRUPolicy
from repro.caches.set_associative import SetAssociativeCache
from repro.config.cache_config import CacheConfig


def _cache(num_sets=4, associativity=2, policy="lru"):
    config = CacheConfig(
        name="test", size_bytes=num_sets * associativity * 64, associativity=associativity
    )
    return SetAssociativeCache(config, policy=policy)


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = _cache()
        assert cache.access(0).miss
        assert cache.access(0).hit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.miss_rate == pytest.approx(0.5)

    def test_lru_eviction_within_a_set(self):
        cache = _cache(num_sets=1, associativity=2)
        cache.access(0)
        cache.access(1)
        cache.access(2)  # evicts 0 (the LRU line)
        assert not cache.contains(0)
        assert cache.contains(1) and cache.contains(2)
        assert cache.access(0).miss

    def test_hit_refreshes_recency(self):
        cache = _cache(num_sets=1, associativity=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 1 is now the LRU
        outcome = cache.access(2)
        assert outcome.miss
        assert outcome.evicted_line == 1
        assert cache.contains(0)

    def test_lines_map_to_sets_by_modulo(self):
        cache = _cache(num_sets=4, associativity=1)
        assert cache.set_index(5) == 1
        assert cache.set_index(8) == 0
        cache.access(0)
        cache.access(4)  # same set, 1-way -> evicts 0
        assert not cache.contains(0)
        cache.access(1)  # different set, does not interfere
        assert cache.contains(4) and cache.contains(1)

    def test_occupancy_is_bounded_by_capacity(self):
        cache = _cache(num_sets=2, associativity=2)
        for line in range(100):
            cache.access(line)
        assert cache.occupancy() <= 4
        assert len(cache.resident_lines()) == cache.occupancy()

    def test_reset_clears_contents_and_statistics(self):
        cache = _cache()
        cache.access(1)
        cache.access(1)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.occupancy() == 0
        assert cache.access(1).miss

    def test_empty_cache_has_zero_miss_rate(self):
        assert _cache().miss_rate == 0.0


class TestPolicies:
    def test_policy_object_can_be_passed_directly(self):
        cache = _cache(policy=LRUPolicy())
        assert cache.policy_name == "lru"
        cache.access(0)
        assert cache.access(0).hit

    def test_fifo_policy_differs_from_lru(self):
        # Access pattern where FIFO and LRU evict different lines.
        pattern = [0, 1, 0, 2, 0, 1]
        lru = _cache(num_sets=1, associativity=2, policy="lru")
        fifo = _cache(num_sets=1, associativity=2, policy="fifo")
        lru_hits = sum(lru.access(line).hit for line in pattern)
        fifo_hits = sum(fifo.access(line).hit for line in pattern)
        assert lru_hits != fifo_hits

    def test_random_policy_stays_within_capacity(self):
        cache = _cache(num_sets=2, associativity=2, policy="random")
        for line in range(50):
            cache.access(line)
        assert cache.occupancy() <= 4

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_lru_fast_path_matches_generic_policy_path(self, accesses):
        """The optimised list-based LRU must behave exactly like the generic policy."""
        fast = _cache(num_sets=4, associativity=2, policy="lru")
        generic = _cache(num_sets=4, associativity=2, policy=LRUPolicy())
        for line in accesses:
            assert fast.access(line).hit == generic.access(line).hit
        assert fast.hits == generic.hits
        assert fast.misses == generic.misses

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=300),
        associativity=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_occupancy_and_counters_are_always_consistent(self, accesses, associativity):
        cache = _cache(num_sets=4, associativity=associativity)
        for line in accesses:
            cache.access(line)
        assert cache.hits + cache.misses == len(accesses)
        assert cache.occupancy() <= 4 * associativity
        assert cache.occupancy() == len(set(cache.resident_lines()))

    @given(accesses=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_larger_associativity_never_increases_misses(self, accesses):
        """LRU caches have the stack property: more ways can only help."""
        small = _cache(num_sets=2, associativity=2)
        large = _cache(num_sets=2, associativity=8)
        for line in accesses:
            small.access(line)
            large.access(line)
        assert large.misses <= small.misses
