"""Unit tests for the shared experiment setup (caching, machines, classification)."""

import pytest

from repro.experiments import ExperimentConfig, ExperimentSetup, default_setup
from repro.workloads import BenchmarkClass, WorkloadMix, small_suite


@pytest.fixture(scope="module")
def small_setup():
    """A fast setup: 6 benchmarks, short traces."""
    return ExperimentSetup(
        config=ExperimentConfig(scale=16, num_instructions=30_000, interval_instructions=1_000),
        suite=small_suite(6),
    )


class TestExperimentConfig:
    def test_defaults_are_consistent(self):
        config = ExperimentConfig()
        assert config.num_instructions % config.interval_instructions == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scale=0),
            dict(num_instructions=0),
            dict(interval_instructions=0),
            dict(num_instructions=1_000, interval_instructions=300),
            dict(kernel="magic"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_kernel_defaults_to_vectorized_and_reaches_the_store(self):
        assert ExperimentConfig().kernel == "vectorized"
        setup = ExperimentSetup(
            config=ExperimentConfig(
                num_instructions=10_000, interval_instructions=1_000, kernel="reference"
            )
        )
        assert setup.store.kernel == "reference"


class TestExperimentSetup:
    def test_machines_are_scaled_table2_configs(self, small_setup):
        machine = small_setup.machine(num_cores=4, llc_config=1)
        assert machine.num_cores == 4
        assert "config #1" in machine.name
        # Scaled by 16: the 512KB LLC becomes 32KB.
        assert machine.llc.size_bytes == 512 * 1024 // 16
        design_space = small_setup.design_space()
        assert len(design_space) == 6

    def test_profiles_are_cached_per_machine(self, small_setup):
        machine = small_setup.machine()
        first = small_setup.profiles(machine)
        second = small_setup.profiles(machine)
        assert first is second
        assert set(first) == set(small_setup.benchmark_names)

    def test_profiles_shared_across_core_counts(self, small_setup):
        four_core = small_setup.machine(num_cores=4)
        eight_core = small_setup.machine(num_cores=8)
        assert small_setup.profiles(four_core) is small_setup.profiles(eight_core)

    def test_simulation_results_are_cached(self, small_setup):
        machine = small_setup.machine()
        mix = WorkloadMix(programs=tuple(small_setup.benchmark_names[:4]))
        before = small_setup.reference_runs()
        first = small_setup.simulate(mix, machine)
        second = small_setup.simulate(mix, machine)
        assert first is second
        assert small_setup.reference_runs() == before + 1

    def test_predictions_are_cached_only_for_default_model(self, small_setup):
        from repro.core import MPPMConfig

        machine = small_setup.machine()
        mix = WorkloadMix(programs=tuple(small_setup.benchmark_names[:4]))
        first = small_setup.predict(mix, machine)
        second = small_setup.predict(mix, machine)
        assert first is second
        custom = small_setup.predict(mix, machine, mppm_config=MPPMConfig(smoothing=0.9))
        assert custom is not first

    def test_simulate_adapts_machine_core_count_to_mix_size(self, small_setup):
        machine = small_setup.machine(num_cores=4)
        mix = WorkloadMix(programs=tuple(small_setup.benchmark_names[:2]))
        result = small_setup.simulate(mix, machine)
        assert result.num_cores == 2

    def test_classification_covers_all_benchmarks(self, small_setup):
        classes = small_setup.classification()
        assert set(classes) == set(small_setup.benchmark_names)
        assert all(isinstance(value, BenchmarkClass) for value in classes.values())

    def test_default_setup_is_shared(self):
        assert default_setup() is default_setup()
        assert default_setup(seed=1) is not default_setup(seed=0)
