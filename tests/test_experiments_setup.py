"""Unit tests for the shared experiment setup (caching, machines, classification)."""

import pytest

from repro.experiments import ExperimentConfig, ExperimentSetup, default_setup
from repro.workloads import BenchmarkClass, WorkloadMix, small_suite


@pytest.fixture(scope="module")
def small_setup():
    """A fast setup: 6 benchmarks, short traces."""
    return ExperimentSetup(
        config=ExperimentConfig(scale=16, num_instructions=30_000, interval_instructions=1_000),
        suite=small_suite(6),
    )


class TestExperimentConfig:
    def test_defaults_are_consistent(self):
        config = ExperimentConfig()
        assert config.num_instructions % config.interval_instructions == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scale=0),
            dict(num_instructions=0),
            dict(interval_instructions=0),
            dict(num_instructions=1_000, interval_instructions=300),
            dict(kernel="magic"),
            dict(mppm_kernel="magic"),
            dict(multicore_kernel="magic"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_kernel_defaults_to_vectorized_and_reaches_the_store(self):
        assert ExperimentConfig().kernel == "vectorized"
        setup = ExperimentSetup(
            config=ExperimentConfig(
                num_instructions=10_000, interval_instructions=1_000, kernel="reference"
            )
        )
        assert setup.store.kernel == "reference"


class TestExperimentSetup:
    def test_machines_are_scaled_table2_configs(self, small_setup):
        machine = small_setup.machine(num_cores=4, llc_config=1)
        assert machine.num_cores == 4
        assert "config #1" in machine.name
        # Scaled by 16: the 512KB LLC becomes 32KB.
        assert machine.llc.size_bytes == 512 * 1024 // 16
        design_space = small_setup.design_space()
        assert len(design_space) == 6

    def test_profiles_are_cached_per_machine(self, small_setup):
        machine = small_setup.machine()
        first = small_setup.profiles(machine)
        second = small_setup.profiles(machine)
        assert first is second
        assert set(first) == set(small_setup.benchmark_names)

    def test_profiles_shared_across_core_counts(self, small_setup):
        four_core = small_setup.machine(num_cores=4)
        eight_core = small_setup.machine(num_cores=8)
        assert small_setup.profiles(four_core) is small_setup.profiles(eight_core)

    def test_simulation_results_are_cached(self, small_setup):
        machine = small_setup.machine()
        mix = WorkloadMix(programs=tuple(small_setup.benchmark_names[:4]))
        before = small_setup.reference_runs()
        first = small_setup.simulate(mix, machine)
        second = small_setup.simulate(mix, machine)
        assert first is second
        assert small_setup.reference_runs() == before + 1

    def test_predictions_are_cached_only_for_default_model(self, small_setup):
        from repro.core import MPPMConfig

        machine = small_setup.machine()
        mix = WorkloadMix(programs=tuple(small_setup.benchmark_names[:4]))
        first = small_setup.predict(mix, machine)
        second = small_setup.predict(mix, machine)
        assert first is second
        custom = small_setup.predict(mix, machine, mppm_config=MPPMConfig(smoothing=0.9))
        assert custom is not first

    def test_simulate_adapts_machine_core_count_to_mix_size(self, small_setup):
        machine = small_setup.machine(num_cores=4)
        mix = WorkloadMix(programs=tuple(small_setup.benchmark_names[:2]))
        result = small_setup.simulate(mix, machine)
        assert result.num_cores == 2

    def test_classification_covers_all_benchmarks(self, small_setup):
        classes = small_setup.classification()
        assert set(classes) == set(small_setup.benchmark_names)
        assert all(isinstance(value, BenchmarkClass) for value in classes.values())

    def test_default_setup_is_shared(self):
        assert default_setup() is default_setup()
        assert default_setup(seed=1) is not default_setup(seed=0)


class TestBatchedMppmSweeps:
    """The batched solver path through ``predict_batch`` is invisible:
    bit-identical results, per-op cache entries, shared dedup objects."""

    MPPM_SPECS = ("mppm:foa", "mppm:sdc", "mppm:prob", "mppm:windowed", "mppm:figure2")

    @staticmethod
    def _setup(mppm_kernel, **kwargs):
        return ExperimentSetup(
            config=ExperimentConfig(
                scale=16,
                num_instructions=30_000,
                interval_instructions=1_000,
                mppm_kernel=mppm_kernel,
            ),
            suite=small_suite(6),
            **kwargs,
        )

    def test_default_kernel_is_batched(self):
        assert ExperimentConfig().mppm_kernel == "batched"

    def test_batched_sweep_matches_reference_bitwise(self):
        batched_setup = self._setup("batched")
        reference_setup = self._setup("reference")
        machine = batched_setup.machine(num_cores=2)
        pairs = [
            (mix, machine) for mix in batched_setup.mixes(num_programs=2, num_mixes=4)
        ]
        for spec in self.MPPM_SPECS:
            batched = batched_setup.predict_batch(pairs, predictor=spec)
            reference = reference_setup.predict_batch(pairs, predictor=spec)
            assert [p.kernel for p in batched] == ["batched"] * len(pairs)
            assert [p.kernel for p in reference] == ["reference"] * len(pairs)
            for fast, slow in zip(batched, reference):
                assert fast.iterations == slow.iterations
                assert fast.converged == slow.converged
                # Exact equality on purpose: the kernels share op order.
                assert [p.predicted_cpi for p in fast.programs] == [
                    p.predicted_cpi for p in slow.programs
                ]

    def test_duplicate_ops_share_one_prediction_object(self):
        setup = self._setup("batched")
        machine = setup.machine(num_cores=2)
        mix = WorkloadMix(programs=tuple(setup.benchmark_names[:2]))
        other = WorkloadMix(programs=tuple(setup.benchmark_names[2:4]))
        results = setup.predict_batch(
            [(mix, machine), (other, machine), (mix, machine)], predictor="mppm:foa"
        )
        assert results[0] is results[2]
        assert results[0] is not results[1]

    def test_batch_path_populates_per_op_cache_entries(self, tmp_path):
        setup = self._setup("batched", cache_dir=tmp_path)
        machine = setup.machine(num_cores=2)
        pairs = [(mix, machine) for mix in setup.mixes(num_programs=2, num_mixes=3)]
        pairs.append(pairs[0])  # duplicate op: one store, two results
        first = setup.predict_batch(pairs, predictor="mppm:sdc")
        stats = setup.engine.cache_stats()
        predict_stores = 3  # unique (mix, machine) ops, not batch jobs
        assert stats["stores"] >= predict_stores

        # A fresh setup over the same cache directory answers every op
        # from the per-op cache entries the batch job scattered out.
        rerun_setup = self._setup("batched", cache_dir=tmp_path)
        rerun_machine = rerun_setup.machine(num_cores=2)
        rerun_pairs = [(mix, rerun_machine) for mix, _ in pairs]
        before = rerun_setup.engine.cache_stats()
        rerun = rerun_setup.predict_batch(rerun_pairs, predictor="mppm:sdc")
        after = rerun_setup.engine.cache_stats()
        assert after["hits"] - before["hits"] >= predict_stores
        for fresh, cached in zip(first, rerun):
            assert [p.predicted_cpi for p in fresh.programs] == [
                p.predicted_cpi for p in cached.programs
            ]


class TestMulticoreKernelPlumbing:
    """The interleaving kernel threads from ExperimentConfig to the
    reference simulator and into ``detailed`` provenance, without ever
    entering a cache key (the kernels are bit-identical)."""

    @staticmethod
    def _setup(multicore_kernel, **kwargs):
        return ExperimentSetup(
            config=ExperimentConfig(
                scale=16,
                num_instructions=30_000,
                interval_instructions=1_000,
                multicore_kernel=multicore_kernel,
            ),
            suite=small_suite(6),
            **kwargs,
        )

    def test_default_kernel_is_chunked(self):
        assert ExperimentConfig().multicore_kernel == "chunked"

    def test_all_kernels_simulate_bit_identically(self):
        from repro.simulators import MULTI_CORE_KERNELS

        setups = {kernel: self._setup(kernel) for kernel in MULTI_CORE_KERNELS}
        machine = setups["chunked"].machine(num_cores=4)
        mix = WorkloadMix(programs=tuple(setups["chunked"].benchmark_names[:4]))
        results = {
            kernel: setup.simulate(mix, machine) for kernel, setup in setups.items()
        }
        assert results["chunked"] == results["heap"] == results["scan"]

    def test_detailed_prediction_records_kernel_provenance(self):
        setup = self._setup("heap")
        machine = setup.machine(num_cores=2)
        mix = WorkloadMix(programs=tuple(setup.benchmark_names[:2]))
        direct = setup.predict(mix, machine, predictor="detailed")
        assert direct.predictor == "detailed"
        assert direct.kernel == "heap"
        # The sweep path repackages simulate jobs the same way.
        swept = setup.predict_batch([(mix, machine)], predictor="detailed")[0]
        assert swept.kernel == "heap"
        assert swept.programs == direct.programs

    def test_kernel_is_not_part_of_the_cache_key(self, tmp_path):
        mix_names = None
        results = []
        for kernel in ("chunked", "heap"):
            setup = self._setup(kernel, cache_dir=tmp_path)
            machine = setup.machine(num_cores=2)
            if mix_names is None:
                mix_names = tuple(setup.benchmark_names[:2])
            results.append(setup.simulate_batch([(WorkloadMix(programs=mix_names), machine)])[0])
        # The second setup must be served from the first one's cache
        # entry (identical bytes either way).
        assert results[0] == results[1]

    def test_parallel_simulation_matches_serial_bitwise(self):
        serial = self._setup("chunked")
        machine = serial.machine(num_cores=2)
        mixes = serial.mixes(num_programs=2, num_mixes=3)
        pairs = [(mix, machine) for mix in mixes]
        expected = serial.simulate_batch(pairs)
        parallel = self._setup("chunked", jobs=2)
        try:
            assert parallel.simulate_batch(pairs) == expected
        finally:
            parallel.close()
