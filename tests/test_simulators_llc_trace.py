"""Unit tests for the LLC access trace type."""

import numpy as np
import pytest

from repro.simulators.llc_trace import LLCAccessTrace, LLCTraceError
from repro.workloads.benchmark import BenchmarkSpec


def _trace(num_accesses=10, num_instructions=1_000, **overrides):
    kwargs = dict(
        spec=BenchmarkSpec(name="llc-test"),
        num_instructions=num_instructions,
        line=np.arange(num_accesses, dtype=np.int64),
        insn=np.linspace(0, num_instructions - 1, num_accesses).astype(np.int64),
        upstream_cycle_gap=np.full(num_accesses, 5.0),
        tail_cycles=10.0,
        isolated_cycles=2_000.0,
    )
    kwargs.update(overrides)
    return LLCAccessTrace(**kwargs)


class TestLLCAccessTrace:
    def test_derived_quantities(self):
        trace = _trace(num_accesses=20, num_instructions=2_000)
        assert trace.name == "llc-test"
        assert trace.num_llc_accesses == 20
        assert trace.llc_accesses_per_kilo_instruction == pytest.approx(10.0)
        assert trace.isolated_cpi == pytest.approx(1.0)
        assert trace.total_upstream_cycles == pytest.approx(20 * 5.0 + 10.0)
        assert "llc-test" in trace.describe()

    def test_array_lengths_must_match(self):
        with pytest.raises(LLCTraceError):
            _trace(line=np.arange(5, dtype=np.int64))

    def test_empty_trace_is_rejected(self):
        with pytest.raises(LLCTraceError):
            _trace(
                num_accesses=0,
                line=np.array([], dtype=np.int64),
                insn=np.array([], dtype=np.int64),
                upstream_cycle_gap=np.array([], dtype=np.float64),
            )

    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(num_instructions=0), "num_instructions"),
            (dict(tail_cycles=-1.0), "tail_cycles must be non-negative"),
            (dict(isolated_cycles=0.0), "isolated_cycles must be positive"),
            (dict(isolated_cycles=-3.0), "isolated_cycles must be positive"),
        ],
    )
    def test_invalid_scalars_rejected_with_precise_message(self, overrides, message):
        with pytest.raises(LLCTraceError, match=message):
            _trace(**overrides)

    def test_zero_tail_cycles_is_legal(self):
        trace = _trace(tail_cycles=0.0)
        assert trace.tail_cycles == 0.0

    def test_real_traces_from_the_store_are_consistent(self, store, tiny_suite, machine4):
        for name in ("gamess", "hmmer"):
            trace = store.get_llc_trace(tiny_suite[name], machine4)
            profile = store.get_profile(tiny_suite[name], machine4)
            assert trace.num_instructions == profile.num_instructions
            assert trace.isolated_cpi == pytest.approx(profile.cpi)
            assert trace.num_llc_accesses == pytest.approx(profile.total_llc_accesses)
