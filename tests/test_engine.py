"""Tests for the parallel experiment engine.

The engine's three contracts are exercised end-to-end against the real
experiment stack (at test scale):

* **Determinism** — the process-pool backend returns bit-identical
  results to the serial backend, in the same order.
* **Memoisation** — a warm persistent :class:`ResultCache` answers a
  repeated sweep with *zero* recomputation (no profiling, no reference
  simulation, no MPPM iteration).
* **Structure** — job graphs validate their dependencies and linearise
  into deterministic waves; progress hooks see every job's fate.
"""

import pytest

from repro.core.mppm import MPPM
from repro.engine import (
    CollectingReporter,
    Executor,
    Job,
    JobGraph,
    JobGraphError,
    MISS,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    content_key,
    create_engine,
)
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.simulators.multi_core import MultiCoreSimulator
from repro.workloads import sample_mixes, small_suite


ENGINE_CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)


def engine_setup(**kwargs) -> ExperimentSetup:
    return ExperimentSetup(config=ENGINE_CONFIG, suite=small_suite(5), **kwargs)


@pytest.fixture(scope="module")
def mixes():
    return sample_mixes(small_suite(5).names, 2, 6, seed=3)


# ---------------------------------------------------------------------------
# Job graph structure
# ---------------------------------------------------------------------------


def _noop() -> None:
    return None


class TestJobGraph:
    def test_duplicate_keys_rejected(self):
        graph = JobGraph([Job(key="a", fn=_noop)])
        with pytest.raises(JobGraphError):
            graph.add(Job(key="a", fn=_noop))

    def test_missing_dependency_rejected(self):
        graph = JobGraph([Job(key="a", fn=_noop, deps=("ghost",))])
        with pytest.raises(JobGraphError):
            graph.waves()

    def test_cycle_rejected(self):
        graph = JobGraph(
            [Job(key="a", fn=_noop, deps=("b",)), Job(key="b", fn=_noop, deps=("a",))]
        )
        with pytest.raises(JobGraphError):
            graph.waves()

    def test_waves_respect_dependencies_and_submission_order(self):
        graph = JobGraph(
            [
                Job(key="c", fn=_noop, deps=("a", "b")),
                Job(key="a", fn=_noop),
                Job(key="b", fn=_noop),
                Job(key="d", fn=_noop, deps=("c",)),
            ]
        )
        waves = [[job.key for job in wave] for wave in graph.waves()]
        assert waves == [["a", "b"], ["c"], ["d"]]


# ---------------------------------------------------------------------------
# Backends: serial vs process pool
# ---------------------------------------------------------------------------


class TestSerialVersusProcessPool:
    def test_predictions_are_bit_identical(self, mixes):
        serial = engine_setup()
        parallel = engine_setup(jobs=2)
        machine = serial.machine(num_cores=2)
        try:
            serial_predictions = serial.predict_many(mixes, machine)
            parallel_predictions = parallel.predict_many(mixes, machine)
        finally:
            parallel.close()
        # Dataclass equality compares every float exactly: bit-identical.
        assert serial_predictions == parallel_predictions

    def test_evaluations_are_bit_identical(self, mixes):
        serial = engine_setup()
        parallel = engine_setup(jobs=2)
        machine = serial.machine(num_cores=2)
        try:
            serial_evaluations = serial.evaluate_many(mixes, machine)
            parallel_evaluations = parallel.evaluate_many(mixes, machine)
        finally:
            parallel.close()
        for serial_one, parallel_one in zip(serial_evaluations, parallel_evaluations):
            assert serial_one.mix == parallel_one.mix
            assert serial_one.predicted == parallel_one.predicted
            assert serial_one.measured == parallel_one.measured

    def test_parallel_warm_phase_absorbs_worker_profiles(self, mixes):
        parallel = engine_setup(jobs=2)
        machine = parallel.machine(num_cores=2)
        try:
            parallel.predict_many(mixes, machine)
        finally:
            parallel.close()
        # The one-time profiling cost was paid on the pool, not inline.
        assert parallel.store.absorbed_profiles > 0
        assert parallel.store.simulated_profiles == 0


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_content_key_is_stable_and_discriminating(self):
        key = content_key("simulate", "machine", (1, 2), 42)
        assert key == content_key("simulate", "machine", (1, 2), 42)
        assert key != content_key("predict", "machine", (1, 2), 42)

    def test_memory_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is MISS
        cache.put("k", 123)
        assert cache.get("k") == 123
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_disk_roundtrip_of_registered_types(self, tmp_path, mixes):
        setup = engine_setup()
        machine = setup.machine(num_cores=2)
        prediction = setup.predict(mixes[0], machine)
        measurement = setup.simulate(mixes[0], machine)

        writer = ResultCache(tmp_path)
        writer.put("prediction", prediction)
        writer.put("measurement", measurement)

        reader = ResultCache(tmp_path)
        assert reader.get("prediction") == prediction
        assert reader.get("measurement") == measurement
        assert reader.loaded == 2

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / f"{'k'}.json").write_text("{not json", encoding="utf-8")
        assert cache.get("k") is MISS

    def test_warm_cache_performs_zero_recomputation(self, tmp_path, mixes, monkeypatch):
        cache_dir = tmp_path / "campaign"
        cold = engine_setup(cache_dir=cache_dir)
        machine = cold.machine(num_cores=2)
        cold_evaluations = cold.evaluate_many(mixes, machine)
        assert cold.store.simulated_profiles > 0

        # Any attempt to recompute would now blow up.
        def forbidden(self, *args, **kwargs):
            raise AssertionError("a warm cache must not recompute anything")

        monkeypatch.setattr(MultiCoreSimulator, "run", forbidden)
        monkeypatch.setattr(MPPM, "predict_mix", forbidden)
        from repro.profiling.profiler import Profiler

        monkeypatch.setattr(Profiler, "profile", forbidden)

        warm = engine_setup(cache_dir=cache_dir)
        warm_evaluations = warm.evaluate_many(mixes, machine)
        assert warm.store.simulated_profiles == 0
        assert warm.reference_runs() == 0
        for cold_one, warm_one in zip(cold_evaluations, warm_evaluations):
            assert cold_one.predicted == warm_one.predicted
            assert cold_one.measured == warm_one.measured

    def test_warm_cache_skips_the_profile_warmup_wave(self, tmp_path, mixes):
        cache_dir = tmp_path / "campaign"
        cold = engine_setup(cache_dir=cache_dir)
        machine = cold.machine(num_cores=2)
        cold.evaluate_many(mixes, machine)

        reporter = CollectingReporter()
        warm = engine_setup(
            engine=create_engine(cache_dir=cache_dir, reporter=reporter), cache_dir=cache_dir
        )
        warm.evaluate_many(mixes, machine)
        assert reporter.count("cached") == 2 * len(mixes)
        assert reporter.count("done") == 0
        assert reporter.count("skipped") > 0  # the optional profile wave
        # Not even a disk profile was touched.
        assert warm.store.loaded_profiles == 0 and warm.store.simulated_profiles == 0


# ---------------------------------------------------------------------------
# Executor behaviour
# ---------------------------------------------------------------------------


def _double(value: int) -> int:
    return 2 * value


class TestExecutor:
    def test_results_keep_submission_order(self):
        jobs = [Job(key=f"j{i}", fn=_double, args=(i,)) for i in range(20)]
        with Executor(ProcessPoolBackend(2)) as executor:
            assert executor.map(jobs) == [2 * i for i in range(20)]

    def test_identical_cache_keys_are_deduplicated_within_a_wave(self):
        reporter = CollectingReporter()
        executor = Executor(
            SerialBackend(), cache=ResultCache(), reporter=reporter
        )
        jobs = [
            Job(key="first", fn=_double, args=(21,), cache_key="same"),
            Job(key="second", fn=_double, args=(21,), cache_key="same"),
        ]
        results = executor.run(JobGraph(jobs))
        assert results == {"first": 42, "second": 42}
        assert reporter.count("done") == 1
        assert reporter.count("shared") == 1

    def test_progress_reporter_sees_every_job(self):
        reporter = CollectingReporter()
        executor = Executor(SerialBackend(), reporter=reporter)
        executor.map([Job(key=f"j{i}", fn=_double, args=(i,)) for i in range(5)])
        assert reporter.total_jobs == 5
        assert reporter.count("done") == 5
        assert reporter.finished

    def test_create_engine_validates_jobs(self):
        with pytest.raises(ValueError):
            create_engine(jobs=0)
