"""Unit tests for plain-text experiment reporting."""

from repro.experiments.reporting import format_percent, format_series, format_table, format_value


class TestFormatValue:
    def test_floats_use_the_given_format(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(1.23456, float_format="{:.1f}") == "1.2"

    def test_bools_ints_and_strings(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(42) == "42"
        assert format_value("text") == "text"


class TestFormatTable:
    def test_columns_are_aligned_and_ordered(self):
        rows = [
            {"name": "config #1", "stp": 3.14159, "mixes": 10},
            {"name": "config #2-long-name", "stp": 2.0, "mixes": 5},
        ]
        table = format_table(rows, title="My table:")
        lines = table.splitlines()
        assert lines[0] == "My table:"
        assert lines[1].startswith("name")
        assert "3.142" in table
        # Title + header + separator + 2 data rows.
        assert len(lines) == 5

    def test_missing_cells_render_empty(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "a" in table and "b" in table

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty:")


class TestFormatSeries:
    def test_series_wraps_lines(self):
        text = format_series("curve", [float(i) for i in range(25)], per_line=10)
        lines = text.splitlines()
        assert lines[0].startswith("curve (25 points)")
        assert len(lines) == 1 + 3  # 10 + 10 + 5 values


class TestFormatPercent:
    def test_percent_formatting(self):
        assert format_percent(0.1234) == "12.3%"
        assert format_percent(0.1234, decimals=0) == "12%"
