"""Unit tests for cache and memory configuration records."""

import pytest

from repro.config.cache_config import KIB, MIB, CacheConfig, ConfigurationError, MemoryConfig


class TestCacheConfig:
    def test_basic_geometry(self):
        cache = CacheConfig(name="L3", size_bytes=512 * KIB, associativity=8, line_size=64)
        assert cache.num_lines == 8192
        assert cache.num_sets == 1024
        assert not cache.is_fully_associative

    def test_fully_associative_when_ways_equal_lines(self):
        cache = CacheConfig(name="tiny", size_bytes=8 * 64, associativity=8, line_size=64)
        assert cache.num_sets == 1
        assert cache.is_fully_associative

    def test_with_associativity_keeps_capacity(self):
        cache = CacheConfig(name="L3", size_bytes=512 * KIB, associativity=16)
        reduced = cache.with_associativity(8)
        assert reduced.size_bytes == cache.size_bytes
        assert reduced.associativity == 8
        assert reduced.num_sets == 2 * cache.num_sets

    def test_with_size_and_latency(self):
        cache = CacheConfig(name="L3", size_bytes=512 * KIB, associativity=8, latency=16)
        assert cache.with_size(1 * MIB).size_bytes == 1 * MIB
        assert cache.with_latency(20).latency == 20

    def test_describe_mentions_size_and_sharing(self):
        shared = CacheConfig(name="L3", size_bytes=1 * MIB, associativity=16, shared=True)
        text = shared.describe()
        assert "L3" in text and "1MB" in text and "16-way" in text and "shared" in text
        private = CacheConfig(name="L1D", size_bytes=32 * KIB, associativity=8)
        assert "private" in private.describe()
        assert "32KB" in private.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0, associativity=8),
            dict(size_bytes=-64, associativity=8),
            dict(size_bytes=64 * KIB, associativity=0),
            dict(size_bytes=64 * KIB, associativity=8, line_size=0),
            dict(size_bytes=64 * KIB, associativity=8, latency=-1),
            dict(size_bytes=100, associativity=1, line_size=64),  # not a multiple of line size
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", **kwargs)

    def test_lines_must_divide_into_sets(self):
        # 3 lines cannot be divided into 2-way sets.
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=3 * 64, associativity=2, line_size=64)

    def test_is_hashable_and_frozen(self):
        cache = CacheConfig(name="L2", size_bytes=256 * KIB, associativity=8)
        assert hash(cache) == hash(CacheConfig(name="L2", size_bytes=256 * KIB, associativity=8))
        with pytest.raises(Exception):
            cache.size_bytes = 1  # type: ignore[misc]


class TestMemoryConfig:
    def test_default_latency_matches_paper(self):
        assert MemoryConfig().latency == 200

    def test_rejects_non_positive_latency(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(latency=0)
