"""Integration tests for the per-figure experiment harnesses.

These run the same code paths as the ``benchmarks/`` targets but on a
reduced setup (8 benchmarks, short traces, few mixes), asserting the
structural invariants of each experiment rather than the paper's
headline numbers (which the benchmark targets check at full scale).
"""

import pytest

from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.experiments.ablations import (
    contention_model_ablation,
    smoothing_ablation,
    update_rule_ablation,
)
from repro.experiments.accuracy import accuracy_experiment
from repro.experiments.agreement import agreement_experiment
from repro.experiments.configurations import configuration_tables
from repro.experiments.ranking import ranking_experiment
from repro.experiments.results import evaluate_mixes
from repro.experiments.speed import speed_experiment
from repro.experiments.stress import (
    benchmark_sensitivity,
    stress_experiment,
    worst_mix_case_study,
)
from repro.experiments.variability import variability_experiment
from repro.experiments.workload_space import workload_space_report
from repro.workloads import small_suite


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(
        config=ExperimentConfig(scale=16, num_instructions=30_000, interval_instructions=1_000),
        suite=small_suite(8),
    )


class TestConfigurationAndWorkloadSpace:
    def test_configuration_tables_render(self, setup):
        tables = configuration_tables(setup)
        assert len(tables.to_rows()) == 6
        text = tables.render()
        assert "Table 1" in text and "Table 2" in text

    def test_workload_space_counts_scale_with_suite(self, setup):
        report = workload_space_report(setup, core_counts=[2, 4])
        rows = {row["cores"]: row["possible_mixes"] for row in report.to_rows()}
        assert rows[2] == 36  # C(8 + 1, 2)
        assert rows[4] == 330  # C(11, 4)
        assert "8 benchmarks" in report.render()


class TestVariability:
    def test_confidence_interval_shrinks_with_more_mixes(self, setup):
        result = variability_experiment(setup, max_mixes=24, source="mppm", grid=[6, 12, 24])
        assert [point.num_mixes for point in result.points] == [6, 12, 24]
        assert result.points[-1].stp_ci_pct <= result.points[0].stp_ci_pct
        assert result.point_for(12).num_mixes == 12
        assert "Figure 3" in result.render()
        with pytest.raises(KeyError):
            result.point_for(99)

    def test_simulation_source_matches_mppm_source_roughly(self, setup):
        simulated = variability_experiment(setup, max_mixes=10, source="simulation", grid=[10])
        modelled = variability_experiment(setup, max_mixes=10, source="mppm", grid=[10])
        assert simulated.points[0].stp_mean == pytest.approx(
            modelled.points[0].stp_mean, rel=0.15
        )

    def test_invalid_source_rejected(self, setup):
        with pytest.raises(ValueError):
            variability_experiment(setup, source="oracle")


class TestAccuracy:
    def test_accuracy_experiment_structure_and_errors(self, setup):
        result = accuracy_experiment(setup, core_counts=(2, 4), mixes_per_core_count=6)
        assert {entry.num_cores for entry in result.per_core_count} == {2, 4}
        for entry in result.per_core_count:
            assert entry.num_mixes == 6
            assert 0 <= entry.average_stp_error < 0.25
            assert len(entry.stp_scatter()) == 6
            assert len(entry.slowdown_scatter()) == 6 * entry.num_cores
        assert "Figures 4 & 5" in result.render()
        with pytest.raises(KeyError):
            result.for_cores(16)

    def test_evaluate_mixes_pairs_predictions_with_measurements(self, setup):
        from repro.workloads import sample_mixes

        machine = setup.machine(num_cores=2)
        mixes = sample_mixes(setup.benchmark_names, 2, 3, seed=5)
        evaluations = evaluate_mixes(setup, mixes, machine)
        assert len(evaluations) == 3
        for evaluation in evaluations:
            assert evaluation.predicted.num_programs == 2
            assert len(evaluation.measured.programs) == 2
            assert evaluation.stp_error >= 0
            assert len(evaluation.slowdown_errors) == 2
            assert "STP" in evaluation.describe()


class TestSpeed:
    def test_speed_experiment_reports_positive_times(self, setup):
        result = speed_experiment(setup, num_cores=4, num_mixes=3, campaign_mixes=50)
        assert result.mppm_seconds_per_mix > 0
        assert result.simulation_seconds_per_mix > 0
        assert result.profiling_seconds_per_benchmark > 0
        assert result.speedup_excluding_profiling > 0
        assert result.speedup_including_profiling > 0
        assert result.one_time_profiling_seconds == pytest.approx(
            result.profiling_seconds_per_benchmark * result.num_benchmarks_profiled
        )
        assert "speedup" in result.render()


class TestRankingAndAgreement:
    def test_ranking_experiment_structure(self, setup):
        result = ranking_experiment(
            setup,
            policy="random",
            num_trials=3,
            mixes_per_trial=4,
            reference_mixes=8,
            mppm_mixes=12,
        )
        assert len(result.trials) == 3
        assert len(result.trial_stp_correlations) == 3
        assert -1.0 <= result.mppm_stp_correlation <= 1.0
        assert result.reference.config_numbers == [1, 2, 3, 4, 5, 6]
        assert result.mppm.best_config_by_stp() in range(1, 7)
        rows = result.to_rows()
        assert rows[-1]["set"] == "mppm:foa"
        assert "Figure 7" in result.render()

    def test_ranking_category_policy_and_validation(self, setup):
        result = ranking_experiment(
            setup,
            policy="category",
            num_trials=2,
            mixes_per_trial=3,
            reference_mixes=6,
            mppm_mixes=8,
        )
        assert result.policy == "category"
        with pytest.raises(ValueError):
            ranking_experiment(setup, policy="exhaustive")

    def test_agreement_fractions_sum_to_one(self, setup):
        result = agreement_experiment(
            setup,
            num_trials=4,
            mixes_per_trial=3,
            reference_mixes=6,
            mppm_mixes=8,
        )
        assert len(result.pairs) == 5
        for pair in result.pairs:
            total = (
                pair.agree_both_right
                + pair.agree_both_wrong
                + pair.disagree_mppm_right
                + pair.disagree_practice_right
            )
            assert total == pytest.approx(1.0)
            assert 0 <= pair.disagree_fraction <= 1
            assert 0 <= pair.practice_wrong_fraction <= 1
        assert result.pair(6).challenger_config == 6
        assert "Figure 8" in result.render()
        with pytest.raises(ValueError):
            agreement_experiment(setup, metric="ipc")


class TestStress:
    def test_stress_experiment_sorting_and_overlap(self, setup):
        result = stress_experiment(setup, num_mixes=10, worst_k=3)
        measured = result.measured_stp_curve()
        assert measured == sorted(measured)
        assert len(result.predicted_stp_curve()) == 10
        assert 0 <= result.worst_case_overlap() <= 3
        assert len(result.worst_mixes_measured()) == 3
        assert result.worst_mix().measured_stp == pytest.approx(measured[0])
        assert "Figure 9" in result.render()

    def test_case_study_contains_requested_programs(self, setup):
        from repro.workloads import WorkloadMix

        mix = WorkloadMix(programs=("gamess", "gamess", "hmmer", "soplex"))
        result = worst_mix_case_study(setup, mix=mix)
        assert {program.name for program in result.programs} == {"gamess", "hmmer", "soplex"}
        gamess = result.program("gamess")
        assert gamess.measured_slowdown > 1.0
        assert gamess.predicted_slowdown > 1.0
        assert "Figure 6" in result.render()
        with pytest.raises(KeyError):
            result.program("povray")

    def test_benchmark_sensitivity_aggregation(self, setup):
        stress = stress_experiment(setup, num_mixes=8, worst_k=3)
        sensitivity = benchmark_sensitivity(stress.evaluations)
        rows = sensitivity.to_rows()
        assert rows == sorted(rows, key=lambda row: row["max_slowdown"], reverse=True)
        for row in rows:
            assert row["max_slowdown"] >= row["mean_slowdown"] - 1e-9
            assert row["appearances"] >= 1
        assert sensitivity.most_sensitive() in setup.benchmark_names
        with pytest.raises(KeyError):
            sensitivity.max_slowdown("not-a-benchmark")


class TestAblations:
    def test_contention_model_ablation(self, setup):
        result = contention_model_ablation(setup, models=("foa", "sdc"), num_mixes=4)
        assert {row.variant for row in result.rows} == {"foa", "sdc"}
        assert result.best_variant_by_stp() in ("foa", "sdc")
        assert "Ablation" in result.render()
        with pytest.raises(KeyError):
            result.row("prob")

    def test_smoothing_ablation(self, setup):
        result = smoothing_ablation(setup, smoothing_factors=(0.0, 0.5), num_mixes=4)
        assert {row.variant for row in result.rows} == {"f=0.00", "f=0.50"}
        for row in result.rows:
            assert row.stp_error >= 0

    def test_update_rule_ablation(self, setup):
        result = update_rule_ablation(setup, num_mixes=4)
        assert {row.variant for row in result.rows} == {"self-consistent", "literal Figure 2"}
