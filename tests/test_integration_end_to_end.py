"""End-to-end integration tests: the full MPPM pipeline versus the reference.

These tests exercise the complete flow the paper describes — generate
workloads, profile them in isolation, run MPPM, and compare against the
detailed shared-LLC simulation — and assert the paper's qualitative
findings at test scale: MPPM is accurate for STP/ANTT, it identifies
the sharing-sensitive program, and it ranks LLC design points the same
way the reference does.
"""

import pytest

from repro import quickstart_predict
from repro.core import MPPM
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.metrics import mean_absolute_relative_error, spearman_rank_correlation
from repro.simulators import MultiCoreSimulator
from repro.workloads import WorkloadMix, sample_mixes, small_suite


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(
        config=ExperimentConfig(scale=16, num_instructions=40_000, interval_instructions=1_000),
        suite=small_suite(8),
    )


class TestPredictionAccuracy:
    def test_mppm_tracks_detailed_simulation_across_random_mixes(self, setup):
        machine = setup.machine(num_cores=4, llc_config=1)
        mixes = sample_mixes(setup.benchmark_names, 4, 10, seed=99)
        predicted_stp, measured_stp = [], []
        predicted_antt, measured_antt = [], []
        for mix in mixes:
            prediction = setup.predict(mix, machine)
            measurement = setup.simulate(mix, machine)
            predicted_stp.append(prediction.system_throughput)
            measured_stp.append(measurement.system_throughput)
            predicted_antt.append(prediction.average_normalized_turnaround_time)
            measured_antt.append(measurement.average_normalized_turnaround_time)
        assert mean_absolute_relative_error(predicted_stp, measured_stp) < 0.08
        assert mean_absolute_relative_error(predicted_antt, measured_antt) < 0.12
        # The per-mix ordering is preserved well enough to rank workloads.
        assert spearman_rank_correlation(predicted_stp, measured_stp) > 0.7

    def test_worst_case_mix_reproduces_figure6_shape(self, setup):
        machine = setup.machine(num_cores=4, llc_config=1)
        mix = WorkloadMix(programs=("gamess", "gamess", "hmmer", "soplex"))
        prediction = setup.predict(mix, machine)
        measurement = setup.simulate(mix, machine)
        predicted = {p.name: p.slowdown for p in prediction.programs}
        measured = {p.name: p.slowdown for p in measurement.programs}
        # gamess is hit hardest, hmmer barely, in both views of the world.
        assert measured["gamess"] == max(measured.values())
        assert predicted["gamess"] == max(predicted.values())
        assert measured["hmmer"] == min(measured.values())
        assert predicted["hmmer"] == min(predicted.values())

    def test_mppm_and_reference_agree_on_llc_design_ranking(self, setup):
        mixes = sample_mixes(setup.benchmark_names, 4, 6, seed=123)
        predicted_scores, measured_scores = [], []
        for llc_config in (1, 4, 6):
            machine = setup.machine(num_cores=4, llc_config=llc_config)
            predicted = [setup.predict(mix, machine).system_throughput for mix in mixes]
            measured = [setup.simulate(mix, machine).system_throughput for mix in mixes]
            predicted_scores.append(sum(predicted) / len(predicted))
            measured_scores.append(sum(measured) / len(measured))
        assert spearman_rank_correlation(predicted_scores, measured_scores) == pytest.approx(1.0)

    def test_larger_llc_helps_in_both_model_and_simulation(self, setup):
        mix = WorkloadMix(programs=("gamess", "soplex", "omnetpp", "mcf"))
        small_machine = setup.machine(num_cores=4, llc_config=1)
        large_machine = setup.machine(num_cores=4, llc_config=6)
        assert (
            setup.simulate(mix, large_machine).average_normalized_turnaround_time
            <= setup.simulate(mix, small_machine).average_normalized_turnaround_time + 1e-9
        )
        assert (
            setup.predict(mix, large_machine).average_normalized_turnaround_time
            <= setup.predict(mix, small_machine).average_normalized_turnaround_time + 0.05
        )


class TestDecoupling:
    def test_profiles_decouple_model_from_simulator(self, setup):
        """MPPM needs only the profiles: predictions from a profile library equal
        predictions computed through the setup's convenience path."""
        machine = setup.machine(num_cores=2, llc_config=1)
        profiles = setup.profiles(machine)
        mix = WorkloadMix(programs=("gamess", "soplex"))
        direct = MPPM(machine).predict_mix(mix, profiles)
        via_setup = setup.predict(mix, machine)
        assert direct.predicted_cpis == pytest.approx(via_setup.predicted_cpis)

    def test_scaling_core_count_reuses_single_core_profiles(self, setup):
        two_core = setup.machine(num_cores=2)
        eight_core = setup.machine(num_cores=8)
        assert setup.profiles(two_core) is setup.profiles(eight_core)
        mixes = sample_mixes(setup.benchmark_names, 8, 2, seed=7)
        for mix in mixes:
            prediction = setup.predict(mix, eight_core)
            assert prediction.num_programs == 8


class TestQuickstart:
    def test_quickstart_predict_single_call(self, setup):
        prediction = quickstart_predict(["gamess", "hmmer"], setup=setup)
        assert prediction.num_programs == 2
        assert prediction.converged
        assert prediction.program("gamess").slowdown >= 1.0
