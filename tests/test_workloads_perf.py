"""Tests for the ``perf:`` workload family and the spec29 category subsets.

The contract pinned here: ``perf:<path>`` specs canonicalise with a
content digest of the source (so engine cache entries are invalidated
when the samples change on disk), accept ``benchmarks=`` / ``seed=``
sub-parameters, preserve path case, and flow through ExperimentSetup
with serial/parallel bit-identity; ``suite:spec29/mem|comp|mix`` are
the classification-derived subsets of the full suite.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.ingest import write_bundle
from repro.ingest.workload import ingest_to_bundle
from repro.workloads import (
    BenchmarkClass,
    WorkloadMix,
    WorkloadSpecError,
    canonical_workload_spec,
    classify_suite,
    describe_workloads,
    make_workload,
    spec_cpu2006_like_suite,
)

FIXTURE = Path(__file__).parent / "data" / "perf_ingest_samples.csv"

CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory):
    workload, _ = ingest_to_bundle(FIXTURE)
    out = tmp_path_factory.mktemp("perf") / "bundle"
    write_bundle(workload, out)
    return out


class TestPerfSpecs:
    def test_canonicalisation_appends_the_source_digest(self):
        canonical = canonical_workload_spec(f"perf:{FIXTURE}")
        assert canonical.startswith(f"perf:{FIXTURE},digest=")
        digest = canonical.rpartition("=")[2]
        assert len(digest) == 12
        assert int(digest, 16) >= 0
        # Idempotent: canonicalising the canonical form is a no-op.
        assert canonical_workload_spec(canonical) == canonical

    def test_path_case_is_preserved(self, tmp_path):
        mixed_case = tmp_path / "MySamples.csv"
        mixed_case.write_text(FIXTURE.read_text())
        machine_src = FIXTURE.with_name(FIXTURE.stem + ".machine.json")
        (tmp_path / "MySamples.machine.json").write_text(machine_src.read_text())
        canonical = canonical_workload_spec(f"perf:{mixed_case}")
        assert "MySamples.csv" in canonical

    def test_sub_parameters_are_ordered_canonically(self):
        canonical = canonical_workload_spec(f"perf:{FIXTURE},seed=3,benchmarks=2")
        assert canonical.startswith(f"perf:{FIXTURE},benchmarks=2,seed=3,digest=")

    def test_raw_samples_build_one_benchmark_per_core(self):
        suite = make_workload(f"perf:{FIXTURE}").suite()
        assert suite.names == ["pmu-c0", "pmu-c1", "pmu-c2"]

    def test_benchmarks_parameter_selects_a_prefix(self):
        suite = make_workload(f"perf:{FIXTURE},benchmarks=2").suite()
        assert suite.names == ["pmu-c0", "pmu-c1"]

    def test_seed_parameter_reseeds_the_fitted_specs(self):
        base = make_workload(f"perf:{FIXTURE}").suite()
        reseeded = make_workload(f"perf:{FIXTURE},seed=5").suite()
        assert all(spec.seed == 5 for spec in reseeded)
        assert [spec.name for spec in base] == [spec.name for spec in reseeded]

    def test_bundle_specs_skip_refitting(self, bundle_dir):
        suite = make_workload(f"perf:{bundle_dir}").suite()
        assert suite.names == ["pmu-c0", "pmu-c1", "pmu-c2"]

    def test_bundle_and_raw_samples_fit_identically(self, bundle_dir):
        raw = make_workload(f"perf:{FIXTURE}").suite()
        stored = make_workload(f"perf:{bundle_dir}").suite()
        assert raw.specs == stored.specs

    def test_digest_mismatch_is_a_structured_error(self):
        with pytest.raises(WorkloadSpecError, match="changed on disk"):
            make_workload(f"perf:{FIXTURE},digest=000000000000")

    def test_missing_file_is_a_spec_error(self, tmp_path):
        with pytest.raises(WorkloadSpecError, match="not found"):
            make_workload(f"perf:{tmp_path / 'nope.csv'}")

    def test_malformed_samples_are_spec_errors(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("core,timestamp\n0,1.0\n")
        (tmp_path / "machine.json").write_text(
            (FIXTURE.with_name(FIXTURE.stem + ".machine.json")).read_text()
        )
        with pytest.raises(WorkloadSpecError, match="missing"):
            make_workload(f"perf:{bad}")

    def test_unknown_parameter_is_rejected(self):
        with pytest.raises(WorkloadSpecError, match="cores"):
            make_workload(f"perf:{FIXTURE},cores=2")

    def test_benchmarks_out_of_range_is_rejected(self):
        with pytest.raises(WorkloadSpecError, match="benchmarks"):
            make_workload(f"perf:{FIXTURE},benchmarks=9")

    def test_family_is_advertised(self):
        rows = dict(describe_workloads())
        assert any(spec.startswith("perf:") for spec in rows)


class TestPerfThroughTheStack:
    def test_setup_accepts_perf_specs(self, bundle_dir):
        setup = ExperimentSetup(config=CONFIG, workload=f"perf:{bundle_dir}")
        assert setup.workload_spec.startswith(f"perf:{bundle_dir},digest=")
        assert setup.benchmark_names == ["pmu-c0", "pmu-c1", "pmu-c2"]
        mix = WorkloadMix(programs=("pmu-c0", "pmu-c1"))
        machine = setup.machine(num_cores=2)
        prediction = setup.predict(mix, machine)
        assert prediction.system_throughput > 0

    def test_parallel_engine_is_bit_identical_to_serial(self, bundle_dir, tmp_path):
        spec = f"perf:{bundle_dir}"
        serial = ExperimentSetup(config=CONFIG, workload=spec)
        parallel = ExperimentSetup(
            config=CONFIG, workload=spec, jobs=2, cache_dir=tmp_path / "cache"
        )
        try:
            machine = serial.machine(num_cores=2)
            pairs = [
                (WorkloadMix(programs=("pmu-c0", "pmu-c1")), machine),
                (WorkloadMix(programs=("pmu-c2", "pmu-c0")), machine),
            ]
            assert parallel.predict_batch(pairs) == serial.predict_batch(pairs)
        finally:
            parallel.close()

    def test_digest_qualifies_the_engine_cache(self, bundle_dir, tmp_path):
        """Changing the source changes the canonical spec, hence the keys."""
        from repro.engine import tasks as engine_tasks

        other = tmp_path / "other"
        workload, _ = ingest_to_bundle(FIXTURE)
        from dataclasses import replace

        write_bundle(replace(workload, source_digest="feedfacecafe"), other)
        mix = WorkloadMix(programs=("pmu-c0", "pmu-c1"))
        keys = []
        for path in (bundle_dir, other):
            setup = ExperimentSetup(config=CONFIG, workload=f"perf:{path}")
            machine = setup.machine(num_cores=2)
            job = engine_tasks.predict_job(setup, mix, machine, key="op:0")
            keys.append(job.cache_key)
        assert keys[0] != keys[1]


class TestCategorySubsets:
    @pytest.mark.parametrize("modifier", ["mem", "comp", "mix"])
    def test_subset_matches_the_classification(self, modifier):
        suite = make_workload(f"suite:spec29/{modifier}").suite()
        classes = classify_suite(spec_cpu2006_like_suite())
        expected = [
            name
            for name, cls in classes.items()
            if cls is BenchmarkClass(modifier.upper())
        ]
        assert suite.names == expected
        assert len(suite) > 0

    def test_canonicalisation_and_case(self):
        assert canonical_workload_spec("SUITE:SPEC29/MEM") == "suite:spec29/mem"

    def test_subsets_work_as_experiment_workloads(self):
        setup = ExperimentSetup(config=CONFIG, workload="suite:spec29/mem")
        assert setup.workload_spec == "suite:spec29/mem"
        mixes = setup.mixes(2, 2, seed=1)
        classes = setup.classification()
        for mix in mixes:
            assert all(classes[name] is BenchmarkClass.MEM for name in mix.programs)

    def test_unknown_modifier_is_rejected(self):
        with pytest.raises(WorkloadSpecError):
            make_workload("suite:spec29/io")
