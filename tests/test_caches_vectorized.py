"""Unit tests for the vectorized stack-distance kernel.

The kernel's contract is exact equivalence with the per-access
reference machinery: :func:`stack_distances` must reproduce
:class:`StackDistanceProfiler` access by access, and
:func:`replay_hierarchy` must reproduce a stateful
:class:`CacheHierarchy` walk, for any stream and any cache geometry —
including single-set (fully associative) and direct-mapped corners.
"""

import numpy as np
import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.stack_distance import StackDistanceCounters, StackDistanceProfiler
from repro.caches.vectorized import (
    _count_preceding_greater,
    lru_hit_mask,
    replay_hierarchy,
    stack_distances,
)
from repro.config.cache_config import CacheConfig
from repro.config.machine import MachineConfig


def _random_stream(rng, n, num_lines, repeat_runs=False):
    """A random line-address stream, optionally with MRU repeat runs."""
    lines = rng.integers(0, num_lines, n).astype(np.int64)
    if repeat_runs:
        lines = np.repeat(lines, 3)[:n]
    # Scatter the address space the way the generator does (large
    # per-benchmark bases, non-contiguous line ids).
    return lines * int(rng.choice([1, 7, 1 << 20])) + int(rng.choice([0, 1 << 40]))


class TestCountPrecedingGreater:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(42)
        for _ in range(60):
            n = int(rng.integers(1, 150))
            values = rng.integers(0, int(rng.choice([1, 2, 4, 30, 10**6])), n)
            brute = np.array([(values[:k] > values[k]).sum() for k in range(n)])
            assert np.array_equal(_count_preceding_greater(values), brute)

    def test_trivial_inputs(self):
        assert _count_preceding_greater(np.array([], dtype=np.int64)).size == 0
        assert np.array_equal(_count_preceding_greater(np.array([7])), [0])
        assert np.array_equal(
            _count_preceding_greater(np.array([3, 2, 1, 0])), [0, 1, 2, 3]
        )
        assert np.array_equal(
            _count_preceding_greater(np.array([0, 0, 0])), [0, 0, 0]
        )


class TestStackDistances:
    @pytest.mark.parametrize("num_sets", [1, 2, 4, 5, 16, 64])
    def test_matches_profiler(self, num_sets):
        rng = np.random.default_rng(num_sets)
        for trial in range(25):
            n = int(rng.integers(1, 500))
            lines = _random_stream(
                rng, n, int(rng.integers(1, 90)), repeat_runs=trial % 3 == 0
            )
            profiler = StackDistanceProfiler(num_sets=num_sets, associativity=4)
            expected = np.array([profiler.access(int(line)) for line in lines])
            assert np.array_equal(stack_distances(lines, num_sets), expected)

    def test_cold_accesses_are_zero(self):
        lines = np.array([10, 20, 30], dtype=np.int64)
        assert np.array_equal(stack_distances(lines, 4), [0, 0, 0])

    def test_mru_repeats_are_distance_one(self):
        lines = np.array([5, 5, 5, 5], dtype=np.int64)
        assert np.array_equal(stack_distances(lines, 8), [0, 1, 1, 1])

    def test_rejects_bad_num_sets(self):
        with pytest.raises(ValueError):
            stack_distances(np.array([1, 2]), 0)

    def test_empty_stream(self):
        assert stack_distances(np.array([], dtype=np.int64), 4).size == 0

    @pytest.mark.parametrize("associativity", [1, 2, 8])
    def test_hit_mask_matches_lru_cache(self, associativity):
        """Stack inclusion: distance <= A iff an A-way LRU cache hits."""
        rng = np.random.default_rng(associativity)
        config = CacheConfig(
            name="c", size_bytes=8 * 64 * associativity, associativity=associativity
        )
        for _ in range(10):
            lines = _random_stream(rng, 400, 60)
            cache = SetAssociativeCache(config)
            expected = np.array([cache.access(int(line)).hit for line in lines])
            distances = stack_distances(lines, config.num_sets)
            assert np.array_equal(lru_hit_mask(distances, associativity), expected)


class TestReplayHierarchy:
    def _machines(self):
        line = 64
        return [
            MachineConfig(),  # default L1/L2/L3
            MachineConfig(  # single-set (fully associative) everything
                private_levels=(
                    CacheConfig(name="L1D", size_bytes=4 * line, associativity=4),
                ),
                llc=CacheConfig(
                    name="L3", size_bytes=16 * line, associativity=16, shared=True
                ),
            ),
            MachineConfig(  # direct-mapped private levels and LLC
                private_levels=(
                    CacheConfig(name="L1D", size_bytes=8 * line, associativity=1),
                    CacheConfig(name="L2", size_bytes=32 * line, associativity=1),
                ),
                llc=CacheConfig(
                    name="L3", size_bytes=128 * line, associativity=1, shared=True
                ),
            ),
        ]

    def test_matches_stateful_hierarchy(self):
        rng = np.random.default_rng(7)
        for machine in self._machines():
            lines = _random_stream(rng, 600, 200)
            hierarchy = CacheHierarchy(machine, include_llc=True)
            num_private = len(machine.private_levels)
            expected_levels = []
            expected_llc = []
            for line in lines:
                outcome = hierarchy.access(int(line))
                if not outcome.reached_llc:
                    expected_levels.append(outcome.level_index)
                else:
                    expected_levels.append(
                        num_private if outcome.llc_hit else num_private + 1
                    )
                    expected_llc.append(int(line))
            served, llc_index, llc_distances = replay_hierarchy(lines, machine)
            assert np.array_equal(served, expected_levels)
            assert np.array_equal(lines[llc_index], expected_llc)
            # The distances reproduce the SDC profiler on the filtered stream.
            profiler = StackDistanceProfiler(
                num_sets=machine.llc.num_sets, associativity=machine.llc.associativity
            )
            expected_distances = [profiler.access(line) for line in expected_llc]
            assert np.array_equal(llc_distances, expected_distances)


class TestFromDistancesBatchAPI:
    def test_matches_record(self):
        rng = np.random.default_rng(3)
        distances = rng.integers(0, 14, 300)
        recorded = StackDistanceCounters(associativity=8)
        for distance in distances:
            recorded.record(int(distance))
        batched = StackDistanceCounters.from_distances(distances, 8)
        assert batched == recorded
        assert np.array_equal(batched.counts, recorded.counts)

    def test_empty_batch(self):
        counters = StackDistanceCounters.from_distances(np.array([], dtype=np.int64), 4)
        assert counters.total_accesses == 0

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            StackDistanceCounters.from_distances(np.array([1]), 0)
