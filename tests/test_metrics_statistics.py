"""Unit and property tests for confidence intervals and rank statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.statistics import (
    StatisticsError,
    bootstrap_confidence_interval,
    confidence_interval,
    mean_confidence_halfwidth_pct,
    rank_of,
    spearman_rank_correlation,
)


class TestConfidenceInterval:
    def test_interval_contains_the_sample_mean(self):
        samples = [3.0, 3.2, 3.4, 3.1, 3.3]
        interval = confidence_interval(samples)
        assert interval.lower <= interval.mean <= interval.upper
        assert interval.contains(interval.mean)
        assert interval.num_samples == 5
        assert interval.confidence == 0.95

    def test_more_samples_tighten_the_interval(self):
        rng = np.random.default_rng(0)
        population = rng.normal(loc=3.5, scale=0.4, size=200)
        small = confidence_interval(population[:10])
        large = confidence_interval(population)
        assert large.halfwidth < small.halfwidth
        assert large.halfwidth_pct_of_mean < small.halfwidth_pct_of_mean

    def test_halfwidth_pct_helper(self):
        samples = [10.0, 10.5, 9.5, 10.2, 9.8]
        pct = mean_confidence_halfwidth_pct(samples)
        interval = confidence_interval(samples)
        assert pct == pytest.approx(100.0 * interval.halfwidth / interval.mean)

    def test_zero_variance_gives_zero_width(self):
        interval = confidence_interval([2.0] * 10)
        assert interval.halfwidth == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(StatisticsError):
            confidence_interval([1.0])
        with pytest.raises(StatisticsError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    @given(
        samples=st.lists(st.floats(min_value=1.0, max_value=10.0), min_size=3, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_interval_always_brackets_the_mean(self, samples):
        interval = confidence_interval(samples)
        assert interval.lower - 1e-9 <= np.mean(samples) <= interval.upper + 1e-9


class TestBootstrap:
    def test_bootstrap_interval_brackets_the_mean_and_is_deterministic(self):
        samples = list(np.random.default_rng(1).normal(5.0, 1.0, size=40))
        first = bootstrap_confidence_interval(samples, seed=7)
        second = bootstrap_confidence_interval(samples, seed=7)
        assert first.lower <= first.mean <= first.upper
        assert first.lower == second.lower and first.upper == second.upper

    def test_bootstrap_validation(self):
        with pytest.raises(StatisticsError):
            bootstrap_confidence_interval([1.0])
        with pytest.raises(StatisticsError):
            bootstrap_confidence_interval([1.0, 2.0], confidence=0.0)


class TestRanking:
    def test_rank_of_orders_best_first(self):
        values = [3.0, 1.0, 2.0]
        assert rank_of(values, higher_is_better=True) == [0, 2, 1]
        assert rank_of(values, higher_is_better=False) == [2, 0, 1]
        with pytest.raises(StatisticsError):
            rank_of([])

    def test_spearman_known_cases(self):
        assert spearman_rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)
        # A single swapped pair lowers but does not destroy the correlation.
        partial = spearman_rank_correlation([1, 2, 3, 4], [10, 20, 40, 30])
        assert 0.5 < partial < 1.0

    def test_spearman_handles_ties(self):
        value = spearman_rank_correlation([1.0, 1.0, 2.0], [1.0, 1.0, 3.0])
        assert value == pytest.approx(1.0)

    def test_spearman_with_constant_series(self):
        assert spearman_rank_correlation([1.0, 1.0, 1.0], [1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_spearman_validation(self):
        with pytest.raises(StatisticsError):
            spearman_rank_correlation([1.0], [1.0])
        with pytest.raises(StatisticsError):
            spearman_rank_correlation([1.0, 2.0], [1.0])

    def test_spearman_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(3)
        first = list(rng.normal(size=30))
        second = list(rng.normal(size=30))
        ours = spearman_rank_correlation(first, second)
        theirs = scipy_stats.spearmanr(first, second).correlation
        assert ours == pytest.approx(theirs, abs=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=2, max_size=20, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_spearman_is_symmetric_and_bounded(self, values):
        other = list(reversed(values))
        forward = spearman_rank_correlation(values, other)
        backward = spearman_rank_correlation(other, values)
        assert forward == pytest.approx(backward)
        assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9
        assert spearman_rank_correlation(values, values) == pytest.approx(1.0)
