"""Tests for the two-stage ``hybrid:k=K`` predictor.

The contract pinned here: ``hybrid`` canonicalises to ``hybrid:k=4``
and any ``k >= 1`` is valid; a pool sweep predicts the bulk with the
default MPPM spec and re-runs the predicted worst-``K`` mixes (lowest
predicted STP, ties by op index) through the detailed simulator; every
result is tagged with the hybrid spec; and the spot-check stage shares
cache entries with plain ``detailed`` runs of the same pairs.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.predictors import (
    DEFAULT_HYBRID_K,
    PredictorError,
    canonical_spec,
    hybrid_worst_k,
    make_predictor,
    predictor_requires_traces,
)
from repro.workloads import WorkloadMix, small_suite

CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)


def make_setup(**kwargs) -> ExperimentSetup:
    return ExperimentSetup(config=CONFIG, suite=small_suite(5), **kwargs)


@pytest.fixture(scope="module")
def setup():
    return make_setup()


@pytest.fixture(scope="module")
def machine(setup):
    return setup.machine(num_cores=2)


@pytest.fixture(scope="module")
def pool(setup):
    return setup.mixes(2, 5, seed=3)


class TestSpec:
    def test_shorthand_and_case(self):
        assert canonical_spec("hybrid") == f"hybrid:k={DEFAULT_HYBRID_K}"
        assert canonical_spec("  HYBRID:K=2 ") == "hybrid:k=2"
        assert hybrid_worst_k("hybrid:k=7") == 7
        assert hybrid_worst_k("hybrid") == DEFAULT_HYBRID_K

    @pytest.mark.parametrize("bad", ["hybrid:k=", "hybrid:k=x", "hybrid:k=0", "hybrid:n=2"])
    def test_malformed_k_is_rejected(self, bad):
        with pytest.raises(PredictorError):
            canonical_spec(bad)

    def test_hybrid_requires_traces(self):
        assert predictor_requires_traces("hybrid")
        assert predictor_requires_traces("hybrid:k=2")

    def test_worst_k_rejects_non_hybrid_specs(self):
        with pytest.raises(PredictorError):
            hybrid_worst_k("mppm:foa")


class TestSingleMix:
    def test_single_mix_is_a_retagged_detailed_prediction(self, setup, machine):
        mix = WorkloadMix(programs=tuple(setup.benchmark_names[:2]))
        hybrid = setup.predict(mix, machine, predictor="hybrid")
        detailed = setup.predict(mix, machine, predictor="detailed")
        assert hybrid.predictor == f"hybrid:k={DEFAULT_HYBRID_K}"
        assert hybrid == replace(detailed, predictor=hybrid.predictor)

    def test_make_predictor_constructs_the_adapter(self, setup, machine):
        predictor = make_predictor("hybrid:k=3", setup)
        assert predictor.worst_k == 3
        assert "worst-3" in predictor.describe()


class TestPoolSweep:
    def test_worst_k_get_detailed_numbers_and_the_rest_mppm(
        self, setup, machine, pool
    ):
        k = 2
        pairs = [(mix, machine) for mix in pool]
        hybrid = setup.predict_batch(pairs, predictor=f"hybrid:k={k}")
        mppm = setup.predict_batch(pairs)
        detailed = setup.predict_batch(pairs, predictor="detailed")
        ranked = sorted(
            range(len(pool)), key=lambda i: (mppm[i].system_throughput, i)
        )
        spot = set(ranked[:k])
        for i, prediction in enumerate(hybrid):
            assert prediction.predictor == f"hybrid:k={k}"
            expected = detailed[i] if i in spot else mppm[i]
            assert prediction == replace(expected, predictor=prediction.predictor)

    def test_k_larger_than_the_pool_is_all_detailed(self, setup, machine, pool):
        pairs = [(mix, machine) for mix in pool]
        hybrid = setup.predict_batch(pairs, predictor="hybrid:k=99")
        detailed = setup.predict_batch(pairs, predictor="detailed")
        for got, expected in zip(hybrid, detailed):
            assert got == replace(expected, predictor="hybrid:k=99")

    def test_parallel_engine_is_bit_identical_to_serial(self, pool, tmp_path):
        serial = make_setup()
        parallel = make_setup(jobs=2, cache_dir=tmp_path / "cache")
        try:
            machine = serial.machine(num_cores=2)
            pairs = [(mix, machine) for mix in pool]
            assert parallel.predict_batch(
                pairs, predictor="hybrid:k=2"
            ) == serial.predict_batch(pairs, predictor="hybrid:k=2")
        finally:
            parallel.close()
            serial.close()

    def test_spot_checks_share_the_detailed_cache(self, pool, tmp_path, monkeypatch):
        """A warm detailed sweep leaves nothing for hybrid to simulate."""
        from repro.simulators.multi_core import MultiCoreSimulator

        cache_dir = tmp_path / "cache"
        cold = make_setup(cache_dir=cache_dir)
        machine = cold.machine(num_cores=2)
        pairs = [(mix, machine) for mix in pool]
        detailed = cold.predict_batch(pairs, predictor="detailed")
        cold.close()

        def forbidden(self, *args, **kwargs):
            raise AssertionError("hybrid spot-checks must reuse cached simulations")

        monkeypatch.setattr(MultiCoreSimulator, "run", forbidden)
        warm = make_setup(cache_dir=cache_dir)
        try:
            hybrid = warm.predict_batch(pairs, predictor="hybrid:k=99")
            for got, expected in zip(hybrid, detailed):
                assert got == replace(expected, predictor="hybrid:k=99")
        finally:
            warm.close()

    def test_mppm_config_is_rejected_with_hybrid(self, setup, machine, pool):
        from repro.core.mppm import MPPMConfig

        pairs = [(mix, machine) for mix in pool]
        with pytest.raises(PredictorError, match="two-stage"):
            setup.predict_batch(
                pairs, predictor="hybrid:k=2", mppm_config=MPPMConfig()
            )

    def test_mixed_spec_sweeps_expand_only_the_hybrid_ops(self, setup, machine, pool):
        items = [
            ("hybrid:k=1", pool[0], machine),
            ("mppm:foa", pool[1], machine),
            ("detailed", pool[2], machine),
        ]
        results = setup.predictor_batch(items)
        assert results[0].predictor == "hybrid:k=1"
        assert results[1].predictor == "mppm:foa"
        assert results[2].predictor == "detailed"
