"""Unit tests for the baseline predictors (no-contention and one-shot)."""

import pytest

from repro.core import MPPM
from repro.core.baselines import NoContentionPredictor, OneShotContentionPredictor
from repro.workloads import WorkloadMix


class TestNoContentionPredictor:
    def test_every_program_keeps_its_single_core_cpi(self, machine4, profiles4):
        predictor = NoContentionPredictor(machine4)
        prediction = predictor.predict(
            [profiles4[name] for name in ("gamess", "hmmer", "soplex", "mcf")]
        )
        assert prediction.iterations == 0
        for program in prediction.programs:
            assert program.slowdown == pytest.approx(1.0)
        assert prediction.system_throughput == pytest.approx(4.0)
        assert prediction.average_normalized_turnaround_time == pytest.approx(1.0)

    def test_predict_mix_and_empty_input(self, machine4, profiles4):
        predictor = NoContentionPredictor(machine4)
        mix = WorkloadMix(programs=("gamess", "hmmer"))
        prediction = predictor.predict_mix(mix, profiles4)
        assert prediction.num_programs == 2
        with pytest.raises(ValueError):
            predictor.predict([])


class TestOneShotContentionPredictor:
    def test_one_shot_sits_between_no_contention_and_full_mppm(self, machine4, profiles4):
        profiles = [profiles4[name] for name in ("gamess", "gamess", "hmmer", "soplex")]
        no_contention = NoContentionPredictor(machine4).predict(profiles)
        one_shot = OneShotContentionPredictor(machine4).predict(profiles)
        full = MPPM(machine4).predict(profiles)
        # One-shot contention predicts *some* slowdown for the sensitive program...
        assert one_shot.program("gamess").slowdown > 1.05
        # ...and no predictor reports speedups.
        for prediction in (no_contention, one_shot, full):
            for program in prediction.programs:
                assert program.slowdown >= 1.0 - 1e-9
        # ANTT ordering: ignoring contention is the most optimistic view.
        assert (
            no_contention.average_normalized_turnaround_time
            <= one_shot.average_normalized_turnaround_time + 1e-9
        )

    def test_unaffected_program_stays_unaffected(self, machine4, profiles4):
        profiles = [profiles4[name] for name in ("hmmer", "gamess", "soplex", "mcf")]
        one_shot = OneShotContentionPredictor(machine4).predict(profiles)
        assert one_shot.program("hmmer").slowdown < 1.2
        assert one_shot.iterations == 1

    def test_predict_mix_and_empty_input(self, machine4, profiles4):
        predictor = OneShotContentionPredictor(machine4)
        mix = WorkloadMix(programs=("gamess", "soplex"))
        prediction = predictor.predict_mix(mix, profiles4)
        assert {p.name for p in prediction.programs} == {"gamess", "soplex"}
        with pytest.raises(ValueError):
            predictor.predict([])
