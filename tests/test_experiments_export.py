"""Unit tests for CSV/JSON export of experiment results."""

import csv
import json

import pytest

from repro.experiments.export import (
    ExportError,
    export_result,
    rows_to_csv,
    rows_to_json,
    series_to_csv,
)


ROWS = [
    {"config": "#1", "stp": 3.5, "antt": 1.2},
    {"config": "#2", "stp": 3.4},
]


class TestRowsToCSV:
    def test_roundtrip_preserves_rows_and_column_order(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "table.csv")
        with path.open() as handle:
            reader = csv.DictReader(handle)
            assert reader.fieldnames == ["config", "stp", "antt"]
            loaded = list(reader)
        assert loaded[0]["config"] == "#1"
        assert loaded[1]["antt"] == ""  # missing cell renders empty
        assert float(loaded[1]["stp"]) == pytest.approx(3.4)

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_csv([], tmp_path / "empty.csv")


class TestSeriesToCSV:
    def test_series_columns_are_written_in_order(self, tmp_path):
        path = series_to_csv(
            {"measured": [1.0, 2.0], "predicted": [1.1, 2.1]}, tmp_path / "fig9.csv"
        )
        with path.open() as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "index,measured,predicted"
        assert lines[1].startswith("0,1.0,1.1")
        assert len(lines) == 3

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            series_to_csv({"a": [1.0], "b": [1.0, 2.0]}, tmp_path / "bad.csv")
        with pytest.raises(ExportError):
            series_to_csv({}, tmp_path / "bad.csv")
        with pytest.raises(ExportError):
            series_to_csv({"a": []}, tmp_path / "bad.csv")


class TestRowsToJSON:
    def test_json_roundtrip(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "table.json")
        loaded = json.loads(path.read_text())
        assert loaded[0]["stp"] == pytest.approx(3.5)
        assert len(loaded) == 2

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            rows_to_json([], tmp_path / "empty.json")


class TestExportResult:
    def test_exports_any_object_with_to_rows(self, tmp_path):
        class FakeResult:
            def to_rows(self):
                return ROWS

        paths = export_result(FakeResult(), tmp_path / "out", "fig4")
        assert {path.name for path in paths} == {"fig4.csv", "fig4.json"}
        for path in paths:
            assert path.exists()

    def test_object_without_to_rows_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            export_result(object(), tmp_path, "x")

    def test_export_real_experiment_result(self, tmp_path, machine4):
        """A real experiment result (workload-space report) exports cleanly."""
        from repro.experiments import ExperimentConfig, ExperimentSetup
        from repro.experiments.workload_space import workload_space_report
        from repro.workloads import small_suite

        setup = ExperimentSetup(
            config=ExperimentConfig(num_instructions=20_000, interval_instructions=1_000),
            suite=small_suite(5),
        )
        report = workload_space_report(setup, core_counts=[2, 4])
        paths = export_result(report, tmp_path, "workload_space")
        assert all(path.stat().st_size > 0 for path in paths)
