"""Unit and property tests for benchmark specifications."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.benchmark import (
    BenchmarkSpec,
    PhaseSpec,
    ReuseProfile,
    WorkloadError,
    validate_suite,
)


class TestReuseProfile:
    def test_probabilities_are_normalised_and_ordered(self):
        profile = ReuseProfile(buckets=((16, 0.6), (128, 0.3)), new_weight=0.1)
        triples = profile.probabilities()
        assert triples[0][:2] == (0, 16)
        assert triples[1][:2] == (16, 128)
        total = sum(probability for _, _, probability in triples) + profile.new_probability
        assert total == pytest.approx(1.0)
        assert profile.new_probability == pytest.approx(0.1)
        assert profile.max_depth == 128

    def test_weights_do_not_need_to_be_normalised(self):
        profile = ReuseProfile(buckets=((8, 3.0), (64, 1.0)), new_weight=0.0)
        triples = profile.probabilities()
        assert triples[0][2] == pytest.approx(0.75)
        assert triples[1][2] == pytest.approx(0.25)

    def test_streaming_only_profile(self):
        profile = ReuseProfile(buckets=(), new_weight=1.0)
        assert profile.max_depth == 0
        assert profile.new_probability == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "buckets, new_weight",
        [
            ((), 0.0),  # no mass at all
            (((16, 0.5), (8, 0.5)), 0.0),  # non-increasing depths
            (((16, -0.1),), 0.0),  # negative weight
            (((16, 0.5),), -0.1),  # negative new-line weight
        ],
    )
    def test_invalid_profiles_rejected(self, buckets, new_weight):
        with pytest.raises(WorkloadError):
            ReuseProfile(buckets=buckets, new_weight=new_weight)

    def test_scaled_depths_stay_strictly_increasing(self):
        profile = ReuseProfile(buckets=((4, 0.5), (5, 0.3), (6, 0.2)))
        squeezed = profile.scaled(depth_scale=0.1)
        depths = [depth for depth, _ in squeezed.buckets]
        assert depths == sorted(set(depths))
        assert all(depth >= 1 for depth in depths)

    @given(scale=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_scaled_preserves_total_weight_distribution(self, scale):
        profile = ReuseProfile(buckets=((8, 0.5), (64, 0.3), (512, 0.1)), new_weight=0.1)
        rescaled = profile.scaled(depth_scale=scale, new_scale=1.0)
        assert rescaled.new_probability == pytest.approx(profile.new_probability)
        assert len(rescaled.buckets) == len(profile.buckets)


class TestPhaseSpec:
    def test_defaults_are_neutral(self):
        phase = PhaseSpec(fraction=1.0)
        assert phase.cpi_multiplier == 1.0
        assert phase.mem_fraction_multiplier == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(fraction=0.0),
            dict(fraction=1.5),
            dict(fraction=0.5, cpi_multiplier=0.0),
            dict(fraction=0.5, mem_fraction_multiplier=-1.0),
            dict(fraction=0.5, reuse_depth_multiplier=0.0),
            dict(fraction=0.5, new_line_multiplier=-0.1),
        ],
    )
    def test_invalid_phases_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            PhaseSpec(**kwargs)


class TestBenchmarkSpec:
    def test_default_spec_is_valid(self):
        spec = BenchmarkSpec(name="example")
        assert spec.num_phases == 1
        assert spec.effective_memory_latency_factor == pytest.approx(1.0 / spec.mlp)

    def test_phase_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec(
                name="bad",
                phases=(PhaseSpec(fraction=0.5), PhaseSpec(fraction=0.3)),
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(name="x", base_cpi=0.0),
            dict(name="x", mem_ref_fraction=0.0),
            dict(name="x", mem_ref_fraction=1.0),
            dict(name="x", working_set_lines=0),
            dict(name="x", mlp=0.0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            BenchmarkSpec(**kwargs)

    def test_phase_boundaries_cover_whole_trace(self):
        spec = BenchmarkSpec(
            name="phased",
            phases=(PhaseSpec(fraction=0.4), PhaseSpec(fraction=0.35), PhaseSpec(fraction=0.25)),
        )
        boundaries = spec.phase_boundaries(10_000)
        assert len(boundaries) == 3
        assert boundaries[-1] == 10_000
        assert list(boundaries) == sorted(boundaries)

    @given(num_instructions=st.integers(min_value=100, max_value=1_000_000))
    @settings(max_examples=30, deadline=None)
    def test_phase_boundaries_always_end_at_trace_length(self, num_instructions):
        spec = BenchmarkSpec(
            name="phased",
            phases=(PhaseSpec(fraction=1 / 3), PhaseSpec(fraction=1 / 3), PhaseSpec(fraction=1 / 3)),
        )
        boundaries = spec.phase_boundaries(num_instructions)
        assert boundaries[-1] == num_instructions

    def test_describe_mentions_name_and_phases(self):
        spec = BenchmarkSpec(name="sample")
        assert "sample" in spec.describe()
        assert "1 phase" in spec.describe()

    def test_spec_is_hashable(self):
        spec = BenchmarkSpec(name="hashme")
        assert hash(spec) == hash(BenchmarkSpec(name="hashme"))


class TestValidateSuite:
    def test_duplicate_names_rejected(self):
        specs = [BenchmarkSpec(name="dup"), BenchmarkSpec(name="dup", seed=1)]
        with pytest.raises(WorkloadError):
            validate_suite(specs)

    def test_unique_names_accepted(self):
        validate_suite([BenchmarkSpec(name="a"), BenchmarkSpec(name="b")])
