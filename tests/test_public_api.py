"""Tests for the top-level public API surface.

A downstream user should be able to rely on ``repro``'s documented
entry points without reaching into submodules; these tests pin that
surface (and the package metadata) down.
"""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert repro.__version__
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing name {name!r}"

    def test_documented_subpackages_import(self):
        for module in (
            "repro.config",
            "repro.workloads",
            "repro.caches",
            "repro.cores",
            "repro.simulators",
            "repro.profiling",
            "repro.contention",
            "repro.core",
            "repro.metrics",
            "repro.engine",
            "repro.experiments",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.config",
            "repro.workloads",
            "repro.caches",
            "repro.cores",
            "repro.simulators",
            "repro.profiling",
            "repro.contention",
            "repro.core",
            "repro.metrics",
            "repro.engine",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ advertises {name!r}"

    def test_public_callables_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"public API without docstrings: {undocumented}"


class TestSuiteContract:
    def test_suite_names_match_spec_cpu2006(self):
        suite = repro.spec_cpu2006_like_suite()
        assert len(suite) == 29
        # 12 integer + 17 floating-point benchmark names from SPEC CPU2006.
        expected = {
            "perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng", "libquantum",
            "h264ref", "omnetpp", "astar", "xalancbmk", "bwaves", "gamess", "milc",
            "zeusmp", "gromacs", "cactusADM", "leslie3d", "namd", "dealII", "soplex",
            "povray", "calculix", "GemsFDTD", "tonto", "lbm", "wrf", "sphinx3",
        }
        assert set(suite.names) == expected

    def test_baseline_machine_and_design_space_are_consistent(self):
        machine = repro.baseline_machine(num_cores=4, llc_config=1)
        design_space = repro.llc_design_space(num_cores=4)
        assert design_space[0].llc == machine.llc
        assert repro.machine_with_llc(6).llc.size_bytes == 2 * 1024 * 1024
        assert repro.scaled(machine, 16).llc.size_bytes == machine.llc.size_bytes // 16
