"""Unit tests for the SPEC CPU2006-like benchmark suite."""

import pytest

from repro.workloads import BenchmarkClass, classify_suite, small_suite, spec_cpu2006_like_suite
from repro.workloads.benchmark import WorkloadError
from repro.workloads.suite import BenchmarkSuite, suite_summary


class TestFullSuite:
    def test_suite_has_29_benchmarks_with_unique_names(self, full_suite):
        assert len(full_suite) == 29
        assert len(set(full_suite.names)) == 29

    def test_paper_benchmarks_are_present(self, full_suite):
        # Benchmarks the paper calls out by name in Figures 6 and Section 6.
        for name in ("gamess", "hmmer", "soplex", "gobmk", "omnetpp", "h264ref", "xalancbmk"):
            assert name in full_suite

    def test_lookup_by_name(self, full_suite):
        gamess = full_suite["gamess"]
        assert gamess.name == "gamess"
        with pytest.raises(KeyError):
            full_suite["not_a_benchmark"]

    def test_gamess_is_designed_to_be_llc_sensitive(self, full_suite):
        gamess = full_suite["gamess"]
        # Deep temporal reuse close to (but inside) the scaled shared L3 of
        # config #1 (512 lines), little streaming, no MLP to hide misses.
        assert gamess.reuse.max_depth <= 512
        assert gamess.reuse.max_depth >= 256
        assert gamess.mlp <= 1.5
        assert gamess.reuse.new_probability < 0.01

    def test_suite_contains_phased_benchmarks(self, full_suite):
        phased = [spec.name for spec in full_suite if spec.num_phases > 1]
        assert len(phased) >= 4

    def test_suite_covers_all_workload_classes(self, full_suite):
        classes = set(classify_suite(full_suite).values())
        assert classes == {BenchmarkClass.MEM, BenchmarkClass.COMP, BenchmarkClass.MIX}

    def test_subset_preserves_order_and_content(self, full_suite):
        subset = full_suite.subset(["soplex", "gamess"])
        assert subset.names == ["soplex", "gamess"]
        assert subset["gamess"] == full_suite["gamess"]

    def test_describe_and_summary(self, full_suite):
        text = full_suite.describe()
        assert "gamess" in text and "lbm" in text
        summary = suite_summary(full_suite)
        assert len(summary) == 29

    def test_contains_operator(self, full_suite):
        assert "mcf" in full_suite
        assert "quake" not in full_suite

    def test_duplicate_specs_rejected_at_construction(self, full_suite):
        gamess = full_suite["gamess"]
        with pytest.raises(WorkloadError):
            BenchmarkSuite(specs=(gamess, gamess))


class TestSmallSuite:
    def test_small_suite_size_and_membership(self):
        suite = small_suite(6)
        assert len(suite) == 6
        assert "gamess" in suite and "hmmer" in suite

    def test_small_suite_larger_than_preferred_list_falls_back_to_full(self):
        suite = small_suite(25)
        assert len(suite) == 25
        assert len(set(suite.names)) == 25

    def test_small_suite_rejects_non_positive_size(self):
        with pytest.raises(WorkloadError):
            small_suite(0)

    def test_small_suite_keeps_behavioural_diversity(self):
        suite = small_suite(8)
        classes = set(classify_suite(suite).values())
        assert len(classes) >= 2
