"""Unit and property tests for the single-core profile data model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.stack_distance import StackDistanceCounters
from repro.profiling.profile import IntervalProfile, ProfileError, SingleCoreProfile


def _interval(index, instructions=1_000, cpi=1.0, memory_cpi=0.2, accesses=50.0, misses=10.0, assoc=4):
    counts = np.zeros(assoc + 1)
    counts[0] = max(accesses - misses, 0.0)
    counts[assoc] = misses
    return IntervalProfile(
        index=index,
        instructions=instructions,
        cpi=cpi,
        memory_cpi=memory_cpi,
        llc_accesses=accesses,
        llc_misses=misses,
        sdc=StackDistanceCounters(associativity=assoc, counts=counts),
    )


def _profile(num_intervals=5, **interval_kwargs):
    intervals = [_interval(i, **interval_kwargs) for i in range(num_intervals)]
    return SingleCoreProfile(
        benchmark="unit",
        machine_key="machine-key",
        machine_name="test machine",
        interval_instructions=1_000,
        intervals=intervals,
        llc_associativity=4,
    )


class TestIntervalProfile:
    def test_derived_quantities(self):
        interval = _interval(0, instructions=2_000, cpi=1.5, memory_cpi=0.5)
        assert interval.cycles == pytest.approx(3_000.0)
        assert interval.memory_cycles == pytest.approx(1_000.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(instructions=0),
            dict(cpi=0.0),
            dict(memory_cpi=-0.1),
            dict(memory_cpi=2.0, cpi=1.0),
            dict(misses=60.0, accesses=50.0),
        ],
    )
    def test_invalid_intervals_rejected(self, kwargs):
        with pytest.raises(ProfileError):
            _interval(0, **kwargs)


class TestSingleCoreProfile:
    def test_whole_trace_aggregates(self):
        profile = _profile(num_intervals=10)
        assert profile.num_intervals == 10
        assert profile.num_instructions == 10_000
        assert profile.cpi == pytest.approx(1.0)
        assert profile.memory_cpi == pytest.approx(0.2)
        assert profile.memory_cpi_fraction == pytest.approx(0.2)
        assert profile.total_llc_accesses == pytest.approx(500.0)
        assert profile.total_llc_misses == pytest.approx(100.0)
        assert profile.llc_misses_per_kilo_instruction == pytest.approx(10.0)
        assert profile.total_sdc().total_accesses == pytest.approx(500.0)
        assert "unit" in profile.describe()

    def test_validation_of_interval_sequence(self):
        intervals = [_interval(0), _interval(2)]
        with pytest.raises(ProfileError):
            SingleCoreProfile(
                benchmark="bad",
                machine_key="k",
                machine_name="m",
                interval_instructions=1_000,
                intervals=intervals,
                llc_associativity=4,
            )
        with pytest.raises(ProfileError):
            SingleCoreProfile(
                benchmark="bad",
                machine_key="k",
                machine_name="m",
                interval_instructions=1_000,
                intervals=[],
                llc_associativity=4,
            )
        with pytest.raises(ProfileError):
            SingleCoreProfile(
                benchmark="bad",
                machine_key="k",
                machine_name="m",
                interval_instructions=1_000,
                intervals=[_interval(0, assoc=8)],
                llc_associativity=4,
            )

    def test_window_over_whole_trace_equals_totals(self):
        profile = _profile(num_intervals=5)
        window = profile.window(0, profile.num_instructions)
        assert window.instructions == pytest.approx(profile.num_instructions)
        assert window.cycles == pytest.approx(profile.total_cycles)
        assert window.llc_misses == pytest.approx(profile.total_llc_misses)
        assert window.sdc.total_accesses == pytest.approx(profile.total_llc_accesses)
        assert window.cpi == pytest.approx(profile.cpi)
        assert window.memory_cpi == pytest.approx(profile.memory_cpi)

    def test_partial_window_scales_proportionally(self):
        profile = _profile(num_intervals=5)
        window = profile.window(0, 500)  # half of the first interval
        assert window.instructions == pytest.approx(500)
        assert window.llc_accesses == pytest.approx(25.0)
        assert window.llc_misses == pytest.approx(5.0)

    def test_window_wraps_around_the_end_of_the_trace(self):
        profile = _profile(num_intervals=5)
        window = profile.window(4_500, 1_000)  # last half-interval + first half-interval
        assert window.instructions == pytest.approx(1_000)
        assert window.llc_accesses == pytest.approx(50.0)
        # Start positions beyond the trace length wrap modulo the trace.
        wrapped = profile.window(5_000 + 4_500, 1_000)
        assert wrapped.llc_accesses == pytest.approx(window.llc_accesses)

    def test_window_longer_than_trace_covers_it_multiple_times(self):
        profile = _profile(num_intervals=5)
        window = profile.window(0, 2 * profile.num_instructions)
        assert window.llc_misses == pytest.approx(2 * profile.total_llc_misses)

    def test_window_rejects_non_positive_length(self):
        with pytest.raises(ProfileError):
            _profile().window(0, 0)

    def test_average_miss_penalty(self):
        profile = _profile()
        window = profile.window(0, 1_000)
        assert window.average_miss_penalty == pytest.approx(window.memory_cycles / window.llc_misses)
        # A window with no misses reports a zero penalty (callers fall back).
        no_miss_profile = _profile(misses=0.0, memory_cpi=0.0)
        assert no_miss_profile.window(0, 1_000).average_miss_penalty == 0.0

    @given(
        start=st.floats(min_value=0, max_value=20_000),
        length=st.floats(min_value=1, max_value=15_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_instruction_count_is_exact_for_any_start(self, start, length):
        profile = _profile(num_intervals=5)
        window = profile.window(start, length)
        assert window.instructions == pytest.approx(length, rel=1e-9)
        assert window.llc_accesses >= 0
        assert window.cycles >= 0

    def test_serialisation_roundtrip(self):
        profile = _profile(num_intervals=3)
        data = profile.to_dict()
        restored = SingleCoreProfile.from_dict(data)
        assert restored.benchmark == profile.benchmark
        assert restored.cpi == pytest.approx(profile.cpi)
        assert restored.num_instructions == profile.num_instructions
        for original, loaded in zip(profile.intervals, restored.intervals):
            assert loaded.sdc == original.sdc

    def test_reduced_associativity_profile(self):
        intervals = []
        for i in range(3):
            counts = np.array([20.0, 10.0, 5.0, 5.0, 10.0])  # 4-way SDC
            intervals.append(
                IntervalProfile(
                    index=i,
                    instructions=1_000,
                    cpi=1.0,
                    memory_cpi=0.3,
                    llc_accesses=50.0,
                    llc_misses=10.0,
                    sdc=StackDistanceCounters(associativity=4, counts=counts),
                )
            )
        profile = SingleCoreProfile(
            benchmark="unit",
            machine_key="k",
            machine_name="m",
            interval_instructions=1_000,
            intervals=intervals,
            llc_associativity=4,
        )
        reduced = profile.reduced_associativity(2)
        assert reduced.llc_associativity == 2
        # Fewer ways -> more misses -> higher CPI and memory CPI.
        assert reduced.cpi > profile.cpi
        assert reduced.memory_cpi > profile.memory_cpi
        assert reduced.total_llc_misses > profile.total_llc_misses
        assert "derived" in reduced.machine_name
