"""Unit tests for the multi-level cache hierarchy."""

import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.set_associative import SetAssociativeCache
from repro.config.cache_config import CacheConfig
from repro.config.machine import MachineConfig


def _tiny_machine(num_cores=1):
    """A hierarchy small enough to reason about by hand (line-granular sizes)."""
    return MachineConfig(
        num_cores=num_cores,
        private_levels=(
            CacheConfig(name="L1D", size_bytes=4 * 64, associativity=2, latency=1),
            CacheConfig(name="L2", size_bytes=16 * 64, associativity=4, latency=10),
        ),
        llc=CacheConfig(name="L3", size_bytes=64 * 64, associativity=8, latency=16, shared=True),
        name="tiny",
    )


class TestCacheHierarchy:
    def test_first_access_goes_all_the_way_to_memory(self):
        hierarchy = CacheHierarchy(_tiny_machine())
        outcome = hierarchy.access(0)
        assert outcome.served_by_memory
        assert outcome.reached_llc
        assert not outcome.llc_hit

    def test_second_access_hits_in_l1(self):
        hierarchy = CacheHierarchy(_tiny_machine())
        hierarchy.access(0)
        outcome = hierarchy.access(0)
        assert outcome.level_name == "L1D"
        assert outcome.level_index == 0
        assert not outcome.reached_llc

    def test_l1_victim_still_hits_in_l2(self):
        hierarchy = CacheHierarchy(_tiny_machine())
        # Fill set 0 of the 2-way L1 (lines 0, 2, 4 map to L1 set 0 for 2 sets).
        hierarchy.access(0)
        hierarchy.access(2)
        hierarchy.access(4)  # evicts line 0 from L1
        outcome = hierarchy.access(0)
        assert outcome.level_name == "L2"
        assert not outcome.reached_llc

    def test_line_evicted_from_l1_and_l2_hits_in_llc(self):
        hierarchy = CacheHierarchy(_tiny_machine())
        hierarchy.access(0)
        # Touch enough distinct lines mapping over the whole L2 to evict line 0
        # from both private levels, but not from the larger L3.
        for line in range(1, 40):
            hierarchy.access(line)
        outcome = hierarchy.access(0)
        assert outcome.level_name == "L3"
        assert outcome.reached_llc and outcome.llc_hit

    def test_shared_llc_mode_requires_external_llc(self):
        machine = _tiny_machine()
        hierarchy = CacheHierarchy(machine, include_llc=False)
        with pytest.raises(ValueError):
            hierarchy.access(0)
        # A different (cold) line routed through an externally supplied shared
        # LLC reaches memory and records the miss in that shared cache.
        shared = SetAssociativeCache(machine.llc)
        outcome = hierarchy.access(1, shared_llc=shared)
        assert outcome.served_by_memory
        assert shared.misses == 1

    def test_access_private_only_reports_private_hits(self):
        hierarchy = CacheHierarchy(_tiny_machine(), include_llc=False)
        assert not hierarchy.access_private_only(0)
        assert hierarchy.access_private_only(0)

    def test_reset_and_miss_rates(self):
        hierarchy = CacheHierarchy(_tiny_machine())
        for line in range(10):
            hierarchy.access(line)
        rates = hierarchy.miss_rates()
        assert set(rates) == {"L1D", "L2", "L3"}
        assert rates["L1D"] == 1.0  # all cold misses
        hierarchy.reset()
        assert hierarchy.access(0).served_by_memory

    def test_level_names_with_and_without_llc(self):
        machine = _tiny_machine()
        assert CacheHierarchy(machine).level_names == ["L1D", "L2", "L3"]
        assert CacheHierarchy(machine, include_llc=False).level_names == ["L1D", "L2"]
