"""Tests for the distributed fleet backend (``fleet:`` specs).

The contract pinned here: the fleet spec grammar accepts the three
worker sources (``localhost:N``, ``ssh=...``, ``attach=...``) and
rejects malformed specs with structured errors; a loopback fleet is
bit-identical to serial execution (library sweeps *and* the CLI stress
experiment); a warm fleet recomputes nothing (zero cache stores, zero
dispatches); a worker's cache is honoured across drivers
(remote-cache pinning — no host recomputes another host's job); and
every failure mode — worker killed mid-wave, rogue worker answering
garbage, endpoint unreachable at startup, a job raising on a worker —
either completes on the survivors or surfaces as a structured
:class:`FleetError` / :class:`FleetJobError`, never a hang.
"""

from __future__ import annotations

import json
import operator
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.engine import Executor, Job
from repro.engine.remote import (
    DEFAULT_JOB_TIMEOUT,
    FleetBackend,
    FleetError,
    FleetJobError,
    FleetSpecError,
    launch_local_workers,
    normalize_fleet_flag,
    parse_fleet_spec,
)
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.workloads import small_suite

CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)


def fleet_setup(**kwargs) -> ExperimentSetup:
    return ExperimentSetup(config=CONFIG, suite=small_suite(5), **kwargs)


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------


class TestFleetSpec:
    def test_localhost_spec(self):
        spec = parse_fleet_spec("fleet:localhost:2")
        assert spec.kind == "localhost"
        assert spec.count == 2 and spec.num_workers == 2
        assert spec.job_timeout == DEFAULT_JOB_TIMEOUT
        assert spec.canonical == "fleet:localhost:2"

    def test_ssh_spec(self):
        spec = parse_fleet_spec("fleet:ssh=host1,host2,python=python3.11")
        assert spec.kind == "ssh"
        assert spec.hosts == ("host1", "host2") and spec.num_workers == 2
        assert spec.python == "python3.11"

    def test_attach_spec(self):
        spec = parse_fleet_spec("fleet:attach=10.0.0.1:8001+10.0.0.2:8001")
        assert spec.kind == "attach"
        assert spec.hosts == ("10.0.0.1:8001", "10.0.0.2:8001")
        assert spec.num_workers == 2

    def test_timeout_option(self):
        spec = parse_fleet_spec("fleet:localhost:4,timeout=900")
        assert spec.job_timeout == 900.0
        assert spec.canonical == "fleet:localhost:4,timeout=900"

    def test_cli_flag_accepts_bare_and_prefixed_forms(self):
        assert normalize_fleet_flag("localhost:2") == "fleet:localhost:2"
        assert normalize_fleet_flag("fleet:localhost:2") == "fleet:localhost:2"
        assert normalize_fleet_flag("ssh=a,b") == "fleet:ssh=a,b"

    @pytest.mark.parametrize(
        "bad",
        [
            "fleet:",
            "fleet:localhost",
            "fleet:localhost:0",
            "fleet:localhost:x",
            "fleet:bogus:2",
            "fleet:ssh=",
            "fleet:attach=",
            "fleet:attach=hostonly",
            "fleet:localhost:2,timeout=x",
            "fleet:localhost:2,timeout=-1",
        ],
    )
    def test_malformed_specs_are_rejected(self, bad):
        with pytest.raises(FleetSpecError):
            parse_fleet_spec(bad)

    def test_non_fleet_string_is_rejected(self):
        with pytest.raises(FleetSpecError):
            parse_fleet_spec("localhost:2")


# ---------------------------------------------------------------------------
# Loopback execution: bit-identity, warm-fleet dedup, observability
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def serial():
    setup = fleet_setup()
    yield setup
    setup.close()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    setup = fleet_setup(
        jobs="fleet:localhost:2", cache_dir=tmp_path_factory.mktemp("fleet-cache")
    )
    yield setup
    setup.close()


@pytest.fixture(scope="module")
def mixes(serial):
    return serial.mixes(2, 6, seed=3)


class TestLoopbackFleet:
    def test_predictions_are_bit_identical_to_serial(self, serial, fleet, mixes):
        machine = serial.machine(num_cores=2)
        assert fleet.predict_many(mixes, machine) == serial.predict_many(mixes, machine)

    def test_simulations_are_bit_identical_to_serial(self, serial, fleet, mixes):
        machine = serial.machine(num_cores=2)
        for ours, theirs in zip(
            fleet.simulate_many(mixes, machine), serial.simulate_many(mixes, machine)
        ):
            assert ours.to_dict() == theirs.to_dict()

    def test_warm_fleet_recomputes_nothing(self, fleet, mixes):
        machine = fleet.machine(num_cores=2)
        first = fleet.predict_many(mixes, machine)
        stores = fleet.engine.cache.stores
        dispatched = fleet.engine.backend.stats()["dispatched"]
        again = fleet.predict_many(mixes, machine)
        assert again == first
        # Every job resolved from the driver's cache: nothing stored,
        # nothing even dispatched to a worker.
        assert fleet.engine.cache.stores == stores
        assert fleet.engine.backend.stats()["dispatched"] == dispatched

    def test_stats_expose_per_worker_counters(self, fleet, mixes):
        machine = fleet.machine(num_cores=2)
        fleet.predict_many(mixes, machine)
        stats = fleet.engine.backend.stats()
        assert stats["spec"] == "fleet:localhost:2"
        assert stats["alive"] == 2 and len(stats["workers"]) == 2
        assert stats["waves"] >= 1
        assert stats["completed"] == stats["dispatched"]
        for worker in stats["workers"]:
            assert worker["tag"] and worker["url"].startswith("http://127.0.0.1:")

    def test_workers_answer_from_their_caches_across_drivers(self, tmp_path):
        # Two drivers, no driver-side cache, sharing one fleet whose
        # workers persist results: the second driver's jobs are all
        # answered from worker caches — no host recomputes another
        # host's job.
        backend = FleetBackend("fleet:localhost:2", cache_dir=str(tmp_path))
        try:
            cold = ExperimentSetup(
                config=CONFIG, suite=small_suite(5), engine=Executor(backend=backend)
            )
            mixes = cold.mixes(2, 3, seed=5)
            machine = cold.machine(num_cores=2)
            first = [run.to_dict() for run in cold.simulate_many(mixes, machine)]
            assert backend.stats()["remote_cache_hits"] == 0
            warm = ExperimentSetup(
                config=CONFIG, suite=small_suite(5), engine=Executor(backend=backend)
            )
            second = [
                run.to_dict()
                for run in warm.simulate_many(
                    warm.mixes(2, 3, seed=5), warm.machine(num_cores=2)
                )
            ]
            assert second == first
            # Every simulate job of the second driver was answered from
            # a worker's cache (profile warm-up jobs carry no content
            # key, so they are the only recomputation).
            assert backend.stats()["remote_cache_hits"] == len(mixes)
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Failure paths
# ---------------------------------------------------------------------------


class _RogueHandler(BaseHTTPRequestHandler):
    """Answers health checks, then returns garbage to every /run."""

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        payload = json.dumps({"status": "ok"}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_POST(self):  # noqa: N802 - BaseHTTPRequestHandler API
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        garbage = b"this is not json"
        self.send_response(200)
        self.send_header("Content-Length", str(len(garbage)))
        self.end_headers()
        self.wfile.write(garbage)

    def log_message(self, *args):  # silence
        pass


@pytest.fixture()
def rogue_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _RogueHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    thread.join()


def _arith_jobs(count: int):
    return [
        Job(key=f"add-{index}", fn=operator.add, args=(index, 100)) for index in range(count)
    ]


class TestFleetFailures:
    def test_unreachable_endpoint_fails_fast_and_structured(self):
        # A port nothing listens on: startup must raise, not hang.
        started = time.monotonic()
        with pytest.raises(FleetError) as excinfo:
            FleetBackend("fleet:attach=127.0.0.1:9")
        assert time.monotonic() - started < 30
        assert "unreachable" in str(excinfo.value)

    def test_rogue_worker_is_retired_and_its_jobs_reassigned(self, rogue_server):
        [handle] = launch_local_workers(1)
        backend = None
        try:
            backend = FleetBackend(
                f"fleet:attach={rogue_server}+{handle.url[len('http://'):]}"
            )
            results = backend.run(_arith_jobs(6))
            assert results == [100, 101, 102, 103, 104, 105]
            stats = backend.stats()
            assert stats["alive"] == 1
            assert stats["failures"] >= 1
            rogue = stats["workers"][0]
            assert not rogue["alive"] and rogue["last_error"]
        finally:
            if backend is not None:
                backend.close()
            handle.terminate()

    def test_job_exception_propagates_and_fleet_survives(self):
        backend = FleetBackend("fleet:localhost:1")
        try:
            with pytest.raises(FleetJobError) as excinfo:
                backend.run(
                    [Job(key="boom", fn=operator.truediv, args=(1.0, 0.0))]
                )
            assert "ZeroDivisionError" in str(excinfo.value)
            # A deterministic job failure is not a worker failure: the
            # fleet stays usable for the next wave.
            assert backend.stats()["alive"] == 1
            assert backend.run(_arith_jobs(2)) == [100, 101]
        finally:
            backend.close()

    def test_worker_killed_mid_wave_completes_on_survivor(self):
        setup = fleet_setup(jobs="fleet:localhost:2")
        try:
            backend = setup.engine.backend
            victim = backend._slots[0].handle.process
            # Fresh (uncached) simulations keep the wave busy long
            # enough for the kill to land mid-flight.
            mixes = setup.mixes(2, 6, seed=11)
            machine = setup.machine(num_cores=2)
            timer = threading.Timer(0.05, victim.send_signal, args=(signal.SIGKILL,))
            timer.start()
            try:
                fleet_runs = [run.to_dict() for run in setup.simulate_many(mixes, machine)]
            finally:
                timer.cancel()
        finally:
            setup.close()
        reference = fleet_setup()
        try:
            serial_runs = [
                run.to_dict()
                for run in reference.simulate_many(
                    reference.mixes(2, 6, seed=11), reference.machine(num_cores=2)
                )
            ]
        finally:
            reference.close()
        assert fleet_runs == serial_runs


# ---------------------------------------------------------------------------
# CLI: the stress experiment, serial vs fleet
# ---------------------------------------------------------------------------


class TestFleetCLI:
    @staticmethod
    def _strip_timing(output: str) -> str:
        return "\n".join(
            line for line in output.splitlines() if "finished in" not in line
        )

    def test_stress_run_is_bit_identical_to_serial(self, capsys):
        from repro.cli import main

        base = [
            "run",
            "--experiment",
            "stress",
            "--benchmarks",
            "5",
            "--instructions",
            "20000",
            "--scale",
            "16",
            "--mixes",
            "4",
            "--model",
            "mppm:foa",
        ]
        assert main(base) == 0
        serial_out = self._strip_timing(capsys.readouterr().out)
        assert main([*base, "--fleet", "localhost:2"]) == 0
        fleet_out = self._strip_timing(capsys.readouterr().out)
        assert fleet_out == serial_out
