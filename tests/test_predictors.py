"""Tests for the unified Predictor API (registry, adapters, engine wiring).

The contract pinned here: every advertised spec constructs and
predicts; each registry predictor agrees **bit-for-bit** with the
pre-redesign code path it replaced (direct MPPM, the baseline classes,
the detailed reference simulator); unknown specs fail with the list of
available names; predictions are self-describing (the ``predictor``
field survives JSON round-trips and the persistent result cache); and
heterogeneous predictor sweeps run identically serial, parallel and
from a warm cache.
"""

from dataclasses import replace

import pytest

import repro
from repro.core import MPPM
from repro.core.baselines import NoContentionPredictor, OneShotContentionPredictor
from repro.core.result import MixPrediction
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.predictors import (
    DEFAULT_PREDICTOR,
    Predictor,
    PredictorError,
    available_predictors,
    canonical_spec,
    describe_predictors,
    make_predictor,
    predictor_requires_traces,
)
from repro.workloads import WorkloadMix, small_suite


CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)


def make_setup(**kwargs) -> ExperimentSetup:
    return ExperimentSetup(config=CONFIG, suite=small_suite(5), **kwargs)


@pytest.fixture(scope="module")
def setup():
    return make_setup()


@pytest.fixture(scope="module")
def mix(setup):
    return WorkloadMix(programs=tuple(setup.benchmark_names[:2]))


@pytest.fixture(scope="module")
def machine(setup):
    return setup.machine(num_cores=2)


class TestRegistry:
    def test_advertised_specs(self):
        assert available_predictors() == [
            "mppm:foa",
            "mppm:sdc",
            "mppm:prob",
            "mppm:windowed",
            "mppm:figure2",
            "baseline:no-contention",
            "baseline:one-shot",
            "hybrid:k=4",
            "learned:n=24,seed=0",
            "interp:anchors=1+6",
            "detailed",
        ]
        assert DEFAULT_PREDICTOR == "mppm:foa"

    @pytest.mark.parametrize("spec", [
        "mppm:foa",
        "mppm:sdc",
        "mppm:prob",
        "mppm:windowed",
        "mppm:figure2",
        "baseline:no-contention",
        "baseline:one-shot",
        "detailed",
    ])
    def test_every_spec_constructs_and_predicts(self, spec, setup, mix, machine):
        predictor = make_predictor(spec, setup)
        assert isinstance(predictor, Predictor)
        assert predictor.spec == spec
        assert predictor.describe().strip()
        prediction = predictor.predict(mix, machine)
        assert prediction.predictor == spec
        assert prediction.num_programs == 2
        assert all(program.predicted_cpi > 0 for program in prediction.programs)

    def test_mppm_shorthand_and_case_are_canonicalised(self):
        assert canonical_spec("mppm") == "mppm:foa"
        assert canonical_spec("  MPPM:SDC ") == "mppm:sdc"

    def test_unknown_spec_lists_available_names(self, setup):
        with pytest.raises(ValueError) as excinfo:
            make_predictor("oracle", setup)
        message = str(excinfo.value)
        for spec in available_predictors():
            assert spec in message
        assert isinstance(excinfo.value, PredictorError)

    def test_unknown_contention_model_lists_available_names(self):
        with pytest.raises(ValueError) as excinfo:
            repro.make_contention_model("oracle")
        for name in repro.available_contention_models():
            assert name in str(excinfo.value)

    def test_mppm_config_rejected_for_non_mppm_specs(self, setup):
        from repro.core import MPPMConfig

        with pytest.raises(PredictorError):
            make_predictor("detailed", setup, mppm_config=MPPMConfig(smoothing=0.9))

    def test_spec_and_contention_model_instance_conflict(self, setup, mix, machine):
        from repro.contention import FOAModel

        with pytest.raises(PredictorError):
            setup.predict(
                mix, machine, predictor="baseline:no-contention", contention_model=FOAModel()
            )
        with pytest.raises(PredictorError):
            setup.predict_many(
                [mix], machine, predictor="mppm:sdc", contention_model=FOAModel()
            )
        # The instance-only ablation path still works (and is untagged).
        ablated = setup.predict(mix, machine, contention_model=FOAModel())
        assert ablated.predictor is None

    def test_trace_requirement_flags(self):
        assert predictor_requires_traces("detailed")
        assert not predictor_requires_traces("mppm:foa")
        assert not predictor_requires_traces("baseline:one-shot")

    def test_descriptions_cover_every_spec(self):
        rows = dict(describe_predictors())
        assert set(rows) == set(available_predictors())
        assert all(description for description in rows.values())

    def test_registries_are_top_level_api(self):
        for name in (
            "make_predictor",
            "available_predictors",
            "make_contention_model",
            "available_contention_models",
            "KERNELS",
            "Predictor",
            "DEFAULT_PREDICTOR",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestBitIdentityWithReplacedPaths:
    """Registry predictions equal the pre-redesign code paths exactly."""

    def _profiles(self, setup, mix, machine):
        return {
            name: setup.store.get_profile(setup.suite[name], machine)
            for name in sorted(set(mix.programs))
        }

    @pytest.mark.parametrize("contention", ["foa", "sdc", "prob"])
    def test_mppm_specs_match_direct_mppm(self, contention, setup, mix, machine):
        direct = MPPM(
            machine, contention_model=repro.make_contention_model(contention)
        ).predict_mix(mix, self._profiles(setup, mix, machine))
        via_registry = setup.predict(mix, machine, predictor=f"mppm:{contention}")
        assert replace(via_registry, predictor=None) == direct

    def test_default_spec_matches_default_mppm(self, setup, mix, machine):
        direct = MPPM(machine).predict_mix(mix, self._profiles(setup, mix, machine))
        assert replace(setup.predict(mix, machine), predictor=None) == direct

    @pytest.mark.parametrize("variant,cls", [
        ("no-contention", NoContentionPredictor),
        ("one-shot", OneShotContentionPredictor),
    ])
    def test_baseline_specs_match_direct_baselines(self, variant, cls, setup, mix, machine):
        direct = cls(machine).predict_mix(mix, self._profiles(setup, mix, machine))
        via_registry = setup.predict(mix, machine, predictor=f"baseline:{variant}")
        assert replace(via_registry, predictor=None) == direct

    @pytest.mark.parametrize("variant,flag", [
        ("windowed", "use_windowed_cpi"),
        ("figure2", "literal_figure2_update"),
    ])
    def test_mppm_variant_specs_match_explicit_configs(
        self, variant, flag, setup, mix, machine
    ):
        from repro.core import MPPMConfig

        config = MPPMConfig(**{flag: True})
        direct = MPPM(machine, config=config).predict_mix(
            mix, self._profiles(setup, mix, machine)
        )
        via_registry = setup.predict(mix, machine, predictor=f"mppm:{variant}")
        assert replace(via_registry, predictor=None) == direct
        assert via_registry.predictor == f"mppm:{variant}"
        # Variants run through the cached registry path: a repeat is a
        # cache hit returning the same object.
        assert setup.predict(mix, machine, predictor=f"mppm:{variant}") is via_registry

    def test_mppm_variant_specs_reject_explicit_configs(self, setup):
        from repro.core import MPPMConfig

        with pytest.raises(PredictorError):
            make_predictor("mppm:windowed", setup, mppm_config=MPPMConfig(smoothing=0.9))

    def test_detailed_spec_matches_reference_simulation(self, setup, mix, machine):
        measured = setup.simulate(mix, machine)
        wrapped = setup.predict(mix, machine, predictor="detailed")
        # Same floats, not approximately: STP/ANTT/slowdowns are computed
        # over the exact per-program CPI values of the simulator.
        assert wrapped.system_throughput == measured.system_throughput
        assert (
            wrapped.average_normalized_turnaround_time
            == measured.average_normalized_turnaround_time
        )
        assert wrapped.slowdowns == measured.slowdowns
        assert wrapped.predictor == "detailed"


class TestSelfDescribingPredictions:
    def test_predictor_field_round_trips_through_json(self, setup, mix, machine):
        for spec in ("mppm:foa", "baseline:one-shot", "detailed"):
            prediction = setup.predict(mix, machine, predictor=spec)
            restored = MixPrediction.from_dict(prediction.to_dict())
            assert restored == prediction
            assert restored.predictor == spec

    def test_missing_predictor_key_defaults_to_none(self, setup, mix, machine):
        payload = setup.predict(mix, machine).to_dict()
        del payload["predictor"]  # pre-redesign cache entries lack the key
        assert MixPrediction.from_dict(payload).predictor is None

    def test_describe_names_the_predictor(self, setup, mix, machine):
        text = setup.predict(mix, machine, predictor="baseline:no-contention").describe()
        assert "baseline:no-contention" in text


class TestEngineWiring:
    def test_heterogeneous_batch_matches_individual_predictions(self, setup, mix, machine):
        other = WorkloadMix(programs=tuple(setup.benchmark_names[2:4]))
        items = [
            ("mppm:foa", mix, machine),
            ("baseline:no-contention", other, machine),
            ("detailed", mix, machine),
        ]
        batched = setup.predictor_batch(items)
        singles = [setup.predict(m, mach, predictor=spec) for spec, m, mach in items]
        assert batched == singles

    def test_parallel_heterogeneous_sweep_is_bit_identical(self):
        serial = make_setup()
        parallel = make_setup(jobs=2)
        mixes = [
            WorkloadMix(programs=tuple(serial.benchmark_names[i : i + 2])) for i in range(3)
        ]
        specs = ["mppm:foa", "baseline:one-shot", "detailed"]
        try:
            machine = serial.machine(num_cores=2)
            items = [(spec, m, machine) for spec in specs for m in mixes]
            assert serial.predictor_batch(items) == parallel.predictor_batch(
                [(spec, m, parallel.machine(num_cores=2)) for spec in specs for m in mixes]
            )
        finally:
            parallel.close()

    def test_warm_cache_recomputes_nothing_for_any_spec(self, tmp_path, monkeypatch):
        from repro.profiling.profiler import Profiler
        from repro.simulators.multi_core import MultiCoreSimulator

        cache_dir = tmp_path / "campaign"
        cold = make_setup(cache_dir=cache_dir)
        machine = cold.machine(num_cores=2)
        mixes = [
            WorkloadMix(programs=tuple(cold.benchmark_names[i : i + 2])) for i in range(3)
        ]
        specs = ["mppm:foa", "mppm:sdc", "baseline:no-contention", "detailed"]
        items = [(spec, m, machine) for spec in specs for m in mixes]
        cold_results = cold.predictor_batch(items)

        def forbidden(self, *args, **kwargs):
            raise AssertionError("a warm cache must not recompute anything")

        monkeypatch.setattr(MultiCoreSimulator, "run", forbidden)
        monkeypatch.setattr(MPPM, "predict_mix", forbidden)
        monkeypatch.setattr(Profiler, "profile", forbidden)

        warm = make_setup(cache_dir=cache_dir)
        warm_results = warm.predictor_batch(
            [(spec, m, warm.machine(num_cores=2)) for spec in specs for m in mixes]
        )
        assert warm_results == cold_results
        assert all(result.predictor in specs for result in warm_results)


class TestExperimentsTakePredictorLists:
    @pytest.fixture(scope="class")
    def experiment_setup(self):
        return ExperimentSetup(config=CONFIG, suite=small_suite(6))

    def test_accuracy_with_multiple_predictors(self, experiment_setup):
        from repro.experiments.accuracy import accuracy_experiment

        result = accuracy_experiment(
            experiment_setup,
            core_counts=(2,),
            mixes_per_core_count=3,
            predictors=("mppm:foa", "baseline:no-contention"),
        )
        assert [entry.predictor for entry in result.per_core_count] == [
            "mppm:foa",
            "baseline:no-contention",
        ]
        # The baseline ignores contention entirely, so it cannot be more
        # accurate than MPPM on average here — and the default lookup
        # returns the first (primary) predictor's entry.
        assert result.for_cores(2).predictor == "mppm:foa"
        assert result.for_cores(2, "baseline:no-contention").num_mixes == 3
        assert "predictor" in result.to_rows()[0]

    def test_accuracy_default_is_bit_identical_to_explicit_mppm_foa(self, experiment_setup):
        from repro.experiments.accuracy import accuracy_experiment

        default = accuracy_experiment(experiment_setup, core_counts=(2,), mixes_per_core_count=3)
        explicit = accuracy_experiment(
            experiment_setup,
            core_counts=(2,),
            mixes_per_core_count=3,
            predictors=["mppm:foa"],
        )
        assert default.per_core_count == explicit.per_core_count

    def test_ranking_with_multiple_predictors(self, experiment_setup):
        from repro.experiments.ranking import ranking_experiment

        result = ranking_experiment(
            experiment_setup,
            num_trials=2,
            mixes_per_trial=2,
            reference_mixes=3,
            mppm_mixes=4,
            predictors=("mppm:foa", "baseline:one-shot"),
        )
        assert [scores.label for scores in result.models] == [
            "mppm:foa",
            "baseline:one-shot",
        ]
        assert result.mppm is result.models[0]
        assert result.model("baseline:one-shot").config_numbers == [1, 2, 3, 4, 5, 6]
        assert {row["set"] for row in result.to_rows()} >= {"mppm:foa", "baseline:one-shot"}
        with pytest.raises(KeyError):
            result.model("detailed")
        with pytest.raises(ValueError):
            ranking_experiment(experiment_setup, predictors=())

    def test_agreement_with_multiple_predictors(self, experiment_setup):
        from repro.experiments.agreement import agreement_experiment

        result = agreement_experiment(
            experiment_setup,
            num_trials=2,
            mixes_per_trial=2,
            reference_mixes=3,
            mppm_mixes=4,
            predictors=("mppm:foa", "baseline:no-contention"),
        )
        assert set(result.by_predictor) == {"mppm:foa", "baseline:no-contention"}
        assert result.pairs == result.pairs_for("mppm:foa")
        assert len(result.pairs_for("baseline:no-contention")) == 5
        with pytest.raises(KeyError):
            result.pairs_for("detailed")

    def test_stress_with_multiple_predictors(self, experiment_setup):
        from repro.experiments.stress import stress_experiment

        result = stress_experiment(
            experiment_setup,
            num_mixes=4,
            worst_k=2,
            predictors=("mppm:foa", "baseline:one-shot"),
        )
        assert result.predictor == "mppm:foa"
        assert set(result.by_predictor) == {"mppm:foa", "baseline:one-shot"}
        assert len(result.evaluations_for("baseline:one-shot")) == 4
        # Accessors take the same shorthand the experiments take.
        assert result.evaluations_for("MPPM") == result.evaluations
        # Both predictors were evaluated against the same measured runs.
        assert [e.measured for e in result.evaluations] == [
            e.measured for e in result.evaluations_for("baseline:one-shot")
        ]

    def test_detailed_predictor_shares_the_simulation_cache_entry(self, tmp_path, monkeypatch):
        from repro.simulators.multi_core import MultiCoreSimulator

        cache_dir = tmp_path / "campaign"
        cold = make_setup(cache_dir=cache_dir)
        machine = cold.machine(num_cores=2)
        mix = WorkloadMix(programs=tuple(cold.benchmark_names[:2]))
        measured = cold.simulate_batch([(mix, machine)])[0]

        def forbidden(self, *args, **kwargs):
            raise AssertionError("detailed predictions must reuse cached simulations")

        monkeypatch.setattr(MultiCoreSimulator, "run", forbidden)
        warm = make_setup(cache_dir=cache_dir)
        prediction = warm.predictor_batch([("detailed", mix, warm.machine(num_cores=2))])[0]
        assert prediction.system_throughput == measured.system_throughput
        assert prediction.predictor == "detailed"

    def test_detailed_evaluations_reuse_the_reference_sweep(self):
        from repro.predictors import prediction_from_run

        setup = make_setup()
        machine = setup.machine(num_cores=2)
        pairs = [
            (WorkloadMix(programs=tuple(setup.benchmark_names[i : i + 2])), machine)
            for i in range(2)
        ]
        evaluated = setup.evaluate_predictors(pairs, ("mppm:foa", "detailed"))
        # One simulation per pair, not one per (pair, detailed-ish op).
        assert setup.reference_runs() == len(pairs)
        for evaluation in evaluated["detailed"]:
            assert evaluation.predicted == prediction_from_run(
                evaluation.measured, kernel=setup.config.multicore_kernel
            )
            assert evaluation.stp_error == 0.0

    def test_ranking_and_agreement_canonicalise_specs(self, experiment_setup):
        from repro.experiments.agreement import agreement_experiment
        from repro.experiments.ranking import ranking_experiment

        ranked = ranking_experiment(
            experiment_setup,
            num_trials=2,
            mixes_per_trial=2,
            reference_mixes=3,
            mppm_mixes=4,
            predictors=("MPPM",),  # shorthand + case, canonicalised everywhere else
        )
        assert ranked.model("mppm:foa").label == "mppm:foa"
        agreed = agreement_experiment(
            experiment_setup,
            num_trials=2,
            mixes_per_trial=2,
            reference_mixes=3,
            mppm_mixes=4,
            predictors=("MPPM",),
        )
        assert agreed.pairs_for("mppm:foa") == agreed.pairs

    def test_variability_accepts_predictor_specs(self, experiment_setup):
        from repro.experiments.variability import variability_experiment

        legacy = variability_experiment(
            experiment_setup, max_mixes=4, source="simulation", grid=[4]
        )
        spec = variability_experiment(
            experiment_setup, max_mixes=4, source="detailed", grid=[4]
        )
        assert legacy.points[0] == spec.points[0]
        baseline = variability_experiment(
            experiment_setup, max_mixes=4, source="baseline:no-contention", grid=[4]
        )
        assert baseline.points[0].antt_mean == pytest.approx(1.0)
        with pytest.raises(ValueError):
            variability_experiment(experiment_setup, source="oracle")
