"""Tests for the unified Workload API (registry, setup wiring, caching).

The contract pinned here: every advertised spec constructs, supplies a
valid suite and samples mixes; canonical specs round-trip
(``make_workload(spec).spec == spec``); unknown specs fail with the
list of available names; ``suite:spec29`` reproduces the pre-redesign
behaviour exactly (same suite, same mixes, same predictions — serial
and with engine workers); and the workload spec string qualifies the
experiment setup, its profile store and the engine cache keys.
"""

import numpy as np
import pytest

import repro
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.workloads import (
    DEFAULT_WORKLOAD,
    BenchmarkClass,
    WorkloadMix,
    WorkloadSource,
    WorkloadSpecError,
    available_workloads,
    canonical_workload_spec,
    classify_suite,
    describe_workloads,
    make_workload,
    random_benchmark,
    resolve_categories,
    sample_category_mixes,
    sample_mixes,
    service_benchmark,
    small_suite,
    spec_cpu2006_like_suite,
    workload_for,
)
from repro.workloads.benchmark import WorkloadError

CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)


class TestRegistry:
    def test_advertised_specs_construct_and_round_trip(self):
        for spec in available_workloads():
            workload = make_workload(spec)
            assert isinstance(workload, WorkloadSource)
            canonical = canonical_workload_spec(spec)
            if spec.startswith("perf:"):
                # perf: canonicalises by appending the content digest of
                # the source; canonicalisation is then idempotent.
                assert canonical.startswith(spec + ",digest=")
                assert canonical_workload_spec(canonical) == canonical
                assert workload.spec == canonical
            else:
                assert workload.spec == spec
                assert canonical == spec
            suite = workload.suite()
            assert len(suite) > 0
            assert workload.describe()

    def test_default_workload_is_the_spec29_suite(self):
        assert DEFAULT_WORKLOAD == "suite:spec29"
        workload = make_workload()
        assert workload.spec == DEFAULT_WORKLOAD
        assert workload.suite().specs == spec_cpu2006_like_suite().specs

    def test_shorthands_are_canonicalised(self):
        assert canonical_workload_spec("suite") == "suite:spec29"
        assert canonical_workload_spec("  SUITE:SPEC29 ") == "suite:spec29"
        assert canonical_workload_spec("random") == "random:n=8,seed=0"
        assert canonical_workload_spec("service:seed=3") == "service:n=8,seed=3"
        assert canonical_workload_spec("random:seed=1,n=4") == "random:n=4,seed=1"
        # Scaling to (or past) the full size is the full suite.
        assert canonical_workload_spec("suite:spec29/scaled@29") == "suite:spec29"
        assert canonical_workload_spec("suite:spec29/scaled@100") == "suite:spec29"

    def test_scaled_spec_matches_the_legacy_small_suite(self):
        workload = make_workload("suite:spec29/scaled@5")
        assert workload.suite().specs == small_suite(5).specs

    @pytest.mark.parametrize(
        "bad",
        [
            "oracle",
            "suite:spec30",
            "suite:spec29/scaled@",
            "suite:spec29/scaled@x",
            "random:m=3",
            "random:n=",
            "service:n=0",
            "random:n=100000",
            "service:seed=-1",
        ],
    )
    def test_unknown_or_malformed_specs_are_rejected(self, bad):
        with pytest.raises(ValueError) as excinfo:
            make_workload(bad)
        assert isinstance(excinfo.value, WorkloadSpecError)

    def test_unknown_spec_lists_available_names(self):
        with pytest.raises(WorkloadSpecError) as excinfo:
            make_workload("oracle")
        message = str(excinfo.value)
        for spec in available_workloads():
            assert spec in message

    def test_descriptions_cover_every_family(self):
        rows = dict(describe_workloads())
        assert any(spec.startswith("suite:") for spec in rows)
        assert any(spec.startswith("random:") for spec in rows)
        assert any(spec.startswith("service:") for spec in rows)
        assert all(description for description in rows.values())

    def test_workload_api_is_top_level(self):
        for name in (
            "make_workload",
            "available_workloads",
            "WorkloadSource",
            "DEFAULT_WORKLOAD",
            "GENERATOR_KERNELS",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestFamilies:
    def test_random_family_is_deterministic_and_prefix_stable(self):
        a = make_workload("random:n=6,seed=3").suite()
        b = make_workload("random:n=6,seed=3").suite()
        assert a.specs == b.specs
        # Benchmark i is the same for every n > i: scaling a study up
        # never changes (or re-profiles) the benchmarks already run.
        bigger = make_workload("random:n=9,seed=3").suite()
        assert bigger.specs[:6] == a.specs
        assert random_benchmark(2, seed=3) == a.specs[2]

    def test_random_seeds_differ(self):
        assert (
            make_workload("random:n=4,seed=0").suite().specs
            != make_workload("random:n=4,seed=1").suite().specs
        )

    def test_service_family_is_bursty_and_strongly_phased(self):
        suite = make_workload("service:n=8,seed=0").suite()
        assert all(spec.num_phases >= 3 for spec in suite)
        # Every service benchmark has at least one burst phase that
        # multiplies cold-miss traffic and access rate.
        for spec in suite:
            assert any(
                phase.new_line_multiplier >= 2.0 and phase.mem_fraction_multiplier > 1.0
                for phase in spec.phases
            )
        assert suite.names[0].startswith("svc-")
        assert service_benchmark(1, seed=0) == suite.specs[1]

    def test_service_roles_cycle_without_name_collisions(self):
        suite = make_workload("service:n=12,seed=0").suite()
        assert len(set(suite.names)) == 12

    def test_family_mixes_match_sample_mixes(self):
        workload = make_workload("service:n=6,seed=0")
        assert workload.mixes(4, 5, seed=9) == sample_mixes(
            workload.suite().names, 4, 5, seed=9
        )


class TestWorkloadFor:
    def test_none_is_the_default_workload(self):
        assert workload_for(None).spec == DEFAULT_WORKLOAD

    def test_known_suites_get_canonical_specs(self):
        assert workload_for(None, suite=spec_cpu2006_like_suite()).spec == "suite:spec29"
        assert workload_for(None, suite=small_suite(7)).spec == "suite:spec29/scaled@7"

    def test_ad_hoc_suites_get_deterministic_inline_specs(self):
        suite = spec_cpu2006_like_suite().subset(["gamess", "lbm", "mcf"])
        first = workload_for(None, suite=suite)
        second = workload_for(suite)
        assert first.spec.startswith("inline:")
        assert first.spec == second.spec
        assert first.suite() is suite

    def test_sources_pass_through(self):
        source = make_workload("random:n=3,seed=0")
        assert workload_for(source) is source


class TestExperimentSetupWiring:
    def test_setup_defaults_to_spec29(self):
        setup = ExperimentSetup(config=CONFIG)
        assert setup.workload_spec == "suite:spec29"
        assert setup.store.workload_spec == "suite:spec29"
        assert len(setup.suite) == 29

    def test_setup_accepts_spec_strings_and_sources(self):
        by_spec = ExperimentSetup(config=CONFIG, workload="service:n=4,seed=0")
        by_source = ExperimentSetup(
            config=CONFIG, workload=make_workload("service:n=4,seed=0")
        )
        assert by_spec.workload_spec == by_source.workload_spec == "service:n=4,seed=0"
        assert by_spec.suite.specs == by_source.suite.specs
        assert by_spec.benchmark_names[0].startswith("svc-")

    def test_legacy_suite_objects_still_work(self):
        setup = ExperimentSetup(config=CONFIG, suite=small_suite(5))
        assert setup.workload_spec == "suite:spec29/scaled@5"
        assert setup.suite.specs == small_suite(5).specs

    def test_setup_mixes_equal_the_legacy_sampling(self):
        setup = ExperimentSetup(config=CONFIG, workload="suite:spec29/scaled@6")
        assert setup.mixes(4, 6, seed=11) == sample_mixes(
            setup.benchmark_names, 4, 6, seed=11
        )

    def test_spec29_reproduces_pre_redesign_predictions(self):
        legacy = ExperimentSetup(config=CONFIG, suite=small_suite(4))
        redesigned = ExperimentSetup(config=CONFIG, workload="suite:spec29/scaled@4")
        mix = WorkloadMix(programs=tuple(legacy.benchmark_names[:2]))
        machine = legacy.machine(num_cores=2)
        assert redesigned.predict(mix, machine) == legacy.predict(mix, machine)

    def test_parallel_engine_agrees_with_serial(self, tmp_path):
        serial = ExperimentSetup(config=CONFIG, workload="suite:spec29/scaled@4")
        parallel = ExperimentSetup(
            config=CONFIG,
            workload="suite:spec29/scaled@4",
            jobs=2,
            cache_dir=tmp_path / "campaign",
        )
        try:
            mixes = serial.mixes(2, 3, seed=5)
            machine = serial.machine(num_cores=2)
            pairs = [(mix, machine) for mix in mixes]
            assert parallel.predict_batch(pairs) == serial.predict_batch(pairs)
        finally:
            parallel.close()

    def test_distinct_workloads_never_share_engine_cache_entries(self, tmp_path):
        from repro.engine import tasks as engine_tasks

        mix = WorkloadMix(programs=("svc-auth", "svc-auth"))
        keys = []
        for spec in ("service:n=4,seed=0", "service:n=4,seed=1"):
            setup = ExperimentSetup(config=CONFIG, workload=spec)
            machine = setup.machine(num_cores=2)
            job = engine_tasks.predict_job(setup, mix, machine, key="op:0")
            keys.append(job.cache_key)
        assert keys[0] != keys[1]


class TestProfileStoreQualification:
    def _store(self, tmp_path, workload_spec):
        from repro.profiling import ProfileStore

        return ProfileStore(
            num_instructions=20_000,
            interval_instructions=1_000,
            cache_dir=tmp_path,
            workload_spec=workload_spec,
        )

    def test_distinct_workload_specs_use_distinct_files(self, tmp_path):
        spec = spec_cpu2006_like_suite()["gamess"]
        machine = ExperimentSetup(config=CONFIG).machine(num_cores=1)
        a = self._store(tmp_path, "suite:spec29")
        b = self._store(tmp_path, "service:n=4,seed=0")
        assert a._disk_path(spec, machine.profile_key()) != b._disk_path(
            spec, machine.profile_key()
        )

    def test_identical_benchmark_specs_share_profiles_across_workloads(self, tmp_path):
        # suite:spec29 and suite:spec29/scaled@8 both contain the same
        # gamess BenchmarkSpec; the second workload must reuse the
        # first's profile through the content-addressed shared layer
        # instead of re-simulating.
        spec = spec_cpu2006_like_suite()["gamess"]
        machine = ExperimentSetup(config=CONFIG).machine(num_cores=1)
        first = self._store(tmp_path, "suite:spec29")
        first.get_profile(spec, machine)
        assert first.simulated_profiles == 1

        second = self._store(tmp_path, "suite:spec29/scaled@8")
        second.get_profile(spec, machine)
        assert second.simulated_profiles == 0
        assert second.loaded_profiles == 1

    def test_mismatched_spec_and_suite_pairs_are_rejected(self):
        with pytest.raises(WorkloadSpecError):
            ExperimentSetup(
                config=CONFIG, workload="suite:spec29", suite=small_suite(5)
            )

    def test_legacy_unqualified_payloads_still_load(self, tmp_path):
        spec = spec_cpu2006_like_suite()["gamess"]
        machine = ExperimentSetup(config=CONFIG).machine(num_cores=1)
        legacy = self._store(tmp_path, None)
        saved = legacy.get_profile(spec, machine)
        assert legacy.simulated_profiles == 1

        qualified = self._store(tmp_path, "suite:spec29")
        loaded = qualified.get_profile(spec, machine)
        assert qualified.simulated_profiles == 0
        assert qualified.loaded_profiles == 1
        assert loaded.to_dict() == saved.to_dict()
        # The adopted payload is re-saved under the qualified key, so
        # the fallback only happens once.
        assert qualified._disk_path(spec, machine.profile_key()).exists()


class TestTraceGenerationThroughRegistry:
    def test_registry_suites_generate_identical_traces_on_both_kernels(self):
        from repro.workloads.generator import TraceGenerator

        generator = TraceGenerator(num_instructions=10_000, seed=0)
        for spec_string in ("random:n=3,seed=1", "service:n=3,seed=1"):
            for benchmark in make_workload(spec_string).suite():
                vectorized = generator.generate(benchmark, kernel="vectorized")
                reference = generator.generate(benchmark, kernel="reference")
                assert np.array_equal(vectorized.access_line, reference.access_line)
                assert np.array_equal(
                    vectorized.base_cycle_gap, reference.base_cycle_gap
                )


class TestCategoryAlgebra:
    """``suite:spec29/<cats>`` set algebra: ``+`` unions, ``-`` excludes."""

    def test_canonical_form_orders_categories(self):
        assert canonical_workload_spec("suite:spec29/comp+mem") == "suite:spec29/mem+comp"
        assert canonical_workload_spec("suite:spec29/ MEM + COMP ".replace(" ", "")) == (
            "suite:spec29/mem+comp"
        )

    def test_all_minus_mix_equals_mem_plus_comp(self):
        assert canonical_workload_spec("suite:spec29/all-mix") == "suite:spec29/mem+comp"
        union = make_workload("suite:spec29/mem+comp")
        excluded = make_workload("suite:spec29/all-mix")
        assert excluded.suite().specs == union.suite().specs

    def test_full_selections_collapse_to_the_plain_suite(self):
        assert canonical_workload_spec("suite:spec29/all") == DEFAULT_WORKLOAD
        assert canonical_workload_spec("suite:spec29/mem+comp+mix") == DEFAULT_WORKLOAD

    def test_double_exclusion_leaves_one_category(self):
        assert canonical_workload_spec("suite:spec29/all-mem-comp") == "suite:spec29/mix"

    def test_union_suite_is_the_union_of_the_subsets(self):
        union = make_workload("suite:spec29/mem+comp").suite()
        mem = make_workload("suite:spec29/mem").suite()
        comp = make_workload("suite:spec29/comp").suite()
        assert sorted(union.names) == sorted(mem.names + comp.names)
        classes = classify_suite(union)
        assert set(classes.values()) == {BenchmarkClass.MEM, BenchmarkClass.COMP}

    def test_algebra_suites_sample_their_own_mixes(self):
        workload = make_workload("suite:spec29/mem+comp")
        classes = classify_suite(workload.suite())
        for mix in workload.mixes(2, 4, seed=3):
            assert all(
                classes[name] in (BenchmarkClass.MEM, BenchmarkClass.COMP)
                for name in mix.programs
            )

    @pytest.mark.parametrize(
        "bad",
        [
            "suite:spec29/mem-mem",      # empty selection
            "suite:spec29/all-mem-comp-mix",
            "suite:spec29/bogus",
            "suite:spec29/mem+bogus",
            "suite:spec29/mem+",         # dangling operator
            "suite:spec29/-mem",
            "suite:spec29/",
        ],
    )
    def test_malformed_expressions_are_rejected(self, bad):
        with pytest.raises(WorkloadSpecError):
            make_workload(bad)

    def test_algebra_specs_are_advertised(self):
        rows = dict(describe_workloads())
        assert "suite:spec29/<cats>±<cats>" in rows
        assert "union" in rows["suite:spec29/<cats>±<cats>"]


class TestCategoryMixes:
    """`category=` on WorkloadSource.mixes — "current practice" sampling."""

    def test_single_category_constrains_the_program_classes(self):
        workload = make_workload(DEFAULT_WORKLOAD)
        classes = classify_suite(workload.suite())
        # MEM / COMP mixes hold only programs of that class; a MIX mix
        # deliberately combines both (plus MIX-classed programs).
        for category in (BenchmarkClass.MEM, BenchmarkClass.COMP):
            mixes = workload.mixes(4, 3, seed=7, category=category)
            assert len(mixes) == 3
            for mix in mixes:
                assert all(classes[name] == category for name in mix.programs)
        mixed = workload.mixes(4, 3, seed=7, category=BenchmarkClass.MIX)
        assert len(mixed) == 3
        assert all(mix.num_programs == 4 for mix in mixed)

    def test_string_and_enum_categories_agree(self):
        workload = make_workload(DEFAULT_WORKLOAD)
        assert workload.mixes(4, 2, seed=3, category="mem") == workload.mixes(
            4, 2, seed=3, category=BenchmarkClass.MEM
        )

    def test_category_sequence_matches_the_legacy_helper(self):
        """The folded API reproduces sample_category_mixes bit for bit."""
        workload = make_workload(DEFAULT_WORKLOAD)
        classes = classify_suite(workload.suite())
        legacy = sample_category_mixes(classes, 4, mixes_per_category=3, seed=41)
        folded = workload.mixes(4, 3, seed=41, category=tuple(BenchmarkClass))
        assert folded == legacy

    def test_sequence_counts_are_per_category(self):
        workload = make_workload(DEFAULT_WORKLOAD)
        mixes = workload.mixes(2, 2, seed=0, category=("MEM", "COMP"))
        assert len(mixes) == 4

    def test_unknown_category_lists_the_valid_choices(self):
        workload = make_workload(DEFAULT_WORKLOAD)
        with pytest.raises(WorkloadError, match="valid categories.*MEM.*COMP.*MIX"):
            workload.mixes(4, 2, category="IO")

    def test_resolve_categories_round_trips(self):
        assert resolve_categories("MEM") == [BenchmarkClass.MEM]
        assert resolve_categories(BenchmarkClass.MIX) == [BenchmarkClass.MIX]
        assert resolve_categories(["mem", BenchmarkClass.COMP]) == [
            BenchmarkClass.MEM,
            BenchmarkClass.COMP,
        ]

    def test_setup_mixes_passes_the_category_through(self):
        setup = ExperimentSetup(config=CONFIG)
        classes = setup.classification()
        mixes = setup.mixes(4, 2, seed=5, category="COMP")
        assert mixes == setup.workload.mixes(4, 2, seed=5, category="COMP")
        for mix in mixes:
            assert all(classes[name] == BenchmarkClass.COMP for name in mix.programs)
