"""Unit tests for the single-core (profiling) simulator."""

import numpy as np
import pytest

from repro.simulators.single_core import SingleCoreSimulator
from repro.workloads.generator import generate_trace

from testdefaults import TEST_INSTRUCTIONS, TEST_INTERVAL


@pytest.fixture(scope="module")
def gamess_run(machine4, gamess_trace):
    simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
    return simulator.run(gamess_trace)


class TestSingleCoreRun:
    def test_interval_structure(self, gamess_run):
        assert len(gamess_run.intervals) == TEST_INSTRUCTIONS // TEST_INTERVAL
        assert sum(interval.instructions for interval in gamess_run.intervals) == TEST_INSTRUCTIONS
        assert all(interval.instructions == TEST_INTERVAL for interval in gamess_run.intervals)

    def test_totals_are_consistent_with_intervals(self, gamess_run):
        interval_cycles = sum(interval.cycles for interval in gamess_run.intervals)
        assert gamess_run.cycles == pytest.approx(interval_cycles, rel=1e-9)
        interval_memory = sum(
            interval.memory_cycles for interval in gamess_run.intervals
        )
        assert gamess_run.memory_cpi * gamess_run.num_instructions == pytest.approx(
            interval_memory, rel=1e-9
        )
        assert gamess_run.cpi > 0
        assert 0 <= gamess_run.memory_cpi <= gamess_run.cpi

    def test_llc_counters_match_sdc_counters(self, gamess_run):
        for interval in gamess_run.intervals:
            assert interval.llc_accesses == pytest.approx(interval.sdc.total_accesses)
            # The SDC's C>A counter counts cold *and* capacity/conflict misses,
            # exactly the misses the LLC sees.
            assert interval.llc_misses == pytest.approx(interval.sdc.misses)
            assert interval.llc_hits + interval.llc_misses == interval.llc_accesses

    def test_llc_trace_matches_interval_access_counts(self, gamess_run):
        total_llc_accesses = sum(interval.llc_accesses for interval in gamess_run.intervals)
        assert gamess_run.llc_trace.num_llc_accesses == total_llc_accesses
        assert gamess_run.llc_trace.isolated_cycles == pytest.approx(gamess_run.cycles)
        # LLC accesses are ordered by instruction index.
        assert (np.diff(gamess_run.llc_trace.insn) >= 0).all()

    def test_upstream_cycles_exclude_llc_and_memory_penalties(self, gamess_run):
        trace = gamess_run.llc_trace
        cpi_stack = gamess_run.cpi_stack
        upstream = trace.total_upstream_cycles
        assert upstream == pytest.approx(cpi_stack.base + cpi_stack.private_cache, rel=1e-6)

    def test_simulation_is_deterministic(self, machine4, gamess_trace):
        simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
        again = simulator.run(gamess_trace)
        assert again.cpi == pytest.approx(SingleCoreSimulator(machine4, TEST_INTERVAL).run(gamess_trace).cpi)

    def test_invalid_interval_rejected(self, machine4):
        with pytest.raises(ValueError):
            SingleCoreSimulator(machine4, interval_instructions=0)


class TestBenchmarkHeterogeneity:
    def test_cache_friendly_benchmark_has_lower_memory_cpi(self, machine4, gamess_trace, hmmer_trace):
        simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
        gamess = simulator.run(gamess_trace)
        hmmer = simulator.run(hmmer_trace)
        assert hmmer.cpi_stack.memory_fraction < gamess.cpi_stack.memory_fraction
        assert hmmer.llc_trace.llc_accesses_per_kilo_instruction < (
            gamess.llc_trace.llc_accesses_per_kilo_instruction
        )

    def test_perfect_llc_run_bounds_the_memory_cpi(self, machine4, gamess_trace):
        """The two-run method of the paper: CPI - CPI_perfect_LLC ~= memory CPI."""
        simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
        run = simulator.run(gamess_trace)
        perfect_cpi = simulator.run_with_perfect_llc(gamess_trace)
        assert perfect_cpi < run.cpi
        two_run_memory_cpi = run.cpi - perfect_cpi
        # The two estimates agree: the accounting method charges the full
        # memory penalty while the perfect-LLC run still charges the LLC hit
        # latency, so the two-run value is slightly smaller.
        assert two_run_memory_cpi <= run.memory_cpi + 1e-9
        assert two_run_memory_cpi == pytest.approx(run.memory_cpi, rel=0.25)

    def test_bigger_llc_reduces_misses(self, full_suite, generator):
        from repro.config import baseline_machine, scaled

        spec = full_suite["soplex"]
        trace = generator.generate(spec)
        small = scaled(baseline_machine(num_cores=4, llc_config=1), 16)
        large = scaled(baseline_machine(num_cores=4, llc_config=5), 16)
        small_run = SingleCoreSimulator(small, TEST_INTERVAL).run(trace)
        large_run = SingleCoreSimulator(large, TEST_INTERVAL).run(trace)
        small_misses = sum(i.llc_misses for i in small_run.intervals)
        large_misses = sum(i.llc_misses for i in large_run.intervals)
        assert large_misses <= small_misses
