"""Unit tests for the single-core (profiling) simulator."""

import numpy as np
import pytest

from repro.config.cache_config import CacheConfig
from repro.config.machine import MachineConfig
from repro.simulators.single_core import SingleCoreSimulator
from repro.workloads.benchmark import BenchmarkSpec, ReuseProfile
from repro.workloads.generator import TraceGenerator, generate_trace

from testdefaults import TEST_INSTRUCTIONS, TEST_INTERVAL


@pytest.fixture(scope="module")
def gamess_run(machine4, gamess_trace):
    simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
    return simulator.run(gamess_trace)


class TestSingleCoreRun:
    def test_interval_structure(self, gamess_run):
        assert len(gamess_run.intervals) == TEST_INSTRUCTIONS // TEST_INTERVAL
        assert sum(interval.instructions for interval in gamess_run.intervals) == TEST_INSTRUCTIONS
        assert all(interval.instructions == TEST_INTERVAL for interval in gamess_run.intervals)

    def test_totals_are_consistent_with_intervals(self, gamess_run):
        interval_cycles = sum(interval.cycles for interval in gamess_run.intervals)
        assert gamess_run.cycles == pytest.approx(interval_cycles, rel=1e-9)
        interval_memory = sum(
            interval.memory_cycles for interval in gamess_run.intervals
        )
        assert gamess_run.memory_cpi * gamess_run.num_instructions == pytest.approx(
            interval_memory, rel=1e-9
        )
        assert gamess_run.cpi > 0
        assert 0 <= gamess_run.memory_cpi <= gamess_run.cpi

    def test_llc_counters_match_sdc_counters(self, gamess_run):
        for interval in gamess_run.intervals:
            assert interval.llc_accesses == pytest.approx(interval.sdc.total_accesses)
            # The SDC's C>A counter counts cold *and* capacity/conflict misses,
            # exactly the misses the LLC sees.
            assert interval.llc_misses == pytest.approx(interval.sdc.misses)
            assert interval.llc_hits + interval.llc_misses == interval.llc_accesses

    def test_llc_trace_matches_interval_access_counts(self, gamess_run):
        total_llc_accesses = sum(interval.llc_accesses for interval in gamess_run.intervals)
        assert gamess_run.llc_trace.num_llc_accesses == total_llc_accesses
        assert gamess_run.llc_trace.isolated_cycles == pytest.approx(gamess_run.cycles)
        # LLC accesses are ordered by instruction index.
        assert (np.diff(gamess_run.llc_trace.insn) >= 0).all()

    def test_upstream_cycles_exclude_llc_and_memory_penalties(self, gamess_run):
        trace = gamess_run.llc_trace
        cpi_stack = gamess_run.cpi_stack
        upstream = trace.total_upstream_cycles
        assert upstream == pytest.approx(cpi_stack.base + cpi_stack.private_cache, rel=1e-6)

    def test_simulation_is_deterministic(self, machine4, gamess_trace):
        simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
        again = simulator.run(gamess_trace)
        assert again.cpi == pytest.approx(SingleCoreSimulator(machine4, TEST_INTERVAL).run(gamess_trace).cpi)

    def test_invalid_interval_rejected(self, machine4):
        with pytest.raises(ValueError):
            SingleCoreSimulator(machine4, interval_instructions=0)


class TestBenchmarkHeterogeneity:
    def test_cache_friendly_benchmark_has_lower_memory_cpi(self, machine4, gamess_trace, hmmer_trace):
        simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
        gamess = simulator.run(gamess_trace)
        hmmer = simulator.run(hmmer_trace)
        assert hmmer.cpi_stack.memory_fraction < gamess.cpi_stack.memory_fraction
        assert hmmer.llc_trace.llc_accesses_per_kilo_instruction < (
            gamess.llc_trace.llc_accesses_per_kilo_instruction
        )

    def test_perfect_llc_run_bounds_the_memory_cpi(self, machine4, gamess_trace):
        """The two-run method of the paper: CPI - CPI_perfect_LLC ~= memory CPI."""
        simulator = SingleCoreSimulator(machine4, interval_instructions=TEST_INTERVAL)
        run = simulator.run(gamess_trace)
        perfect_cpi = simulator.run_with_perfect_llc(gamess_trace)
        assert perfect_cpi < run.cpi
        two_run_memory_cpi = run.cpi - perfect_cpi
        # The two estimates agree: the accounting method charges the full
        # memory penalty while the perfect-LLC run still charges the LLC hit
        # latency, so the two-run value is slightly smaller.
        assert two_run_memory_cpi <= run.memory_cpi + 1e-9
        assert two_run_memory_cpi == pytest.approx(run.memory_cpi, rel=0.25)

    def test_kernel_equivalence_baseline(self, machine4, gamess_trace, gamess_run):
        reference = SingleCoreSimulator(
            machine4, interval_instructions=TEST_INTERVAL, kernel="reference"
        ).run(gamess_trace)
        assert_runs_bit_identical(gamess_run, reference)

    def test_bigger_llc_reduces_misses(self, full_suite, generator):
        from repro.config import baseline_machine, scaled

        spec = full_suite["soplex"]
        trace = generator.generate(spec)
        small = scaled(baseline_machine(num_cores=4, llc_config=1), 16)
        large = scaled(baseline_machine(num_cores=4, llc_config=5), 16)
        small_run = SingleCoreSimulator(small, TEST_INTERVAL).run(trace)
        large_run = SingleCoreSimulator(large, TEST_INTERVAL).run(trace)
        small_misses = sum(i.llc_misses for i in small_run.intervals)
        large_misses = sum(i.llc_misses for i in large_run.intervals)
        assert large_misses <= small_misses


# ---------------------------------------------------------------------------
# Vectorized vs reference kernel equivalence
# ---------------------------------------------------------------------------


def assert_runs_bit_identical(a, b):
    """Assert two SingleCoreRunResults are bit-identical, field by field."""
    assert a.benchmark == b.benchmark
    assert a.machine_name == b.machine_name
    assert a.interval_instructions == b.interval_instructions
    assert len(a.intervals) == len(b.intervals)
    for x, y in zip(a.intervals, b.intervals):
        assert x.index == y.index
        assert x.instructions == y.instructions
        assert x.cycles == y.cycles
        assert x.memory_cycles == y.memory_cycles
        assert (x.llc_accesses, x.llc_hits, x.llc_misses) == (
            y.llc_accesses,
            y.llc_hits,
            y.llc_misses,
        )
        assert x.sdc.associativity == y.sdc.associativity
        assert np.array_equal(x.sdc.counts, y.sdc.counts)
    for component in ("base", "private_cache", "llc", "memory", "instructions"):
        assert getattr(a.cpi_stack, component) == getattr(b.cpi_stack, component)
    ta, tb = a.llc_trace, b.llc_trace
    for attr in ("line", "insn", "upstream_cycle_gap"):
        left, right = getattr(ta, attr), getattr(tb, attr)
        assert left.dtype == right.dtype
        assert np.array_equal(left, right)
    assert ta.tail_cycles == tb.tail_cycles
    assert ta.isolated_cycles == tb.isolated_cycles


def _random_spec(rng, index):
    """A random but plausible benchmark spec for the equivalence matrix."""
    buckets = []
    low = 0
    for _ in range(int(rng.integers(1, 4))):
        high = low + int(rng.integers(4, 120))
        buckets.append((high, float(rng.uniform(0.05, 0.5))))
        low = high
    return BenchmarkSpec(
        name=f"rand-{index}",
        base_cpi=float(rng.uniform(0.3, 1.2)),
        mem_ref_fraction=float(rng.uniform(0.1, 0.6)),
        reuse=ReuseProfile(
            buckets=tuple(buckets), new_weight=float(rng.uniform(0.001, 0.05))
        ),
        working_set_lines=int(rng.integers(64, 4096)),
        mlp=float(rng.uniform(1.0, 4.0)),
        seed=int(rng.integers(0, 10_000)),
    )


def _equivalence_machines():
    line = 64
    return [
        # Scaled default-shaped hierarchy.
        MachineConfig(
            private_levels=(
                CacheConfig(name="L1D", size_bytes=32 * line, associativity=8, latency=1),
                CacheConfig(name="L2", size_bytes=128 * line, associativity=8, latency=10),
            ),
            llc=CacheConfig(
                name="L3", size_bytes=512 * line, associativity=8, latency=16, shared=True
            ),
            name="scaled-baseline",
        ),
        # Single-set (fully associative) levels, including the LLC.
        MachineConfig(
            private_levels=(
                CacheConfig(name="L1D", size_bytes=8 * line, associativity=8, latency=1),
            ),
            llc=CacheConfig(
                name="L3", size_bytes=64 * line, associativity=64, latency=16, shared=True
            ),
            name="single-set",
        ),
        # Direct-mapped everything.
        MachineConfig(
            private_levels=(
                CacheConfig(name="L1D", size_bytes=16 * line, associativity=1, latency=1),
                CacheConfig(name="L2", size_bytes=64 * line, associativity=1, latency=10),
            ),
            llc=CacheConfig(
                name="L3", size_bytes=256 * line, associativity=1, latency=16, shared=True
            ),
            name="direct-mapped",
        ),
    ]


class TestKernelEquivalence:
    """Property suite: the two replay kernels are bit-identical."""

    def test_randomized_equivalence_matrix(self):
        rng = np.random.default_rng(2024)
        machines = _equivalence_machines()
        for index in range(6):
            spec = _random_spec(rng, index)
            num_instructions = int(rng.choice([2_500, 10_000, 20_000]))
            trace = TraceGenerator(num_instructions=num_instructions, seed=index).generate(spec)
            machine = machines[index % len(machines)]
            simulator = SingleCoreSimulator(machine, interval_instructions=4_000)
            vectorized = simulator.run(trace, kernel="vectorized")
            reference = simulator.run(trace, kernel="reference")
            assert_runs_bit_identical(vectorized, reference)
            assert simulator.run_with_perfect_llc(
                trace, kernel="vectorized"
            ) == simulator.run_with_perfect_llc(trace, kernel="reference")

    def test_trace_shorter_than_one_interval(self, full_suite):
        trace = TraceGenerator(num_instructions=1_500, seed=3).generate(
            full_suite["gamess"]
        )
        simulator = SingleCoreSimulator(
            _equivalence_machines()[0], interval_instructions=4_000
        )
        vectorized = simulator.run(trace, kernel="vectorized")
        reference = simulator.run(trace, kernel="reference")
        assert len(vectorized.intervals) == 1
        assert vectorized.intervals[0].instructions == 1_500
        assert_runs_bit_identical(vectorized, reference)

    def test_default_kernel_is_vectorized(self, machine4):
        assert SingleCoreSimulator(machine4).kernel == "vectorized"

    def test_unknown_kernel_rejected(self, machine4, gamess_trace):
        with pytest.raises(ValueError):
            SingleCoreSimulator(machine4, kernel="magic")
        with pytest.raises(ValueError):
            SingleCoreSimulator(machine4).run(gamess_trace, kernel="magic")

    def test_per_run_kernel_override(self, machine4, gamess_trace):
        simulator = SingleCoreSimulator(
            machine4, interval_instructions=TEST_INTERVAL, kernel="reference"
        )
        assert_runs_bit_identical(
            simulator.run(gamess_trace, kernel="vectorized"), simulator.run(gamess_trace)
        )
