"""Unit tests for the profiler and the caching profile store."""

from dataclasses import replace

import pytest

from repro.profiling import Profiler, ProfileStore
from repro.profiling.profiler import profile_from_run
from repro.simulators.single_core import SingleCoreSimulator
from repro.workloads.benchmark import ReuseProfile

from testdefaults import TEST_INSTRUCTIONS, TEST_INTERVAL


class TestProfiler:
    def test_profile_matches_direct_simulation(self, tiny_suite, machine4, generator):
        spec = tiny_suite["soplex"]
        profiler = Profiler(
            machine=machine4,
            num_instructions=TEST_INSTRUCTIONS,
            interval_instructions=TEST_INTERVAL,
            seed=0,
        )
        profiled = profiler.profile(spec)

        trace = generator.generate(spec)
        run = SingleCoreSimulator(machine4, TEST_INTERVAL).run(trace)
        assert profiled.profile.cpi == pytest.approx(run.cpi)
        assert profiled.profile.memory_cpi == pytest.approx(run.memory_cpi)
        assert profiled.llc_trace.num_llc_accesses == run.llc_trace.num_llc_accesses
        assert profiled.name == "soplex"

    def test_profile_from_run_preserves_interval_data(self, tiny_suite, machine4, generator):
        trace = generator.generate(tiny_suite["hmmer"])
        run = SingleCoreSimulator(machine4, TEST_INTERVAL).run(trace)
        profile = profile_from_run(run, machine4)
        assert profile.num_intervals == len(run.intervals)
        assert profile.machine_key == machine4.profile_key()
        assert profile.llc_associativity == machine4.llc.associativity

    def test_profile_suite_returns_every_benchmark(self, tiny_suite, machine4):
        profiler = Profiler(machine4, num_instructions=20_000, interval_instructions=1_000)
        profiled = profiler.profile_suite(tiny_suite)
        assert set(profiled) == set(tiny_suite.names)


class TestProfileStore:
    def test_profiles_are_cached_per_benchmark_and_machine(self, tiny_suite, machine4):
        store = ProfileStore(num_instructions=20_000, interval_instructions=1_000)
        spec = tiny_suite["gamess"]
        first = store.get_profile(spec, machine4)
        second = store.get_profile(spec, machine4)
        assert first is second
        assert store.simulated_profiles == 1
        assert store.cached_pairs() == 1

    def test_llc_trace_and_profile_come_from_the_same_run(self, tiny_suite, machine4):
        store = ProfileStore(num_instructions=20_000, interval_instructions=1_000)
        spec = tiny_suite["soplex"]
        profile = store.get_profile(spec, machine4)
        trace = store.get_llc_trace(spec, machine4)
        assert trace.isolated_cycles == pytest.approx(profile.total_cycles)
        # Both artefacts came from one simulation.
        assert store.simulated_profiles == 1
        profiled = store.get(spec, machine4)
        assert profiled.profile is profile
        assert profiled.llc_trace is trace

    def test_different_machines_produce_different_profiles(self, tiny_suite, machine4):
        from repro.config import baseline_machine, scaled

        store = ProfileStore(num_instructions=20_000, interval_instructions=1_000)
        other_machine = scaled(baseline_machine(num_cores=4, llc_config=5), 16)
        spec = tiny_suite["soplex"]
        first = store.get_profile(spec, machine4)
        second = store.get_profile(spec, other_machine)
        assert first is not second
        assert store.simulated_profiles == 2

    def test_redefining_a_spec_under_the_same_name_is_not_served_stale_data(
        self, tiny_suite, machine4
    ):
        store = ProfileStore(num_instructions=20_000, interval_instructions=1_000)
        spec = tiny_suite["gamess"]
        modified = replace(
            spec, reuse=ReuseProfile(buckets=((8, 1.0),), new_weight=0.0), working_set_lines=64
        )
        original_profile = store.get_profile(spec, machine4)
        modified_profile = store.get_profile(modified, machine4)
        assert store.simulated_profiles == 2
        assert modified_profile.llc_misses_per_kilo_instruction < (
            original_profile.llc_misses_per_kilo_instruction
        )

    def test_suite_helpers(self, tiny_suite, machine4):
        store = ProfileStore(num_instructions=20_000, interval_instructions=1_000)
        both = store.get_suite(tiny_suite, machine4)
        assert set(both) == set(tiny_suite.names)
        profiles_only = store.get_suite_profiles(tiny_suite, machine4)
        assert set(profiles_only) == set(tiny_suite.names)
        # Everything was simulated exactly once per benchmark.
        assert store.simulated_profiles == len(tiny_suite)

    def test_clear_drops_memory_cache(self, tiny_suite, machine4):
        store = ProfileStore(num_instructions=20_000, interval_instructions=1_000)
        store.get_profile(tiny_suite["hmmer"], machine4)
        store.clear()
        assert store.cached_pairs() == 0

    def test_disk_cache_roundtrip(self, tiny_suite, machine4, tmp_path):
        spec = tiny_suite["hmmer"]
        writer = ProfileStore(
            num_instructions=20_000, interval_instructions=1_000, cache_dir=tmp_path
        )
        original = writer.get_profile(spec, machine4)
        assert any(tmp_path.iterdir()), "the profile should have been persisted"

        reader = ProfileStore(
            num_instructions=20_000, interval_instructions=1_000, cache_dir=tmp_path
        )
        loaded = reader.get_profile(spec, machine4)
        assert reader.simulated_profiles == 0
        assert reader.loaded_profiles == 1
        assert loaded.cpi == pytest.approx(original.cpi)
        assert loaded.num_instructions == original.num_instructions
