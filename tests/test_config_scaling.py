"""Unit and property tests for machine scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_machine, scale_cache, scaled
from repro.config.cache_config import KIB, CacheConfig, ConfigurationError


class TestScaleCache:
    def test_scale_divides_capacity(self):
        cache = CacheConfig(name="L3", size_bytes=512 * KIB, associativity=8, latency=16)
        smaller = scale_cache(cache, 16)
        assert smaller.size_bytes == 32 * KIB
        assert smaller.associativity == cache.associativity
        assert smaller.latency == cache.latency
        assert smaller.line_size == cache.line_size

    def test_scale_one_is_identity(self):
        cache = CacheConfig(name="L2", size_bytes=256 * KIB, associativity=8)
        assert scale_cache(cache, 1) is cache

    def test_scale_never_goes_below_one_set(self):
        cache = CacheConfig(name="L1D", size_bytes=2 * KIB, associativity=8)
        tiny = scale_cache(cache, 1000)
        assert tiny.num_sets >= 1
        assert tiny.associativity == 8

    def test_scale_must_be_positive(self):
        cache = CacheConfig(name="L2", size_bytes=256 * KIB, associativity=8)
        with pytest.raises(ConfigurationError):
            scale_cache(cache, 0)

    @given(scale=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_scaled_cache_is_always_valid_and_monotonic(self, scale):
        cache = CacheConfig(name="L3", size_bytes=2048 * KIB, associativity=16, latency=24)
        smaller = scale_cache(cache, scale)
        # The constructor re-validates; capacity never grows.
        assert smaller.size_bytes <= cache.size_bytes
        assert smaller.size_bytes >= smaller.line_size * smaller.associativity
        assert smaller.num_lines % smaller.associativity == 0


class TestScaledMachine:
    def test_scaled_machine_preserves_structure(self):
        machine = baseline_machine(num_cores=4, llc_config=1)
        small = scaled(machine, 16)
        assert small.num_cores == machine.num_cores
        assert len(small.private_levels) == len(machine.private_levels)
        assert small.llc.associativity == machine.llc.associativity
        assert small.llc.latency == machine.llc.latency
        assert small.memory.latency == machine.memory.latency
        assert "1/16 scale" in small.name

    def test_scaled_machine_preserves_capacity_ratios(self):
        machine = baseline_machine(num_cores=4, llc_config=1)
        small = scaled(machine, 16)
        original_ratio = machine.llc.size_bytes / machine.private_levels[1].size_bytes
        scaled_ratio = small.llc.size_bytes / small.private_levels[1].size_bytes
        assert scaled_ratio == pytest.approx(original_ratio)

    def test_scale_one_returns_same_machine(self):
        machine = baseline_machine()
        assert scaled(machine, 1) is machine

    def test_scaled_design_space_preserves_size_ordering(self):
        sizes = []
        for config in range(1, 7):
            machine = scaled(baseline_machine(llc_config=config), 16)
            sizes.append(machine.llc.size_bytes)
        # 1 and 2 are equal, 3 and 4 are equal, 5 and 6 are equal, increasing in pairs.
        assert sizes[0] == sizes[1] < sizes[2] == sizes[3] < sizes[4] == sizes[5]
