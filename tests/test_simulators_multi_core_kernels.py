"""Equivalence matrix for the multi-core interleaving kernels.

The chunked kernel claims *bit-identical* results to the per-access
reference loops — not approximately equal.  Frozen-dataclass equality
on :class:`MultiCoreRunResult` compares every cycle count, CPI input
and counter exactly, so each case below asserts plain ``==`` across
``heap``/``scan``/``chunked`` on the situations where a speculative
merge-and-rollback walk could diverge: duplicated-program mixes, exact
ready-time ties, traces shorter than one speculation window, and
1/2/4-core machines.
"""

import numpy as np
import pytest

from repro.simulators.llc_trace import LLCAccessTrace
from repro.simulators.multi_core import (
    MULTI_CORE_KERNELS,
    MultiCoreSimulationError,
    MultiCoreSimulator,
)
from repro.workloads.benchmark import BenchmarkSpec, ReuseProfile


def run_all_kernels(machine, traces):
    """The same simulation on every kernel, as ``{kernel: result}``."""
    return {
        kernel: MultiCoreSimulator(machine, kernel=kernel).run(traces)
        for kernel in MULTI_CORE_KERNELS
    }


def assert_all_identical(machine, traces):
    results = run_all_kernels(machine, traces)
    reference = results["heap"]
    for kernel, result in results.items():
        assert result == reference, f"kernel {kernel!r} diverged from heap"
    return reference


def synthetic_trace(name, gaps, lines, tail_cycles=7.0, seed=1):
    """A hand-built LLC trace (the generator never emits 1-2 accesses)."""
    gaps = np.asarray(gaps, dtype=np.float64)
    lines = np.asarray(lines, dtype=np.int64)
    spec = BenchmarkSpec(
        name=name,
        base_cpi=0.5,
        mem_ref_fraction=0.3,
        reuse=ReuseProfile(buckets=((8, 0.5),), new_weight=0.1),
        working_set_lines=64,
        mlp=1.0,
        seed=seed,
    )
    return LLCAccessTrace(
        spec=spec,
        num_instructions=max(4 * len(lines), 8),
        line=lines,
        insn=np.arange(len(lines), dtype=np.int64),
        upstream_cycle_gap=gaps,
        tail_cycles=tail_cycles,
        isolated_cycles=float(gaps.sum()) + tail_cycles + 10.0 * len(lines),
    )


def _traces(store, suite, machine, names):
    return [store.get_llc_trace(suite[name], machine) for name in names]


class TestKernelEquivalenceMatrix:
    def test_four_core_heterogeneous_mix(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "mcf", "soplex", "lbm"])
        assert_all_identical(machine4, traces)

    def test_two_core_mix(self, store, tiny_suite, machine2):
        traces = _traces(store, tiny_suite, machine2, ["gamess", "soplex"])
        assert_all_identical(machine2, traces)

    def test_single_core_degenerates_to_isolated_run(self, store, tiny_suite, machine4):
        machine1 = machine4.with_num_cores(1)
        traces = _traces(store, tiny_suite, machine1, ["mcf"])
        result = assert_all_identical(machine1, traces)
        program = result.programs[0]
        assert program.cpi == pytest.approx(program.isolated_cpi, rel=1e-9)

    def test_duplicated_program_mix(self, store, tiny_suite, machine4):
        """Same benchmark on every core: identical gaps make ready-time
        ties the common case, so the core-index tie-break is exercised
        on every wave of accesses."""
        traces = _traces(store, tiny_suite, machine4, ["gamess"] * 4)
        result = assert_all_identical(machine4, traces)
        # The per-core address offset keeps the copies contending
        # rather than prefetching for each other.
        for program in result.programs:
            assert program.slowdown > 1.0

    def test_duplicated_pair_on_two_cores(self, store, tiny_suite, machine2):
        traces = _traces(store, tiny_suite, machine2, ["soplex", "soplex"])
        assert_all_identical(machine2, traces)

    def test_randomized_mixes(self, store, tiny_suite, machine4):
        """Random mixes with repetition across 1/2/4-core machines."""
        rng = np.random.default_rng(20260808)
        names = tiny_suite.names
        for _ in range(6):
            num_cores = int(rng.choice([1, 2, 4]))
            machine = machine4.with_num_cores(num_cores)
            mix = [names[i] for i in rng.integers(0, len(names), num_cores)]
            traces = _traces(store, tiny_suite, machine, mix)
            assert_all_identical(machine, traces)

    def test_exact_ready_time_ties_across_cores(self, machine2):
        """Hand-built traces with equal integer gaps: every access of
        core 0 ties core 1's to the cycle, so the interleaving is
        decided purely by the core-index tie-break."""
        gaps = [10.0] * 40
        lines = list(range(20)) * 2
        traces = [
            synthetic_trace("tie-a", gaps, lines, seed=11),
            synthetic_trace("tie-b", gaps, lines, seed=12),
        ]
        assert_all_identical(machine2, traces)

    def test_single_access_traces(self, machine2):
        """One LLC access per program: windows collapse to a single
        element and the FAME wraparound fires on the very first round."""
        traces = [
            synthetic_trace("one-a", [5.0], [3], seed=21),
            synthetic_trace("one-b", [6.0], [3], seed=22),
        ]
        assert_all_identical(machine2, traces)

    def test_single_access_against_long_trace(self, machine2):
        """Extreme pass-count imbalance: the single-access program laps
        the long one hundreds of times before its first pass ends."""
        rng = np.random.default_rng(7)
        long_gaps = rng.integers(1, 30, size=600).astype(np.float64)
        long_lines = rng.integers(0, 512, size=600).astype(np.int64)
        traces = [
            synthetic_trace("one", [4.0], [9], seed=31),
            synthetic_trace("long", long_gaps, long_lines, seed=32),
        ]
        assert_all_identical(machine2, traces)

    def test_shorter_than_chunk_traces(self, machine4):
        """Every trace fits inside one speculation window, with unequal
        lengths so wraparounds happen mid-round."""
        rng = np.random.default_rng(13)
        traces = []
        for core, length in enumerate([3, 17, 96, 41]):
            gaps = rng.integers(1, 12, size=length).astype(np.float64)
            lines = rng.integers(0, 256, size=length).astype(np.int64)
            traces.append(synthetic_trace(f"short-{core}", gaps, lines, seed=40 + core))
        assert_all_identical(machine4, traces)

    def test_zero_gap_bursts(self, machine2):
        """Zero upstream gaps produce exact ready-time ties *within* a
        core's own burst as well as across cores."""
        gaps = [0.0, 0.0, 3.0] * 12
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 128, size=36).astype(np.int64)
        traces = [
            synthetic_trace("burst-a", gaps, lines, seed=51),
            synthetic_trace("burst-b", gaps, lines[::-1].copy(), seed=52),
        ]
        assert_all_identical(machine2, traces)


class TestKernelSelection:
    def test_unknown_kernel_rejected(self, machine4):
        with pytest.raises(MultiCoreSimulationError):
            MultiCoreSimulator(machine4, kernel="quantum")

    def test_run_level_kernel_override(self, store, tiny_suite, machine2):
        traces = _traces(store, tiny_suite, machine2, ["gamess", "mcf"])
        simulator = MultiCoreSimulator(machine2, kernel="heap")
        assert simulator.run(traces, kernel="chunked") == simulator.run(traces)

    def test_chunked_requires_lru(self, store, tiny_suite, machine2):
        traces = _traces(store, tiny_suite, machine2, ["gamess", "mcf"])
        with pytest.raises(MultiCoreSimulationError):
            MultiCoreSimulator(machine2, llc_policy="random", kernel="chunked")
        # Without an explicit kernel the default silently stays on the
        # reference loop for non-LRU policies.
        fallback = MultiCoreSimulator(machine2, llc_policy="random")
        assert fallback.run(traces).total_llc_accesses > 0


class TestRunResultValidation:
    def test_program_lookup_by_core_on_duplicated_mix(self, store, tiny_suite, machine2):
        traces = _traces(store, tiny_suite, machine2, ["gamess", "gamess"])
        result = MultiCoreSimulator(machine2).run(traces)
        with pytest.raises(KeyError, match="pass core="):
            result.program("gamess")
        first = result.program("gamess", core=0)
        second = result.program("gamess", core=1)
        assert (first.core, second.core) == (0, 1)
        with pytest.raises(KeyError):
            result.program("gamess", core=2)
        with pytest.raises(KeyError):
            result.program("absent")

    def test_from_dict_rejects_inconsistent_program_count(
        self, store, tiny_suite, machine2
    ):
        traces = _traces(store, tiny_suite, machine2, ["gamess", "mcf"])
        payload = MultiCoreSimulator(machine2).run(traces).to_dict()
        payload["programs"] = payload["programs"][:1]
        from repro.simulators.multi_core import MultiCoreRunResult

        with pytest.raises(MultiCoreSimulationError):
            MultiCoreRunResult.from_dict(payload)

    def test_from_dict_rejects_duplicate_core_indices(
        self, store, tiny_suite, machine2
    ):
        traces = _traces(store, tiny_suite, machine2, ["gamess", "mcf"])
        payload = MultiCoreSimulator(machine2).run(traces).to_dict()
        payload["programs"][1]["core"] = 0
        from repro.simulators.multi_core import MultiCoreRunResult

        with pytest.raises(MultiCoreSimulationError):
            MultiCoreRunResult.from_dict(payload)
