"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


#: Arguments that keep every CLI invocation fast (tiny suite and traces).
FAST = ["--benchmarks", "5", "--instructions", "20000", "--scale", "16"]


class TestParser:
    def test_all_subcommands_are_registered(self):
        parser = build_parser()
        args = parser.parse_args(["suite"])
        assert args.command == "suite"
        for command in (
            "suite",
            "workloads",
            "models",
            "profile",
            "predict",
            "compare",
            "rank",
            "stress",
            "ingest",
            "serve",
        ):
            assert command in parser.format_help()

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8181
        assert args.jobs == 1 and args.cache_dir is None
        assert args.window == 0.005 and args.max_batch == 64
        args = build_parser().parse_args(["serve", "--port", "0", "--suite", "random"])
        assert args.port == 0 and args.suite == "random:n=8,seed=0"

    def test_suite_specs_are_canonicalised_and_validated(self, capsys):
        args = build_parser().parse_args(["suite", "--suite", "RANDOM"])
        assert args.suite == "random:n=8,seed=0"
        args = build_parser().parse_args(["suite", "--suite", "suite:spec29/scaled@5"])
        assert args.suite == "suite:spec29/scaled@5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--suite", "oracle"])
        # The rejection names the available specs.
        assert "suite:spec29" in capsys.readouterr().err

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_llc_config_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--llc-config", "9"])

    def test_model_specs_are_canonicalised_and_validated(self, capsys):
        args = build_parser().parse_args(["predict", "--model", "MPPM", "gamess"])
        assert args.model == "mppm:foa"
        args = build_parser().parse_args(
            ["compare", "--model", "detailed", "--model", "mppm:sdc", "gamess"]
        )
        assert args.models == ["detailed", "mppm:sdc"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--model", "oracle", "gamess"])
        # The rejection names the available specs.
        assert "mppm:foa" in capsys.readouterr().err


class TestCommands:
    def test_suite_lists_benchmarks_and_classes(self, capsys):
        assert main(["suite", *FAST]) == 0
        output = capsys.readouterr().out
        assert "gamess" in output
        assert "class" in output

    def test_models_lists_the_predictor_registry(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        for spec in (
            "mppm:foa",
            "mppm:sdc",
            "mppm:prob",
            "baseline:no-contention",
            "baseline:one-shot",
            "detailed",
        ):
            assert spec in output
        assert "default: mppm:foa" in output

    def test_workloads_lists_the_registry(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for spec in ("suite:spec29", "random:", "service:"):
            assert spec in output
        assert "default: suite:spec29" in output

    def test_models_json_matches_the_service_payload(self, capsys):
        import json

        from repro.service.payloads import models_payload

        assert main(["models", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == models_payload()

    def test_workloads_json_matches_the_service_payload(self, capsys):
        import json

        from repro.service.payloads import workloads_payload

        assert main(["workloads", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == workloads_payload()
        # Every advertised example spec is constructible.
        from repro.workloads import make_workload

        for row in payload["workloads"]:
            spec = make_workload(row["example"]).spec
            if row["example"].startswith("perf:"):
                # perf: canonicalises by appending the source digest.
                assert spec.startswith(row["example"] + ",digest=")
            else:
                assert spec == row["example"]

    def test_suite_flag_selects_the_workload(self, capsys):
        assert main(["suite", "--suite", "service:n=4,seed=0", "--instructions", "20000"]) == 0
        output = capsys.readouterr().out
        assert "service:n=4,seed=0" in output
        assert "svc-gateway" in output

    def test_suite_flag_drives_predictions(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "--suite",
                    "service:n=4,seed=0",
                    "--instructions",
                    "20000",
                    "svc-auth",
                    "svc-kvcache",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "svc-auth" in output and "STP" in output

    def test_suite_and_benchmarks_flags_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["suite", "--suite", "random:n=4,seed=0", "--benchmarks", "5"])
        assert "not allowed with" in capsys.readouterr().err

    def test_predict_with_model_flag(self, capsys):
        assert main(["predict", *FAST, "--model", "baseline:no-contention", "gamess", "hmmer"]) == 0
        output = capsys.readouterr().out
        assert "baseline:no-contention" in output and "STP" in output

    def test_compare_with_repeated_models(self, capsys):
        assert (
            main(
                [
                    "compare",
                    *FAST,
                    "--model",
                    "mppm:foa",
                    "--model",
                    "baseline:one-shot",
                    "gamess",
                    "soplex",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "[mppm:foa] STP" in output and "[baseline:one-shot] STP" in output

    def test_rank_with_model_flag(self, capsys):
        assert main(["rank", *FAST, "--cores", "2", "--mixes", "3", "--model", "mppm:prob"]) == 0
        output = capsys.readouterr().out
        assert "ranked by mppm:prob" in output

    def test_profile_reports_cpi_columns(self, capsys):
        assert main(["profile", *FAST, "gamess", "hmmer"]) == 0
        output = capsys.readouterr().out
        assert "CPI_SC" in output and "gamess" in output and "hmmer" in output

    def test_profile_rejects_unknown_benchmark(self, capsys):
        assert main(["profile", *FAST, "quake"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_predict_prints_a_prediction(self, capsys):
        assert main(["predict", *FAST, "gamess", "hmmer"]) == 0
        output = capsys.readouterr().out
        assert "STP" in output and "slowdown" in output

    def test_predict_rejects_unknown_benchmark(self, capsys):
        assert main(["predict", *FAST, "gamess", "quake"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_compare_reports_measured_and_predicted(self, capsys):
        assert main(["compare", *FAST, "gamess", "soplex"]) == 0
        output = capsys.readouterr().out
        assert "CPI_MC_measured" in output and "CPI_MC_predicted" in output
        assert "error" in output

    def test_rank_orders_the_design_space(self, capsys):
        assert main(["rank", *FAST, "--cores", "2", "--mixes", "4"]) == 0
        output = capsys.readouterr().out
        assert "config #" in output
        assert "avg_STP" in output

    def test_stress_reports_worst_mixes(self, capsys):
        assert main(["stress", *FAST, "--cores", "2", "--mixes", "6", "--worst", "3"]) == 0
        output = capsys.readouterr().out
        assert "worst_program" in output
        assert output.count("\n") >= 5


class TestIngestCommand:
    FIXTURE = "tests/data/perf_ingest_samples.csv"

    def test_ingest_writes_a_usable_bundle(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        assert main(["ingest", self.FIXTURE, "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert (out / "bundle.json").is_file()
        assert "pmu-c0" in output and "cpi_err" in output
        assert f"workload spec: perf:{out},digest=" in output
        # The printed spec round-trips straight into a prediction.
        assert main(["predict", "--suite", f"perf:{out}", "--instructions", "20000",
                     "pmu-c0", "pmu-c1"]) == 0
        assert "STP" in capsys.readouterr().out

    def test_ingest_json_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "bundle"
        assert main(["ingest", self.FIXTURE, "--out", str(out), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload_spec"].startswith(f"perf:{out},digest=")
        assert len(report["report"]) == 3
        assert all(row["coverage"] > 0 for row in report["report"])

    def test_ingest_rejects_malformed_samples(self, capsys, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("core,timestamp\n0,1.0\n")
        assert main(["ingest", str(bad), "--out", str(tmp_path / "b")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_ingest_rejects_missing_file(self, capsys, tmp_path):
        assert main(["ingest", str(tmp_path / "nope.csv"), "--out", str(tmp_path / "b")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_workloads_advertises_the_perf_family(self, capsys):
        assert main(["workloads"]) == 0
        assert "perf:" in capsys.readouterr().out
