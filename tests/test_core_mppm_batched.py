"""Batched-vs-reference equivalence matrix for the MPPM solver kernels.

The batched mix-major kernel claims *bit-identical* results to the
reference Python loop — not approximately equal.  Every assertion here
is therefore exact ``==`` on floats: same predicted CPIs, same
iteration counts, same convergence flags, for every registered
``mppm:*`` variant, across smoothing settings, uneven trace lengths,
single-mix batches and the ``max_iterations`` cap.
"""

import dataclasses

import pytest

from repro.contention import make_contention_model
from repro.core import MPPM, MPPM_KERNELS, MPPMConfig
from repro.core.mppm import MPPMError
from repro.core.result import MixPrediction
from repro.profiling import ProfileStore
from repro.workloads import WorkloadMix

from testdefaults import TEST_INSTRUCTIONS, TEST_INTERVAL

#: Every registered ``mppm:*`` spec as (contention model, config).
VARIANTS = {
    "foa": ("foa", MPPMConfig()),
    "sdc": ("sdc", MPPMConfig()),
    "prob": ("prob", MPPMConfig()),
    "windowed": ("foa", MPPMConfig(use_windowed_cpi=True)),
    "figure2": ("foa", MPPMConfig(literal_figure2_update=True)),
}


def assert_bit_identical(reference, batched):
    assert len(reference) == len(batched)
    for ref, bat in zip(reference, batched):
        assert ref.kernel == "reference"
        assert bat.kernel == "batched"
        assert ref.iterations == bat.iterations
        assert ref.converged == bat.converged
        assert ref.machine_name == bat.machine_name
        assert len(ref.programs) == len(bat.programs)
        for ref_program, bat_program in zip(ref.programs, bat.programs):
            assert ref_program.name == bat_program.name
            assert ref_program.core == bat_program.core
            # Exact equality on purpose: the kernels share op order.
            assert ref_program.single_core_cpi == bat_program.single_core_cpi
            assert ref_program.predicted_cpi == bat_program.predicted_cpi


@pytest.fixture(scope="module")
def mixed_batches(profiles4):
    """A batch exercising 1/2/4-core mixes and duplicated programs."""
    names = sorted(profiles4)
    return [
        [profiles4[names[0]], profiles4[names[1]]],
        [profiles4[name] for name in names[:4]],
        [profiles4[names[0]], profiles4[names[0]], profiles4[names[2]], profiles4[names[3]]],
        [profiles4[names[4]]],
        [profiles4[names[5]], profiles4[names[2]]],
    ]


@pytest.fixture(scope="module")
def short_profiles(tiny_suite, machine4):
    """Profiles of the same suite at half the trace length (uneven mixes)."""
    store = ProfileStore(
        num_instructions=TEST_INSTRUCTIONS // 2,
        interval_instructions=TEST_INTERVAL,
        seed=0,
    )
    return {spec.name: store.get_profile(spec, machine4) for spec in tiny_suite}


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    @pytest.mark.parametrize("smoothing", [0.0, 0.5, 0.9])
    def test_batched_matches_reference_bitwise(
        self, machine4, mixed_batches, variant, smoothing
    ):
        contention, config = VARIANTS[variant]
        model = MPPM(
            machine4,
            contention_model=make_contention_model(contention),
            config=dataclasses.replace(config, smoothing=smoothing),
        )
        reference = model.predict_batch(mixed_batches, kernel="reference")
        batched = model.predict_batch(mixed_batches, kernel="batched")
        assert_bit_identical(reference, batched)
        assert all(prediction.converged for prediction in batched)

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_uneven_trace_lengths_within_one_mix(
        self, machine4, profiles4, short_profiles, variant
    ):
        contention, config = VARIANTS[variant]
        names = sorted(profiles4)
        # Full-length and half-length traces co-scheduled in one mix:
        # the chunk comes from the shortest trace and the programs
        # reach target_passes at different rates.
        batches = [
            [profiles4[names[0]], short_profiles[names[1]]],
            [short_profiles[names[2]], profiles4[names[3]], short_profiles[names[4]]],
        ]
        model = MPPM(machine4, make_contention_model(contention), config)
        assert_bit_identical(
            model.predict_batch(batches, kernel="reference"),
            model.predict_batch(batches, kernel="batched"),
        )

    def test_single_mix_batch_equals_predict(self, machine4, profiles4):
        names = sorted(profiles4)
        profiles = [profiles4[name] for name in names[:4]]
        model = MPPM(machine4)
        single = model.predict(profiles)
        batch_of_one = model.predict_batch([profiles])
        assert single.kernel == "batched"
        assert [p.predicted_cpi for p in single.programs] == [
            p.predicted_cpi for p in batch_of_one[0].programs
        ]

    def test_max_iterations_cap_is_identical(self, machine4, mixed_batches):
        model = MPPM(machine4, config=MPPMConfig(max_iterations=2))
        reference = model.predict_batch(mixed_batches, kernel="reference")
        batched = model.predict_batch(mixed_batches, kernel="batched")
        assert_bit_identical(reference, batched)
        assert all(prediction.iterations == 2 for prediction in batched)
        assert not any(prediction.converged for prediction in batched)


class TestKernelRouting:
    def test_kernels_registry(self):
        assert MPPM_KERNELS == ("batched", "reference")

    def test_unknown_kernel_rejected(self, machine4, profiles4):
        with pytest.raises(MPPMError):
            MPPM(machine4, kernel="magic")
        model = MPPM(machine4)
        with pytest.raises(MPPMError):
            model.predict([profiles4[sorted(profiles4)[0]]] * 4, kernel="magic")

    def test_store_history_falls_back_to_reference(self, machine4, profiles4):
        names = sorted(profiles4)
        model = MPPM(machine4, config=MPPMConfig(store_history=True), kernel="batched")
        prediction = model.predict([profiles4[name] for name in names[:4]])
        assert prediction.kernel == "reference"
        assert len(prediction.history) == prediction.iterations

    def test_empty_mix_rejected_by_both_kernels(self, machine4):
        for kernel in MPPM_KERNELS:
            with pytest.raises(MPPMError):
                MPPM(machine4, kernel=kernel).predict([])

    def test_kernel_round_trips_through_serialisation(self, machine4, profiles4):
        names = sorted(profiles4)
        prediction = MPPM(machine4).predict([profiles4[name] for name in names[:4]])
        restored = MixPrediction.from_dict(prediction.to_dict())
        assert restored.kernel == "batched"
        assert "kernel=batched" in prediction.describe()

    def test_predict_many_dedups_identical_mixes(self, machine4, profiles4):
        names = sorted(profiles4)
        mix_a = WorkloadMix(programs=(names[0], names[1]))
        mix_b = WorkloadMix(programs=(names[2], names[3]))
        predictions = MPPM(machine4.with_num_cores(2)).predict_many(
            [mix_a, mix_b, mix_a, mix_a], profiles4
        )
        assert len(predictions) == 4
        assert predictions[0] is predictions[2]
        assert predictions[0] is predictions[3]
        assert predictions[0] is not predictions[1]
        # Dedup applies on the reference kernel too.
        reference = MPPM(machine4.with_num_cores(2), kernel="reference").predict_many(
            [mix_a, mix_b, mix_a], profiles4
        )
        assert reference[0] is reference[2]
        assert_bit_identical([reference[0]], [predictions[0]])
