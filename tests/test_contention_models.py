"""Unit and property tests for the cache-contention models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.stack_distance import StackDistanceCounters
from repro.config.cache_config import CacheConfig
from repro.contention import (
    FOAModel,
    InductiveProbabilityModel,
    StackDistanceCompetitionModel,
    make_contention_model,
)
from repro.contention.base import ContentionModelError, ProgramCacheDemand


LLC = CacheConfig(name="L3", size_bytes=64 * 64 * 8, associativity=8, latency=16, shared=True)


def _demand(name, per_way_counts, misses, instructions=10_000):
    """Build a demand whose SDC has ``per_way_counts`` hits at each depth."""
    counts = np.array(list(per_way_counts) + [misses], dtype=np.float64)
    assert len(counts) == LLC.associativity + 1
    return ProgramCacheDemand(
        name=name,
        sdc=StackDistanceCounters(associativity=LLC.associativity, counts=counts),
        instructions=instructions,
    )


def _uniform_demand(name, accesses=800.0, misses=100.0):
    per_way = [(accesses - misses) / LLC.associativity] * LLC.associativity
    return _demand(name, per_way, misses)


def _deep_demand(name, accesses=800.0, misses=50.0):
    """Most reuse sits in the deepest ways: very sensitive to losing space."""
    per_way = [10.0] * 4 + [(accesses - misses - 40.0) / 4] * 4
    return _demand(name, per_way, misses)


def _shallow_demand(name, accesses=800.0, misses=50.0):
    """All reuse in the first two ways: insensitive to losing space."""
    per_way = [(accesses - misses) / 2] * 2 + [0.0] * 6
    return _demand(name, per_way, misses)


ALL_MODELS = [FOAModel(), StackDistanceCompetitionModel(), InductiveProbabilityModel()]


class TestCommonBehaviour:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_single_program_sees_no_extra_misses(self, model):
        demand = _uniform_demand("alone")
        estimates = model.estimate([demand], LLC)
        assert len(estimates) == 1
        assert estimates[0].extra_conflict_misses == pytest.approx(0.0)
        assert estimates[0].shared_misses == pytest.approx(demand.isolated_misses)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_sharing_never_reduces_misses(self, model):
        demands = [_uniform_demand("a"), _deep_demand("b"), _shallow_demand("c"), _uniform_demand("d")]
        estimates = model.estimate(demands, LLC)
        assert len(estimates) == len(demands)
        for demand, estimate in zip(demands, estimates):
            assert estimate.name == demand.name
            assert estimate.shared_misses >= demand.isolated_misses - 1e-9
            assert estimate.shared_misses <= demand.sdc.total_accesses + 1e-9
            assert estimate.extra_conflict_misses >= 0.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_deep_reuse_suffers_more_than_shallow_reuse(self, model):
        demands = [_deep_demand("deep"), _shallow_demand("shallow"), _uniform_demand("other")]
        by_name = model.estimate_by_name(demands, LLC)
        assert by_name["deep"].extra_conflict_misses >= by_name["shallow"].extra_conflict_misses

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_associativity_mismatch_is_rejected(self, model):
        bad = ProgramCacheDemand(
            name="bad",
            sdc=StackDistanceCounters(associativity=4),
            instructions=1_000,
        )
        with pytest.raises(ContentionModelError):
            model.estimate([bad, _uniform_demand("ok")], LLC)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_empty_demand_list_is_rejected(self, model):
        with pytest.raises(ContentionModelError):
            model.estimate([], LLC)

    def test_demand_validation(self):
        with pytest.raises(ContentionModelError):
            ProgramCacheDemand(
                name="x", sdc=StackDistanceCounters(associativity=8), instructions=0
            )


class TestFOA:
    def test_high_frequency_program_keeps_more_of_its_hits(self):
        model = FOAModel()
        heavy = _uniform_demand("heavy", accesses=1600.0, misses=100.0)
        light = _uniform_demand("light", accesses=200.0, misses=100.0)
        estimates = model.estimate_by_name([heavy, light], LLC)
        heavy_loss = estimates["heavy"].extra_conflict_misses / heavy.isolated_hits
        light_loss = estimates["light"].extra_conflict_misses / light.isolated_hits
        assert heavy_loss < light_loss

    def test_equal_programs_share_equally(self):
        model = FOAModel()
        a = _uniform_demand("a")
        b = _uniform_demand("b")
        estimates = model.estimate([a, b], LLC)
        assert estimates[0].extra_conflict_misses == pytest.approx(
            estimates[1].extra_conflict_misses
        )

    def test_more_co_runners_mean_more_conflict_misses(self):
        model = FOAModel()
        two = model.estimate_by_name([_uniform_demand("p0"), _uniform_demand("p1")], LLC)
        four = model.estimate_by_name(
            [_uniform_demand(f"p{i}") for i in range(4)], LLC
        )
        assert four["p0"].extra_conflict_misses >= two["p0"].extra_conflict_misses

    def test_zero_access_program_is_unaffected(self):
        model = FOAModel()
        idle = _demand("idle", [0.0] * 8, 0.0)
        busy = _uniform_demand("busy")
        estimates = model.estimate_by_name([idle, busy], LLC)
        assert estimates["idle"].extra_conflict_misses == 0.0
        # The busy program keeps essentially the whole cache.
        assert estimates["busy"].extra_conflict_misses == pytest.approx(0.0, abs=1e-6)

    @given(
        accesses=st.lists(
            st.floats(min_value=10.0, max_value=5_000.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_estimates_always_bounded_by_access_counts(self, accesses):
        model = FOAModel()
        demands = [
            _uniform_demand(f"p{i}", accesses=value, misses=value * 0.1)
            for i, value in enumerate(accesses)
        ]
        for estimate, demand in zip(model.estimate(demands, LLC), demands):
            assert demand.isolated_misses - 1e-6 <= estimate.shared_misses
            assert estimate.shared_misses <= demand.accesses + 1e-6


class TestSDCCompetitionAndProb:
    def test_sdc_competition_awards_ways_to_the_hotter_program(self):
        model = StackDistanceCompetitionModel()
        hot = _uniform_demand("hot", accesses=2000.0, misses=100.0)
        cold = _uniform_demand("cold", accesses=100.0, misses=20.0)
        estimates = model.estimate_by_name([hot, cold], LLC)
        hot_loss = estimates["hot"].extra_conflict_misses / hot.isolated_hits
        cold_loss = estimates["cold"].extra_conflict_misses / cold.isolated_hits
        assert hot_loss <= cold_loss

    def test_prob_model_dilation_grows_with_co_runner_traffic(self):
        model = InductiveProbabilityModel()
        victim = _deep_demand("victim")
        light_other = _uniform_demand("other", accesses=100.0, misses=50.0)
        heavy_other = _uniform_demand("other", accesses=3000.0, misses=1500.0)
        light = model.estimate_by_name([victim, light_other], LLC)["victim"]
        heavy = model.estimate_by_name([victim, heavy_other], LLC)["victim"]
        assert heavy.extra_conflict_misses >= light.extra_conflict_misses


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [("foa", FOAModel), ("sdc", StackDistanceCompetitionModel), ("prob", InductiveProbabilityModel)],
    )
    def test_make_contention_model(self, name, cls):
        assert isinstance(make_contention_model(name), cls)
        assert isinstance(make_contention_model(name.upper()), cls)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_contention_model("oracle")
