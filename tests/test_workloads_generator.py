"""Unit and property tests for the synthetic trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.benchmark import BenchmarkSpec, PhaseSpec, ReuseProfile, WorkloadError
from repro.workloads.generator import GENERATOR_KERNELS, TraceGenerator, generate_trace
from repro.workloads.trace import MemoryTrace


def _small_spec(**overrides) -> BenchmarkSpec:
    defaults = dict(
        name="unit-test",
        base_cpi=0.5,
        mem_ref_fraction=0.3,
        reuse=ReuseProfile(buckets=((8, 0.6), (64, 0.3)), new_weight=0.1),
        working_set_lines=256,
        mlp=2.0,
        seed=7,
    )
    defaults.update(overrides)
    return BenchmarkSpec(**defaults)


class TestTraceGenerator:
    def test_trace_has_expected_shape(self):
        trace = generate_trace(_small_spec(), num_instructions=20_000, seed=0)
        assert isinstance(trace, MemoryTrace)
        assert trace.num_instructions == 20_000
        # Access count tracks the memory-reference fraction closely.
        assert trace.num_accesses == pytest.approx(20_000 * 0.3, rel=0.05)
        # Instruction indices are non-decreasing and in range.
        assert (np.diff(trace.access_insn) >= 0).all()
        assert trace.access_insn[0] >= 0
        assert trace.access_insn[-1] < 20_000

    def test_generation_is_deterministic(self):
        spec = _small_spec()
        first = generate_trace(spec, num_instructions=10_000, seed=3)
        second = generate_trace(spec, num_instructions=10_000, seed=3)
        assert np.array_equal(first.access_line, second.access_line)
        assert np.array_equal(first.access_insn, second.access_insn)
        assert np.allclose(first.base_cycle_gap, second.base_cycle_gap)

    def test_different_seeds_produce_different_traces(self):
        spec = _small_spec()
        first = generate_trace(spec, num_instructions=10_000, seed=1)
        second = generate_trace(spec, num_instructions=10_000, seed=2)
        assert not np.array_equal(first.access_line, second.access_line)

    def test_footprint_respects_working_set(self):
        spec = _small_spec(working_set_lines=100, reuse=ReuseProfile(buckets=((8, 0.2),), new_weight=0.8))
        trace = generate_trace(spec, num_instructions=20_000)
        assert trace.footprint_lines <= 100

    def test_footprint_is_memoized_on_the_frozen_trace(self):
        spec = _small_spec()
        trace = generate_trace(spec, num_instructions=10_000)
        assert "footprint_lines" not in trace.__dict__
        first = trace.footprint_lines
        # cached_property writes through to __dict__ despite the frozen
        # dataclass, so the unique() pass runs only once.
        assert trace.__dict__["footprint_lines"] == first
        assert trace.footprint_lines == first

    def test_streaming_spec_touches_many_lines(self):
        streaming = _small_spec(
            name="streamy",
            reuse=ReuseProfile(buckets=((8, 0.2),), new_weight=0.8),
            working_set_lines=50_000,
        )
        friendly = _small_spec(name="friendly")
        streaming_trace = generate_trace(streaming, num_instructions=20_000)
        friendly_trace = generate_trace(friendly, num_instructions=20_000)
        assert streaming_trace.footprint_lines > 3 * friendly_trace.footprint_lines

    def test_benchmarks_use_disjoint_address_spaces(self, full_suite, generator):
        gamess = generator.generate(full_suite["gamess"])
        hmmer = generator.generate(full_suite["hmmer"])
        assert set(np.unique(gamess.access_line)).isdisjoint(set(np.unique(hmmer.access_line)))

    def test_base_cycle_gaps_match_base_cpi(self):
        spec = _small_spec(base_cpi=0.8)
        trace = generate_trace(spec, num_instructions=10_000)
        # Total base cycles equal base CPI x instructions (single phase).
        assert trace.total_base_cycles == pytest.approx(0.8 * 10_000, rel=0.01)

    def test_phases_change_memory_intensity(self):
        phased = _small_spec(
            name="phased",
            phases=(
                PhaseSpec(fraction=0.5, mem_fraction_multiplier=0.5),
                PhaseSpec(fraction=0.5, mem_fraction_multiplier=2.0),
            ),
        )
        trace = generate_trace(phased, num_instructions=20_000)
        midpoint = 10_000
        first_half = int((trace.access_insn < midpoint).sum())
        second_half = trace.num_accesses - first_half
        assert second_half > 2 * first_half

    def test_invalid_num_instructions_rejected(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(num_instructions=0)

    @given(
        mem_fraction=st.floats(min_value=0.05, max_value=0.6),
        new_weight=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=15, deadline=None)
    def test_generated_traces_are_always_consistent(self, mem_fraction, new_weight):
        spec = _small_spec(
            mem_ref_fraction=mem_fraction,
            reuse=ReuseProfile(buckets=((8, 0.5), (64, 0.3)), new_weight=new_weight),
        )
        trace = generate_trace(spec, num_instructions=5_000)
        # MemoryTrace validates array lengths; check the semantic invariants.
        assert trace.num_accesses >= 1
        assert trace.access_insn.max() < trace.num_instructions
        assert (trace.base_cycle_gap >= 0).all()
        assert trace.tail_base_cycles >= 0
        assert trace.footprint_lines <= spec.working_set_lines


def _assert_traces_identical(vectorized: MemoryTrace, reference: MemoryTrace) -> None:
    assert np.array_equal(vectorized.access_insn, reference.access_insn)
    assert np.array_equal(vectorized.access_line, reference.access_line)
    assert np.array_equal(vectorized.base_cycle_gap, reference.base_cycle_gap)
    assert vectorized.access_line.dtype == reference.access_line.dtype
    assert vectorized.base_cycle_gap.dtype == reference.base_cycle_gap.dtype
    assert vectorized.tail_base_cycles == reference.tail_base_cycles
    assert vectorized.num_instructions == reference.num_instructions


#: The equivalence matrix: every row is a (label, spec, num_instructions)
#: corner the vectorized kernel must reproduce bit-for-bit.
EQUIVALENCE_CASES = [
    (
        "phased",
        _small_spec(
            name="phased",
            phases=(
                PhaseSpec(fraction=0.3, mem_fraction_multiplier=0.5),
                PhaseSpec(fraction=0.4, reuse_depth_multiplier=1.8, cpi_multiplier=1.3),
                PhaseSpec(fraction=0.3, new_line_multiplier=3.0, mem_fraction_multiplier=1.5),
            ),
        ),
        20_000,
    ),
    (
        "streaming",
        _small_spec(
            name="streaming",
            reuse=ReuseProfile(buckets=((8, 0.3),), new_weight=0.7),
            working_set_lines=50_000,
        ),
        20_000,
    ),
    (
        "wrap-around",
        _small_spec(
            name="wrappy",
            reuse=ReuseProfile(buckets=((8, 0.3), (64, 0.1)), new_weight=0.6),
            working_set_lines=48,
        ),
        20_000,
    ),
    (
        "deep-reuse-beyond-footprint",
        _small_spec(
            name="deep",
            reuse=ReuseProfile(buckets=((2048, 0.6),), new_weight=0.05),
            working_set_lines=128,
        ),
        10_000,
    ),
    (
        "streaming-only-no-buckets",
        _small_spec(name="cold", reuse=ReuseProfile(buckets=(), new_weight=1.0)),
        5_000,
    ),
    ("shorter-than-interval", _small_spec(name="tiny"), 17),
    (
        "tiny-trace-many-phases",
        _small_spec(
            name="tiny-phased",
            phases=(
                PhaseSpec(fraction=0.4),
                PhaseSpec(fraction=0.3, mem_fraction_multiplier=2.0),
                PhaseSpec(fraction=0.3),
            ),
        ),
        7,
    ),
]


class TestKernelEquivalence:
    """The vectorized kernel is bit-identical to the reference loop."""

    @pytest.mark.parametrize(
        "spec,num_instructions",
        [case[1:] for case in EQUIVALENCE_CASES],
        ids=[case[0] for case in EQUIVALENCE_CASES],
    )
    def test_equivalence_matrix(self, spec, num_instructions):
        generator = TraceGenerator(num_instructions=num_instructions, seed=0)
        _assert_traces_identical(
            generator.generate(spec, kernel="vectorized"),
            generator.generate(spec, kernel="reference"),
        )

    def test_suite_benchmarks_are_identical_across_kernels(self, full_suite, generator):
        for name in ("gamess", "lbm", "mcf", "gcc", "cactusADM"):
            spec = full_suite[name]
            _assert_traces_identical(
                generator.generate(spec, kernel="vectorized"),
                generator.generate(spec, kernel="reference"),
            )

    def test_default_kernel_is_vectorized_and_selectable(self):
        assert GENERATOR_KERNELS == ("vectorized", "reference")
        assert TraceGenerator().kernel == "vectorized"
        spec = _small_spec()
        via_ctor = TraceGenerator(num_instructions=5_000, kernel="reference").generate(spec)
        via_call = TraceGenerator(num_instructions=5_000).generate(spec, kernel="reference")
        _assert_traces_identical(via_call, via_ctor)

    def test_unknown_kernel_is_rejected(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(kernel="magic")
        with pytest.raises(WorkloadError):
            TraceGenerator(num_instructions=1_000).generate(_small_spec(), kernel="magic")

    @given(
        mem_fraction=st.floats(min_value=0.05, max_value=0.6),
        new_weight=st.floats(min_value=0.0, max_value=0.8),
        working_set=st.integers(min_value=16, max_value=2_000),
        deep_depth=st.integers(min_value=65, max_value=4_096),
        num_instructions=st.integers(min_value=5, max_value=8_000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomized_equivalence(
        self, mem_fraction, new_weight, working_set, deep_depth, num_instructions, seed
    ):
        spec = _small_spec(
            name="prop",
            mem_ref_fraction=mem_fraction,
            reuse=ReuseProfile(
                buckets=((8, 0.5), (64, 0.3), (deep_depth, 0.1)), new_weight=new_weight
            ),
            working_set_lines=working_set,
        )
        generator = TraceGenerator(num_instructions=num_instructions, seed=seed)
        _assert_traces_identical(
            generator.generate(spec, kernel="vectorized"),
            generator.generate(spec, kernel="reference"),
        )


class TestIntervalSlices:
    def test_slices_cover_all_accesses_exactly_once(self):
        trace = generate_trace(_small_spec(), num_instructions=20_000)
        slices = trace.interval_slices(1_000)
        assert len(slices) == 20
        assert slices[0][0] == 0
        assert slices[-1][1] == trace.num_accesses
        for (_, stop), (start, _) in zip(slices, slices[1:]):
            assert stop == start

    def test_interval_length_must_be_positive(self):
        trace = generate_trace(_small_spec(), num_instructions=5_000)
        with pytest.raises(WorkloadError):
            trace.interval_slices(0)

    def test_describe_contains_key_numbers(self):
        trace = generate_trace(_small_spec(), num_instructions=5_000)
        text = trace.describe()
        assert "unit-test" in text
        assert "5000 instructions" in text
