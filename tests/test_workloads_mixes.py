"""Unit and property tests for workload-mix counting, enumeration and sampling."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    BenchmarkClass,
    WorkloadMix,
    count_mixes,
    enumerate_mixes,
    sample_category_mixes,
    sample_mixes,
)
from repro.workloads.benchmark import WorkloadError
from repro.workloads.mixes import distinct_benchmarks, mixes_containing


class TestWorkloadMix:
    def test_programs_are_canonically_sorted(self):
        mix = WorkloadMix(programs=("soplex", "gamess", "hmmer"))
        assert mix.programs == ("gamess", "hmmer", "soplex")
        assert mix == WorkloadMix(programs=("hmmer", "soplex", "gamess"))

    def test_counts_and_label_for_duplicates(self):
        mix = WorkloadMix(programs=("gamess", "gamess", "hmmer", "soplex"))
        assert mix.counts() == {"gamess": 2, "hmmer": 1, "soplex": 1}
        assert mix.label() == "2x gamess + hmmer + soplex"
        assert mix.num_programs == 4
        assert mix.distinct_programs == ("gamess", "hmmer", "soplex")

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadMix(programs=())

    def test_mixes_are_hashable_and_usable_in_sets(self):
        a = WorkloadMix(programs=("a", "b"))
        b = WorkloadMix(programs=("b", "a"))
        assert len({a, b}) == 1


class TestCounting:
    @pytest.mark.parametrize(
        "benchmarks, programs, expected",
        [
            (29, 2, 435),
            (29, 4, 35_960),
            (29, 8, 30_260_340),
            (3, 2, 6),
            (1, 5, 1),
        ],
    )
    def test_paper_counts(self, benchmarks, programs, expected):
        assert count_mixes(benchmarks, programs) == expected

    def test_count_rejects_non_positive_inputs(self):
        with pytest.raises(WorkloadError):
            count_mixes(0, 2)
        with pytest.raises(WorkloadError):
            count_mixes(5, 0)

    @given(n=st.integers(min_value=1, max_value=7), m=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_count_matches_enumeration(self, n, m):
        names = [f"b{i}" for i in range(n)]
        assert count_mixes(n, m) == sum(1 for _ in enumerate_mixes(names, m))

    def test_enumeration_yields_unique_canonical_mixes(self):
        mixes = list(enumerate_mixes(["a", "b", "c"], 2))
        assert len(mixes) == 6
        assert len({mix.programs for mix in mixes}) == 6


class TestSampling:
    def test_sampling_is_deterministic_per_seed(self):
        names = [f"b{i}" for i in range(10)]
        assert sample_mixes(names, 4, 20, seed=5) == sample_mixes(names, 4, 20, seed=5)
        assert sample_mixes(names, 4, 20, seed=5) != sample_mixes(names, 4, 20, seed=6)

    def test_unique_sampling_returns_distinct_mixes(self):
        names = [f"b{i}" for i in range(10)]
        mixes = sample_mixes(names, 4, 50, seed=1, unique=True)
        assert len(mixes) == 50
        assert len({mix.programs for mix in mixes}) == 50

    def test_sampling_whole_space_returns_every_mix(self):
        names = ["a", "b", "c"]
        mixes = sample_mixes(names, 2, 100, seed=0, unique=True)
        assert len(mixes) == count_mixes(3, 2)

    def test_non_unique_sampling_may_repeat(self):
        names = ["a", "b"]
        mixes = sample_mixes(names, 2, 30, seed=0, unique=False)
        assert len(mixes) == 30

    def test_sampling_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            sample_mixes([], 4, 5)
        with pytest.raises(WorkloadError):
            sample_mixes(["a"], 4, 0)

    @given(
        num_programs=st.integers(min_value=1, max_value=8),
        num_mixes=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_sampled_mixes_only_use_known_benchmarks(self, num_programs, num_mixes):
        names = [f"b{i}" for i in range(12)]
        mixes = sample_mixes(names, num_programs, num_mixes, seed=3)
        for mix in mixes:
            assert mix.num_programs == num_programs
            assert set(mix.programs) <= set(names)


class TestCategorySampling:
    @pytest.fixture()
    def classification(self):
        return {
            "mem1": BenchmarkClass.MEM,
            "mem2": BenchmarkClass.MEM,
            "comp1": BenchmarkClass.COMP,
            "comp2": BenchmarkClass.COMP,
            "mix1": BenchmarkClass.MIX,
        }

    def test_category_mixes_respect_their_category(self, classification):
        mixes = sample_category_mixes(classification, num_programs=4, mixes_per_category=3, seed=0)
        assert len(mixes) == 9
        mem_mixes = mixes[:3]
        comp_mixes = mixes[3:6]
        for mix in mem_mixes:
            assert set(mix.programs) <= {"mem1", "mem2"}
        for mix in comp_mixes:
            assert set(mix.programs) <= {"comp1", "comp2"}

    def test_mixed_category_combines_classes(self, classification):
        mixes = sample_category_mixes(
            classification,
            num_programs=4,
            mixes_per_category=5,
            seed=1,
            categories=[BenchmarkClass.MIX],
        )
        pooled = {name for mix in mixes for name in mix.programs}
        # The mixed category draws from both the MEM and the COMP side.
        assert pooled & {"mem1", "mem2", "mix1"}
        assert pooled & {"comp1", "comp2", "mix1"}

    def test_category_sampling_validates_arguments(self, classification):
        with pytest.raises(WorkloadError):
            sample_category_mixes(classification, num_programs=4, mixes_per_category=0)
        with pytest.raises(WorkloadError):
            sample_category_mixes(
                classification, num_programs=4, mixes_per_category=1, mixed_fraction_mem=1.5
            )

    def test_empty_category_pool_is_an_error(self):
        classification = {"comp1": BenchmarkClass.COMP}
        with pytest.raises(WorkloadError):
            sample_category_mixes(
                classification,
                num_programs=2,
                mixes_per_category=1,
                categories=[BenchmarkClass.MEM],
            )


class TestMixQueries:
    def test_mixes_containing_filters_by_benchmark(self):
        mixes = [WorkloadMix(("a", "b")), WorkloadMix(("b", "c")), WorkloadMix(("c", "d"))]
        assert len(mixes_containing(mixes, "b")) == 2
        assert mixes_containing(mixes, "z") == []

    def test_distinct_benchmarks_across_mixes(self):
        mixes = [WorkloadMix(("a", "b")), WorkloadMix(("b", "c"))]
        assert distinct_benchmarks(mixes) == ["a", "b", "c"]
