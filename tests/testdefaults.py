"""Shared scale constants for the test suite.

These live in a module with a unique name (not ``conftest``) so that
test modules can import them regardless of which directories pytest
collected: a bare ``from conftest import ...`` resolves whichever
``conftest.py`` happened to be imported first, which breaks as soon as
``benchmarks/`` and ``tests/`` are collected together.
"""

#: Trace length used throughout the tests (1/4 of the experiment default).
TEST_INSTRUCTIONS = 50_000
#: Profiling interval used throughout the tests (50 intervals per trace).
TEST_INTERVAL = 1_000
#: Cache scaling used throughout the tests.
TEST_SCALE = 16
