"""Unit tests for MEM / COMP / MIX benchmark classification."""

import pytest

from repro.workloads import BenchmarkClass, classify_benchmark, classify_suite
from repro.workloads.benchmark import BenchmarkSpec, ReuseProfile
from repro.workloads.classification import (
    class_counts,
    classify_from_profile,
    ensure_all_classes_present,
    group_by_class,
    memory_intensity,
)


def _spec_with_reuse(buckets, new_weight, mem_ref_fraction=0.3, name="clf"):
    return BenchmarkSpec(
        name=name,
        mem_ref_fraction=mem_ref_fraction,
        reuse=ReuseProfile(buckets=buckets, new_weight=new_weight),
        working_set_lines=10_000,
    )


class TestMemoryIntensity:
    def test_cache_resident_spec_has_low_intensity(self):
        spec = _spec_with_reuse(((8, 0.7), (64, 0.3)), new_weight=0.0)
        assert memory_intensity(spec) == pytest.approx(0.0)

    def test_streaming_spec_has_high_intensity(self):
        spec = _spec_with_reuse(((8, 0.5),), new_weight=0.5)
        assert memory_intensity(spec) == pytest.approx(0.3 * 0.5)

    def test_straddling_bucket_counts_partially(self):
        # Bucket from 128 to 384 lines straddles the 256-line private boundary:
        # half its mass lies beyond it.
        spec = _spec_with_reuse(((128, 0.5), (384, 0.5)), new_weight=0.0)
        assert memory_intensity(spec, private_lines=256) == pytest.approx(0.3 * 0.5 * 0.5)

    def test_intensity_scales_with_memory_reference_rate(self):
        low = _spec_with_reuse(((8, 0.5),), new_weight=0.5, mem_ref_fraction=0.1)
        high = _spec_with_reuse(((8, 0.5),), new_weight=0.5, mem_ref_fraction=0.4)
        assert memory_intensity(high) == pytest.approx(4 * memory_intensity(low))


class TestClassification:
    def test_thresholds_split_into_three_classes(self):
        comp = _spec_with_reuse(((8, 1.0),), new_weight=0.0)
        mem = _spec_with_reuse(((8, 0.3),), new_weight=0.7)
        middle = _spec_with_reuse(((8, 0.95),), new_weight=0.02)
        assert classify_benchmark(comp) == BenchmarkClass.COMP
        assert classify_benchmark(mem) == BenchmarkClass.MEM
        assert classify_benchmark(middle) == BenchmarkClass.MIX

    def test_suite_classification_matches_roles(self, full_suite):
        classes = classify_suite(full_suite)
        assert classes["lbm"] == BenchmarkClass.MEM
        assert classes["libquantum"] == BenchmarkClass.MEM
        assert classes["hmmer"] == BenchmarkClass.COMP
        assert classes["povray"] == BenchmarkClass.COMP

    def test_group_by_class_and_counts(self, full_suite):
        classes = classify_suite(full_suite)
        groups = group_by_class(classes)
        counts = class_counts(classes)
        assert sum(counts.values()) == len(full_suite)
        for cls in BenchmarkClass:
            assert counts[cls] == len(groups[cls])
        ensure_all_classes_present(classes)

    def test_ensure_all_classes_present_raises_on_empty_class(self):
        with pytest.raises(ValueError):
            ensure_all_classes_present({"only": BenchmarkClass.COMP})


class TestClassifyFromProfile:
    def test_fraction_thresholds(self):
        assert classify_from_profile(0.6) == BenchmarkClass.MEM
        assert classify_from_profile(0.05) == BenchmarkClass.COMP
        assert classify_from_profile(0.2) == BenchmarkClass.MIX

    def test_fraction_must_be_within_unit_interval(self):
        with pytest.raises(ValueError):
            classify_from_profile(1.5)
        with pytest.raises(ValueError):
            classify_from_profile(-0.1)
