"""Unit tests for MPPM result types."""

import pytest

from repro.core.result import (
    IterationRecord,
    MixPrediction,
    MPPMResultError,
    ProgramPrediction,
)


def _program(name="bench", core=0, sc=1.0, mc=1.5):
    return ProgramPrediction(name=name, core=core, single_core_cpi=sc, predicted_cpi=mc)


class TestProgramPrediction:
    def test_slowdown_and_progress(self):
        program = _program(sc=1.0, mc=2.0)
        assert program.slowdown == pytest.approx(2.0)
        assert program.normalized_progress == pytest.approx(0.5)

    def test_cpis_must_be_positive(self):
        with pytest.raises(MPPMResultError):
            _program(sc=0.0)
        with pytest.raises(MPPMResultError):
            _program(mc=-1.0)


class TestMixPrediction:
    def test_stp_and_antt_follow_their_definitions(self):
        programs = (
            _program("a", 0, sc=1.0, mc=2.0),  # progress 0.5, slowdown 2.0
            _program("b", 1, sc=2.0, mc=2.0),  # progress 1.0, slowdown 1.0
        )
        prediction = MixPrediction(
            machine_name="m", programs=programs, iterations=5, converged=True
        )
        assert prediction.system_throughput == pytest.approx(1.5)
        assert prediction.average_normalized_turnaround_time == pytest.approx(1.5)
        assert prediction.slowdowns == pytest.approx([2.0, 1.0])
        assert prediction.predicted_cpis == pytest.approx([2.0, 2.0])
        assert prediction.num_programs == 2

    def test_program_lookup_and_by_core(self):
        programs = (_program("a", 0), _program("b", 1))
        prediction = MixPrediction(
            machine_name="m", programs=programs, iterations=1, converged=True
        )
        assert prediction.program("b").core == 1
        assert set(prediction.by_core()) == {0, 1}
        with pytest.raises(KeyError):
            prediction.program("zzz")

    def test_describe_mentions_programs_and_metrics(self):
        prediction = MixPrediction(
            machine_name="config #1",
            programs=(_program("gamess"),),
            iterations=3,
            converged=True,
        )
        text = prediction.describe()
        assert "gamess" in text and "STP" in text and "config #1" in text

    def test_empty_prediction_rejected(self):
        with pytest.raises(MPPMResultError):
            MixPrediction(machine_name="m", programs=(), iterations=0, converged=False)

    def test_history_records_are_carried(self):
        record = IterationRecord(
            iteration=1, window_cycles=100.0, slowdowns=(1.0,), instructions_executed=(10.0,)
        )
        prediction = MixPrediction(
            machine_name="m",
            programs=(_program(),),
            iterations=1,
            converged=False,
            history=(record,),
        )
        assert prediction.history[0].window_cycles == 100.0
