"""Unit tests for the Table 1/Table 2 machine builders."""

import pytest

from repro.config import LLC_CONFIGS, baseline_machine, llc_design_space, machine_with_llc
from repro.config.cache_config import KIB, MIB


class TestLLCConfigs:
    def test_table2_has_six_configurations(self):
        assert sorted(LLC_CONFIGS) == [1, 2, 3, 4, 5, 6]

    @pytest.mark.parametrize(
        "number, size, assoc, latency",
        [
            (1, 512 * KIB, 8, 16),
            (2, 512 * KIB, 16, 20),
            (3, 1 * MIB, 8, 18),
            (4, 1 * MIB, 16, 22),
            (5, 2 * MIB, 8, 20),
            (6, 2 * MIB, 16, 24),
        ],
    )
    def test_table2_values(self, number, size, assoc, latency):
        llc = LLC_CONFIGS[number]
        assert llc.size_bytes == size
        assert llc.associativity == assoc
        assert llc.latency == latency
        assert llc.shared

    def test_baseline_machine_defaults(self):
        machine = baseline_machine()
        assert machine.num_cores == 4
        assert machine.llc == LLC_CONFIGS[1]
        assert machine.memory.latency == 200
        # Table 1 private hierarchy: 32KB L1D, 256KB L2.
        assert machine.private_levels[0].size_bytes == 32 * KIB
        assert machine.private_levels[1].size_bytes == 256 * KIB

    def test_baseline_machine_with_other_config_and_cores(self):
        machine = baseline_machine(num_cores=16, llc_config=4)
        assert machine.num_cores == 16
        assert machine.llc == LLC_CONFIGS[4]
        assert machine.name == "config #4"

    def test_machine_with_llc_rejects_unknown_config(self):
        with pytest.raises(KeyError):
            machine_with_llc(7)

    def test_design_space_order_and_count(self):
        machines = llc_design_space(num_cores=4)
        assert len(machines) == 6
        assert [machine.name for machine in machines] == [f"config #{i}" for i in range(1, 7)]
        assert all(machine.num_cores == 4 for machine in machines)
