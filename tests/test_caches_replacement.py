"""Unit tests for replacement policies."""

import pytest

from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementError,
    make_policy,
)


class TestLRUPolicy:
    def test_victim_is_least_recently_used(self):
        policy = LRUPolicy()
        state = policy.new_set_state(4)
        for way in range(4):
            policy.on_fill(state, way)
        # Ways were filled 0,1,2,3 -> 0 is the LRU.
        assert policy.victim(state, [0, 1, 2, 3]) == 0
        # Touching way 0 promotes it; way 1 becomes the victim.
        policy.on_hit(state, 0)
        assert policy.victim(state, [0, 1, 2, 3]) == 1

    def test_refill_of_existing_way_promotes_it(self):
        policy = LRUPolicy()
        state = policy.new_set_state(2)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        policy.on_fill(state, 0)
        assert policy.victim(state, [0, 1]) == 1

    def test_victim_on_empty_state_is_an_error(self):
        policy = LRUPolicy()
        with pytest.raises(ReplacementError):
            policy.victim(policy.new_set_state(4), [])


class TestFIFOPolicy:
    def test_hits_do_not_change_eviction_order(self):
        policy = FIFOPolicy()
        state = policy.new_set_state(3)
        for way in range(3):
            policy.on_fill(state, way)
        policy.on_hit(state, 0)
        # Despite the hit, way 0 is still the first in, first out.
        assert policy.victim(state, [0, 1, 2]) == 0

    def test_victim_on_empty_state_is_an_error(self):
        policy = FIFOPolicy()
        with pytest.raises(ReplacementError):
            policy.victim(policy.new_set_state(2), [])


class TestRandomPolicy:
    def test_victims_come_from_occupied_ways_and_are_deterministic_per_seed(self):
        occupied = [0, 1, 2, 3]
        first = [RandomPolicy(seed=9).victim(None, occupied) for _ in range(10)]
        second = [RandomPolicy(seed=9).victim(None, occupied) for _ in range(10)]
        assert first == second
        assert set(first) <= set(occupied)

    def test_victim_requires_occupied_ways(self):
        with pytest.raises(ReplacementError):
            RandomPolicy().victim(None, [])


class TestMakePolicy:
    @pytest.mark.parametrize("name, cls", [("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy)])
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name), cls)
        assert isinstance(make_policy(name.upper()), cls)

    def test_unknown_policy_is_an_error(self):
        with pytest.raises(ReplacementError):
            make_policy("plru-tree")
