"""Unit tests for the CPI stack and the core timing model."""

import pytest

from repro.config import baseline_machine, scaled
from repro.cores.core_model import CoreTimingModel
from repro.cores.cpi_stack import CPIStack
from repro.workloads.benchmark import BenchmarkSpec


class TestCPIStack:
    def test_components_accumulate_and_derive_cpi(self):
        stack = CPIStack()
        stack.add_base(100.0)
        stack.add_private_cache(20.0)
        stack.add_llc(30.0)
        stack.add_memory(50.0)
        stack.add_instructions(100)
        assert stack.total_cycles == pytest.approx(200.0)
        assert stack.cpi == pytest.approx(2.0)
        assert stack.memory_cpi == pytest.approx(0.5)
        assert stack.memory_fraction == pytest.approx(0.25)
        assert stack.components() == {
            "base": 100.0,
            "private_cache": 20.0,
            "llc": 30.0,
            "memory": 50.0,
        }

    def test_empty_stack_has_zero_cpi(self):
        stack = CPIStack()
        assert stack.cpi == 0.0
        assert stack.memory_cpi == 0.0
        assert stack.memory_fraction == 0.0

    def test_merge_and_copy_are_independent(self):
        a = CPIStack(base=10.0, memory=5.0, instructions=10)
        b = CPIStack(base=20.0, llc=2.0, instructions=20)
        merged = a.merged_with(b)
        assert merged.base == 30.0
        assert merged.instructions == 30
        copy = a.copy()
        copy.add_base(100.0)
        assert a.base == 10.0


class TestCoreTimingModel:
    @pytest.fixture()
    def machine(self):
        return scaled(baseline_machine(num_cores=4, llc_config=1), 16)

    def test_l1_hits_are_free_and_deeper_levels_are_mlp_discounted(self, machine):
        spec = BenchmarkSpec(name="timing", mlp=2.0)
        model = CoreTimingModel(machine, spec)
        assert model.private_hit_penalty(0) == 0.0
        assert model.private_hit_penalty(1) == pytest.approx(machine.private_levels[1].latency / 2.0)
        assert model.llc_hit_penalty == pytest.approx(machine.llc.latency / 2.0)
        assert model.memory_penalty == pytest.approx(machine.memory.latency / 2.0)

    def test_miss_extra_penalty_is_memory_minus_llc(self, machine):
        spec = BenchmarkSpec(name="timing", mlp=1.0)
        model = CoreTimingModel(machine, spec)
        assert model.llc_miss_extra_penalty == pytest.approx(
            machine.memory.latency - machine.llc.latency
        )

    def test_higher_mlp_reduces_all_penalties(self, machine):
        low = CoreTimingModel(machine, BenchmarkSpec(name="low", mlp=1.0))
        high = CoreTimingModel(machine, BenchmarkSpec(name="high", mlp=4.0))
        assert high.memory_penalty < low.memory_penalty
        assert high.llc_hit_penalty < low.llc_hit_penalty

    def test_base_cycles_scale_with_cpi_and_multiplier(self, machine):
        spec = BenchmarkSpec(name="timing", base_cpi=0.5)
        model = CoreTimingModel(machine, spec)
        assert model.base_cycles(1000) == pytest.approx(500.0)
        assert model.base_cycles(1000, cpi_multiplier=2.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            model.base_cycles(-1)

    def test_describe_mentions_benchmark_and_machine(self, machine):
        model = CoreTimingModel(machine, BenchmarkSpec(name="describe-me"))
        text = model.describe()
        assert "describe-me" in text
        assert "memory=" in text
