"""Unit and behavioural tests for the MPPM iterative model."""

import pytest

from repro.contention import InductiveProbabilityModel, StackDistanceCompetitionModel
from repro.core import MPPM, MPPMConfig
from repro.core.mppm import MPPMError
from repro.workloads import WorkloadMix


class TestMPPMConfig:
    def test_defaults_follow_the_paper(self):
        config = MPPMConfig()
        assert config.chunk_instructions is None  # one fifth of the trace
        assert config.target_passes == 5.0
        assert 0.0 <= config.smoothing < 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(chunk_instructions=0),
            dict(smoothing=-0.1),
            dict(smoothing=1.0),
            dict(target_passes=0),
            dict(max_iterations=0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(MPPMError):
            MPPMConfig(**kwargs)


class TestMPPMPredictions:
    def test_single_program_mix_has_no_slowdown(self, machine4, profiles4):
        model = MPPM(machine4.with_num_cores(1))
        prediction = model.predict([profiles4["gamess"]])
        assert prediction.converged
        program = prediction.programs[0]
        assert program.slowdown == pytest.approx(1.0, abs=1e-6)
        assert program.predicted_cpi == pytest.approx(program.single_core_cpi, rel=1e-6)

    def test_predictions_are_deterministic(self, machine4, profiles4):
        model = MPPM(machine4)
        mix = [profiles4[name] for name in ("gamess", "hmmer", "soplex", "mcf")]
        first = model.predict(mix)
        second = model.predict(mix)
        assert first.predicted_cpis == pytest.approx(second.predicted_cpis)

    def test_slowdowns_are_at_least_one_and_converged(self, machine4, profiles4):
        model = MPPM(machine4)
        prediction = model.predict(
            [profiles4[name] for name in ("gamess", "gamess", "hmmer", "soplex")]
        )
        assert prediction.converged
        assert prediction.iterations >= 5
        for program in prediction.programs:
            assert program.slowdown >= 1.0 - 1e-9

    def test_sensitive_program_is_predicted_to_suffer_most(self, machine4, profiles4):
        model = MPPM(machine4)
        prediction = model.predict(
            [profiles4[name] for name in ("gamess", "hmmer", "soplex", "mcf")]
        )
        slowdown = {p.name: p.slowdown for p in prediction.programs}
        assert slowdown["gamess"] == max(slowdown.values())
        assert slowdown["hmmer"] <= 1.2

    def test_stp_bounded_by_core_count(self, machine4, profiles4):
        model = MPPM(machine4)
        prediction = model.predict(
            [profiles4[name] for name in ("lbm", "mcf", "soplex", "hmmer")]
        )
        assert 0 < prediction.system_throughput <= machine4.num_cores
        assert prediction.average_normalized_turnaround_time >= 1.0

    def test_duplicate_programs_get_distinct_labels_but_same_prediction(
        self, machine4, profiles4
    ):
        model = MPPM(machine4)
        prediction = model.predict(
            [profiles4[name] for name in ("gamess", "gamess", "hmmer", "soplex")]
        )
        gamess_predictions = [p for p in prediction.programs if p.name == "gamess"]
        assert len(gamess_predictions) == 2
        assert gamess_predictions[0].slowdown == pytest.approx(
            gamess_predictions[1].slowdown, rel=1e-9
        )

    def test_history_is_recorded_when_requested(self, machine4, profiles4):
        model = MPPM(machine4, config=MPPMConfig(store_history=True))
        prediction = model.predict([profiles4["gamess"], profiles4["soplex"]][:2])
        assert len(prediction.history) == prediction.iterations
        # Instruction pointers advance monotonically across iterations.
        executed = [record.instructions_executed[0] for record in prediction.history]
        assert executed == sorted(executed)

    def test_predict_mix_uses_profile_library(self, machine4, profiles4):
        model = MPPM(machine4)
        mix = WorkloadMix(programs=("gamess", "hmmer", "soplex", "mcf"))
        prediction = model.predict_mix(mix, profiles4)
        assert {p.name for p in prediction.programs} == set(mix.programs)
        with pytest.raises(MPPMError):
            model.predict_mix(WorkloadMix(programs=("gamess", "unknown")), profiles4)

    def test_predict_many(self, machine4, profiles4):
        model = MPPM(machine4.with_num_cores(2))
        mixes = [WorkloadMix(("gamess", "hmmer")), WorkloadMix(("soplex", "mcf"))]
        predictions = model.predict_many(mixes, profiles4)
        assert len(predictions) == 2

    def test_empty_profile_list_rejected(self, machine4):
        with pytest.raises(MPPMError):
            MPPM(machine4).predict([])

    def test_profile_machine_mismatch_is_detected(self, machine4, profiles4):
        from repro.config import baseline_machine, scaled

        other_machine = scaled(baseline_machine(num_cores=4, llc_config=5), 16)
        with pytest.raises(MPPMError):
            MPPM(other_machine).predict([profiles4["gamess"]] * 4)


class TestModelVariants:
    def test_alternative_contention_models_produce_sane_predictions(self, machine4, profiles4):
        profiles = [profiles4[name] for name in ("gamess", "hmmer", "soplex", "mcf")]
        foa = MPPM(machine4).predict(profiles)
        sdc = MPPM(machine4, contention_model=StackDistanceCompetitionModel()).predict(profiles)
        prob = MPPM(machine4, contention_model=InductiveProbabilityModel()).predict(profiles)
        for prediction in (sdc, prob):
            assert prediction.converged
            for program in prediction.programs:
                assert program.slowdown >= 1.0 - 1e-9
        # All three models agree on the qualitative picture (same ballpark ANTT).
        for prediction in (sdc, prob):
            assert prediction.average_normalized_turnaround_time == pytest.approx(
                foa.average_normalized_turnaround_time, rel=0.6
            )

    def test_literal_figure2_update_underestimates_large_slowdowns(self, machine4, profiles4):
        profiles = [profiles4[name] for name in ("gamess", "gamess", "hmmer", "soplex")]
        default = MPPM(machine4).predict(profiles)
        literal = MPPM(machine4, config=MPPMConfig(literal_figure2_update=True)).predict(profiles)
        assert literal.program("gamess").slowdown <= default.program("gamess").slowdown + 1e-9

    def test_windowed_cpi_variant_runs_and_converges(self, machine4, profiles4):
        model = MPPM(machine4, config=MPPMConfig(use_windowed_cpi=True))
        prediction = model.predict(
            [profiles4[name] for name in ("gamess", "hmmer", "soplex", "mcf")]
        )
        assert prediction.converged

    def test_zero_smoothing_still_converges(self, machine4, profiles4):
        model = MPPM(machine4, config=MPPMConfig(smoothing=0.0))
        prediction = model.predict([profiles4["gamess"], profiles4["soplex"]])
        assert prediction.converged

    def test_explicit_chunk_size_controls_iteration_count(self, machine4, profiles4):
        profiles = [profiles4["gamess"], profiles4["soplex"]]
        trace_length = profiles[0].num_instructions
        coarse = MPPM(machine4, config=MPPMConfig(chunk_instructions=trace_length)).predict(profiles)
        fine = MPPM(machine4, config=MPPMConfig(chunk_instructions=trace_length // 10)).predict(profiles)
        assert fine.iterations > coarse.iterations
        assert coarse.converged and fine.converged

    def test_max_iterations_guard_reports_non_convergence(self, machine4, profiles4):
        model = MPPM(machine4, config=MPPMConfig(max_iterations=2))
        prediction = model.predict(
            [profiles4[name] for name in ("gamess", "hmmer", "soplex", "mcf")]
        )
        assert not prediction.converged
        assert prediction.iterations == 2
