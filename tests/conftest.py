"""Shared fixtures for the test suite.

Tests run against *small* machines and short traces so the whole suite
stays fast: the scaled-down cache hierarchy keeps the same structure
(private L1/L2, shared L3) and the benchmarks keep their heterogeneity,
so every invariant exercised here transfers to the full experiment
scale used by the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.config import baseline_machine, scaled
from repro.profiling import ProfileStore
from repro.workloads import spec_cpu2006_like_suite, small_suite
from repro.workloads.generator import TraceGenerator

from testdefaults import TEST_INSTRUCTIONS, TEST_INTERVAL, TEST_SCALE


@pytest.fixture(scope="session")
def full_suite():
    """The full 29-benchmark suite (specs only, no simulation)."""
    return spec_cpu2006_like_suite()


@pytest.fixture(scope="session")
def tiny_suite():
    """A small heterogeneous suite used for simulation-backed tests."""
    return small_suite(6)


@pytest.fixture(scope="session")
def machine4():
    """A scaled 4-core machine with LLC configuration #1."""
    return scaled(baseline_machine(num_cores=4, llc_config=1), TEST_SCALE)


@pytest.fixture(scope="session")
def machine2():
    """A scaled 2-core machine with LLC configuration #1."""
    return scaled(baseline_machine(num_cores=2, llc_config=1), TEST_SCALE)


@pytest.fixture(scope="session")
def generator():
    """Deterministic trace generator at test scale."""
    return TraceGenerator(num_instructions=TEST_INSTRUCTIONS, seed=0)


@pytest.fixture(scope="session")
def store():
    """A profile store at test scale, shared across the whole session."""
    return ProfileStore(
        num_instructions=TEST_INSTRUCTIONS, interval_instructions=TEST_INTERVAL, seed=0
    )


@pytest.fixture(scope="session")
def profiles4(store, tiny_suite, machine4):
    """Profiles of the tiny suite on the 4-core machine (session-cached)."""
    return {spec.name: store.get_profile(spec, machine4) for spec in tiny_suite}


@pytest.fixture(scope="session")
def gamess_trace(generator, full_suite):
    """The generated memory trace of the most sharing-sensitive benchmark."""
    return generator.generate(full_suite["gamess"])


@pytest.fixture(scope="session")
def hmmer_trace(generator, full_suite):
    """The generated memory trace of a cache-friendly benchmark."""
    return generator.generate(full_suite["hmmer"])
