"""Tests for the ``learned:`` and ``interp:`` predictor families.

The contract pinned here: both families canonicalise like ``hybrid:``
(shorthand, parameter validation, structured errors) and register
through the one spec table; ``learned:n=N,seed=S`` is a deterministic
pure function of its recipe, trains on detailed runs pulled from the
engine's ResultCache (a warm cache trains with *zero* new reference
simulations) and never predicts a speed-up; ``interp:anchors=A+B`` is
exact at its anchor configurations, accurate against ``detailed`` at
interior configurations, and rejects machines outside the Table 2
design space instead of extrapolating.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.predictors import (
    DEFAULT_INTERP_ANCHORS,
    DEFAULT_LEARNED_MIXES,
    DEFAULT_LEARNED_SEED,
    PredictorError,
    available_predictors,
    canonical_spec,
    interp_anchors,
    learned_params,
    make_predictor,
    predictor_requires_traces,
)
from repro.workloads import small_suite

CONFIG = ExperimentConfig(scale=16, num_instructions=20_000, interval_instructions=1_000)

#: Small training recipe so tests stay fast (5-benchmark suite).
LEARNED = "learned:n=6,seed=0"


def make_setup(**kwargs) -> ExperimentSetup:
    return ExperimentSetup(config=CONFIG, suite=small_suite(5), **kwargs)


@pytest.fixture(scope="module")
def setup():
    return make_setup()


@pytest.fixture(scope="module")
def machine(setup):
    return setup.machine(num_cores=2)


@pytest.fixture(scope="module")
def mixes(setup):
    return setup.mixes(2, 4, seed=7)


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------


class TestSpecs:
    def test_learned_shorthand_and_parameters(self):
        default = f"learned:n={DEFAULT_LEARNED_MIXES},seed={DEFAULT_LEARNED_SEED}"
        assert canonical_spec("learned") == default
        assert canonical_spec(" LEARNED:seed=3,n=8 ") == "learned:n=8,seed=3"
        assert learned_params("learned") == (DEFAULT_LEARNED_MIXES, DEFAULT_LEARNED_SEED)
        assert learned_params("learned:n=8,seed=3") == (8, 3)

    def test_interp_shorthand_and_parameters(self):
        low, high = DEFAULT_INTERP_ANCHORS
        assert canonical_spec("interp") == f"interp:anchors={low}+{high}"
        # Anchor order is normalised.
        assert canonical_spec("interp:anchors=6+2") == "interp:anchors=2+6"
        assert interp_anchors("interp") == DEFAULT_INTERP_ANCHORS
        assert interp_anchors("interp:anchors=3+5") == (3, 5)

    @pytest.mark.parametrize(
        "bad",
        [
            "learned:n=1",
            "learned:n=x",
            "learned:seed=-1",
            "learned:k=4",
            "learned:n=4,n=5",
            "interp:anchors=1+1",
            "interp:anchors=0+6",
            "interp:anchors=1+7",
            "interp:anchors=1",
            "interp:anchors=a+b",
            "interp:span=1+6",
        ],
    )
    def test_malformed_specs_are_rejected(self, bad):
        with pytest.raises(PredictorError):
            canonical_spec(bad)

    def test_both_families_are_registered(self, setup):
        listed = available_predictors()
        assert f"learned:n={DEFAULT_LEARNED_MIXES},seed={DEFAULT_LEARNED_SEED}" in listed
        low, high = DEFAULT_INTERP_ANCHORS
        assert f"interp:anchors={low}+{high}" in listed
        for spec in (LEARNED, "interp"):
            predictor = make_predictor(spec, setup)
            assert predictor.spec == canonical_spec(spec)
            assert predictor.describe()
            # Both run the detailed simulator, so both need traces.
            assert predictor_requires_traces(spec)


# ---------------------------------------------------------------------------
# learned: behaviour
# ---------------------------------------------------------------------------


class TestLearnedPredictor:
    def test_predictions_are_deterministic_and_tagged(self, setup, machine, mixes):
        first = make_predictor(LEARNED, setup).predict(mixes[0], machine)
        second = make_predictor(LEARNED, setup).predict(mixes[0], machine)
        assert first == second
        assert first.predictor == LEARNED
        assert first.converged and first.iterations == 0

    def test_never_predicts_a_speedup(self, setup, machine, mixes):
        predictor = make_predictor(LEARNED, setup)
        for mix in mixes:
            prediction = predictor.predict(mix, machine)
            assert all(slowdown >= 1.0 for slowdown in prediction.slowdowns)
            assert [p.name for p in prediction.programs] == list(mix.programs)

    def test_trains_from_the_result_cache(self, tmp_path, mixes):
        # First setup computes the training runs and persists them;
        # the second trains entirely from cache: zero new reference
        # simulations, bit-identical model output.
        cold = make_setup(cache_dir=tmp_path)
        machine = cold.machine(num_cores=2)
        first = cold.predict(mixes[0], machine, predictor=LEARNED)
        assert cold.reference_runs() > 0
        warm = make_setup(cache_dir=tmp_path)
        second = warm.predict(
            mixes[0], warm.machine(num_cores=2), predictor=LEARNED
        )
        assert warm.reference_runs() == 0
        assert second == first

    def test_training_runs_share_the_detailed_cache_entries(self, tmp_path):
        # A later plain-detailed sweep of the training mixes finds the
        # entries the learned predictor stored (shared content keys).
        setup = make_setup(cache_dir=tmp_path)
        machine = setup.machine(num_cores=2)
        mix = setup.mixes(2, 1, seed=9)[0]
        setup.predict(mix, machine, predictor=LEARNED)
        stores = setup.engine.cache.stores
        training = setup.mixes(2, 6, seed=0, unique=False)
        setup.simulate_many(training, machine)
        # Every training pair was already cached; nothing new stored.
        assert setup.engine.cache.stores == stores


# ---------------------------------------------------------------------------
# interp: behaviour
# ---------------------------------------------------------------------------


class TestInterpolatedPredictor:
    def test_anchor_configurations_are_exact(self, setup, mixes):
        space = setup.design_space(2)
        for anchor in DEFAULT_INTERP_ANCHORS:
            anchor_machine = space[anchor - 1]
            detailed = setup.predict(mixes[0], anchor_machine, predictor="detailed")
            interp = setup.predict(mixes[0], anchor_machine, predictor="interp")
            assert interp.predictor == "interp:anchors=1+6"
            assert [p.predicted_cpi for p in interp.programs] == [
                p.predicted_cpi for p in detailed.programs
            ]

    def test_interior_configurations_track_detailed(self, setup, mixes):
        # Two detailed anchors per mix predict the other four configs
        # within a 10% per-program CPI envelope at test scale.
        space = setup.design_space(2)
        for config in (2, 3, 4, 5):
            target = space[config - 1]
            for mix in mixes[:2]:
                detailed = setup.predict(mix, target, predictor="detailed")
                interp = setup.predict(mix, target, predictor="interp")
                for ours, reference in zip(interp.programs, detailed.programs):
                    error = abs(ours.predicted_cpi - reference.predicted_cpi)
                    assert error / reference.predicted_cpi < 0.10

    def test_alternate_anchor_pairs_are_honoured(self, setup, mixes):
        space = setup.design_space(2)
        detailed = setup.predict(mixes[0], space[2], predictor="detailed")
        interp = setup.predict(mixes[0], space[2], predictor="interp:anchors=3+5")
        # Config #3 is an anchor of this pair: exact again.
        assert [p.predicted_cpi for p in interp.programs] == [
            p.predicted_cpi for p in detailed.programs
        ]

    def test_machines_outside_the_design_space_are_rejected(self, setup, machine, mixes):
        odd = replace(machine, llc=replace(machine.llc, size_bytes=machine.llc.size_bytes * 3))
        with pytest.raises(PredictorError) as excinfo:
            setup.predict(mixes[0], odd, predictor="interp")
        assert "design" in str(excinfo.value)

    def test_engine_sweep_agrees_with_single_predictions(self, setup, mixes):
        space = setup.design_space(2)
        swept = setup.predict_many(mixes, space[3], predictor="interp")
        singles = [
            setup.predict(mix, space[3], predictor="interp") for mix in mixes
        ]
        assert swept == singles
