"""Unit and property tests for stack-distance counters and profiling.

The key property test here ties the two halves of the substrate
together: for any access stream, the misses predicted by the
stack-distance counters at associativity A must equal the misses of an
actual A-way LRU cache with the same set count (the classic inclusion
property of LRU that both MPPM and the FOA contention model rely on).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.set_associative import SetAssociativeCache
from repro.caches.stack_distance import (
    StackDistanceCounters,
    StackDistanceError,
    StackDistanceProfiler,
)
from repro.config.cache_config import CacheConfig


class TestStackDistanceCounters:
    def test_record_routes_to_the_right_counter(self):
        counters = StackDistanceCounters(associativity=4)
        counters.record(1)
        counters.record(4)
        counters.record(5)  # beyond associativity -> miss
        counters.record(0)  # cold -> miss
        assert counters.hits == 2
        assert counters.misses == 2
        assert counters.total_accesses == 4
        assert counters.miss_rate == pytest.approx(0.5)

    def test_add_and_scaled(self):
        a = StackDistanceCounters(associativity=2, counts=np.array([1.0, 2.0, 3.0]))
        b = StackDistanceCounters(associativity=2, counts=np.array([4.0, 5.0, 6.0]))
        total = a.add(b)
        assert np.allclose(total.counts, [5.0, 7.0, 9.0])
        assert np.allclose(a.scaled(0.5).counts, [0.5, 1.0, 1.5])
        with pytest.raises(StackDistanceError):
            a.add(StackDistanceCounters(associativity=3))
        with pytest.raises(StackDistanceError):
            a.scaled(-1.0)

    def test_sum_of_counters(self):
        parts = [
            StackDistanceCounters(associativity=2, counts=np.array([1.0, 0.0, 1.0]))
            for _ in range(3)
        ]
        total = StackDistanceCounters.sum(parts, associativity=2)
        assert total.total_accesses == 6
        assert total.misses == 3

    def test_misses_for_fewer_ways_is_monotonic(self):
        counters = StackDistanceCounters(
            associativity=4, counts=np.array([10.0, 5.0, 3.0, 2.0, 7.0])
        )
        misses = [counters.misses_for_ways(w) for w in range(5)]
        assert misses[0] == counters.total_accesses
        assert misses[4] == counters.misses
        assert all(a >= b for a, b in zip(misses, misses[1:]))
        with pytest.raises(StackDistanceError):
            counters.misses_for_ways(5)

    def test_effective_ways_interpolates(self):
        counters = StackDistanceCounters(
            associativity=4, counts=np.array([10.0, 5.0, 3.0, 2.0, 7.0])
        )
        at_2 = counters.misses_for_ways(2)
        at_3 = counters.misses_for_ways(3)
        halfway = counters.misses_for_effective_ways(2.5)
        assert min(at_2, at_3) <= halfway <= max(at_2, at_3)
        assert halfway == pytest.approx((at_2 + at_3) / 2)
        # Out-of-range values clamp sensibly.
        assert counters.misses_for_effective_ways(10.0) == counters.misses
        assert counters.misses_for_effective_ways(-1.0) == counters.total_accesses

    def test_reduced_associativity_folds_deep_counters(self):
        counters = StackDistanceCounters(
            associativity=4, counts=np.array([10.0, 5.0, 3.0, 2.0, 7.0])
        )
        reduced = counters.reduced_associativity(2)
        assert reduced.associativity == 2
        assert reduced.total_accesses == counters.total_accesses
        assert reduced.misses == pytest.approx(3.0 + 2.0 + 7.0)
        with pytest.raises(StackDistanceError):
            counters.reduced_associativity(0)
        with pytest.raises(StackDistanceError):
            counters.reduced_associativity(5)

    def test_validation_of_counter_vectors(self):
        with pytest.raises(StackDistanceError):
            StackDistanceCounters(associativity=0)
        with pytest.raises(StackDistanceError):
            StackDistanceCounters(associativity=2, counts=np.array([1.0, 2.0]))
        with pytest.raises(StackDistanceError):
            StackDistanceCounters(associativity=2, counts=np.array([1.0, -2.0, 0.0]))

    def test_equality_and_copy(self):
        counters = StackDistanceCounters(associativity=2, counts=np.array([1.0, 2.0, 3.0]))
        assert counters == counters.copy()
        assert counters != StackDistanceCounters(associativity=2)


class TestStackDistanceProfiler:
    def test_distances_follow_lru_positions(self):
        profiler = StackDistanceProfiler(num_sets=1, associativity=4)
        assert profiler.access(10) == 0  # cold
        assert profiler.access(11) == 0
        assert profiler.access(10) == 2  # one line accessed in between
        assert profiler.access(10) == 1  # immediately reused

    def test_counters_accumulate_and_snapshot_resets_them(self):
        profiler = StackDistanceProfiler(num_sets=2, associativity=2)
        profiler.profile_stream([0, 1, 0, 2, 0])
        snapshot = profiler.snapshot_and_reset_counters()
        assert snapshot.total_accesses == 5
        assert profiler.counters.total_accesses == 0
        # The LRU stacks survive the snapshot: the next access to a known
        # line is not a cold miss.
        assert profiler.access(0) > 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(StackDistanceError):
            StackDistanceProfiler(num_sets=0, associativity=4)

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=300),
        num_sets=st.sampled_from([1, 2, 4]),
        associativity=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_sdc_misses_match_real_lru_cache(self, accesses, num_sets, associativity):
        """Mattson's stack property: SDC-predicted misses == simulated LRU misses."""
        profiler = StackDistanceProfiler(num_sets=num_sets, associativity=associativity)
        config = CacheConfig(
            name="ref", size_bytes=num_sets * associativity * 64, associativity=associativity
        )
        cache = SetAssociativeCache(config)
        for line in accesses:
            profiler.access(line)
            cache.access(line)
        assert profiler.counters.misses == cache.misses
        assert profiler.counters.hits == cache.hits

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_reduced_associativity_matches_directly_profiled_smaller_cache(self, accesses):
        """Deriving an SDC for fewer ways equals profiling the smaller cache directly."""
        wide = StackDistanceProfiler(num_sets=2, associativity=8)
        narrow = StackDistanceProfiler(num_sets=2, associativity=4)
        for line in accesses:
            wide.access(line)
            narrow.access(line)
        derived = wide.counters.reduced_associativity(4)
        assert np.allclose(derived.counts, narrow.counters.counts)
