"""Unit and property tests for STP, ANTT and prediction-error metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    absolute_relative_error,
    antt,
    mean_absolute_relative_error,
    mix_performance_from_cpis,
    per_program_slowdowns,
    prediction_errors,
    stp,
)
from repro.metrics.errors import ErrorMetricError
from repro.metrics.throughput import MetricError


class TestSTPAndANTT:
    def test_known_values(self):
        single = [1.0, 2.0]
        multi = [2.0, 2.0]
        # Program 1: progress 0.5, slowdown 2; program 2: progress 1, slowdown 1.
        assert stp(single, multi) == pytest.approx(1.5)
        assert antt(single, multi) == pytest.approx(1.5)
        assert per_program_slowdowns(single, multi) == pytest.approx([2.0, 1.0])

    def test_no_contention_gives_ideal_metrics(self):
        single = [0.8, 1.2, 2.0]
        assert stp(single, single) == pytest.approx(3.0)
        assert antt(single, single) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(MetricError):
            stp([1.0], [1.0, 2.0])
        with pytest.raises(MetricError):
            antt([], [])
        with pytest.raises(MetricError):
            stp([1.0, -1.0], [1.0, 1.0])

    @given(
        single=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=8),
        factors=st.lists(st.floats(min_value=1.0, max_value=5.0), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds_hold_for_any_slowdowns(self, single, factors):
        n = min(len(single), len(factors))
        single = single[:n]
        multi = [cpi * factor for cpi, factor in zip(single, factors[:n])]
        # Slowdowns >= 1 imply: 0 < STP <= n and ANTT >= 1.
        assert 0 < stp(single, multi) <= n + 1e-9
        assert antt(single, multi) >= 1.0 - 1e-9

    @given(single=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_stp_and_antt_are_reciprocal_for_uniform_slowdown(self, single):
        multi = [cpi * 2.0 for cpi in single]
        assert stp(single, multi) == pytest.approx(len(single) / 2.0)
        assert antt(single, multi) == pytest.approx(2.0)


class TestMixPerformance:
    def test_wraps_the_raw_metrics(self):
        performance = mix_performance_from_cpis(
            ["a", "b"], [1.0, 1.0], [1.5, 3.0]
        )
        assert performance.stp == pytest.approx(1.0 / 1.5 + 1.0 / 3.0)
        assert performance.antt == pytest.approx((1.5 + 3.0) / 2)
        assert performance.num_programs == 2
        assert performance.worst_program() == ("b", pytest.approx(3.0))

    def test_label_length_must_match(self):
        with pytest.raises(MetricError):
            mix_performance_from_cpis(["a"], [1.0, 2.0], [1.0, 2.0])


class TestErrorMetrics:
    def test_absolute_relative_error(self):
        assert absolute_relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert absolute_relative_error(0.9, 1.0) == pytest.approx(0.1)
        with pytest.raises(ErrorMetricError):
            absolute_relative_error(1.0, 0.0)

    def test_prediction_errors_and_mean(self):
        errors = prediction_errors([1.0, 2.0], [1.0, 4.0])
        assert errors == pytest.approx([0.0, 0.5])
        assert mean_absolute_relative_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(0.25)

    def test_prediction_errors_validate_lengths(self):
        with pytest.raises(ErrorMetricError):
            prediction_errors([1.0], [1.0, 2.0])
        with pytest.raises(ErrorMetricError):
            prediction_errors([], [])
