"""Unit tests for the shared-LLC multi-core reference simulator."""

import pytest

from repro.simulators.multi_core import MultiCoreSimulationError, MultiCoreSimulator


def _traces(store, suite, machine, names):
    return [store.get_llc_trace(suite[name], machine) for name in names]


class TestMultiCoreSimulator:
    def test_single_core_run_matches_isolated_execution(self, store, tiny_suite, machine4):
        """With one core there is no sharing, so CPI_MC == CPI_SC exactly."""
        machine1 = machine4.with_num_cores(1)
        trace = store.get_llc_trace(tiny_suite["gamess"], machine4)
        result = MultiCoreSimulator(machine1).run([trace])
        program = result.programs[0]
        assert program.cpi == pytest.approx(program.isolated_cpi, rel=1e-9)
        assert program.slowdown == pytest.approx(1.0, rel=1e-9)
        assert result.system_throughput == pytest.approx(1.0, rel=1e-9)
        assert result.average_normalized_turnaround_time == pytest.approx(1.0, rel=1e-9)

    def test_core_count_must_match_number_of_programs(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "hmmer"])
        with pytest.raises(MultiCoreSimulationError):
            MultiCoreSimulator(machine4).run(traces)

    def test_sharing_never_speeds_programs_up(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "mcf", "soplex", "lbm"])
        result = MultiCoreSimulator(machine4).run(traces)
        for program in result.programs:
            assert program.slowdown >= 1.0 - 1e-9
        assert result.system_throughput <= machine4.num_cores + 1e-9
        assert result.average_normalized_turnaround_time >= 1.0 - 1e-9

    def test_duplicate_copies_do_not_share_data(self, store, tiny_suite, machine4):
        """Two copies of the same program must contend, not prefetch for each other."""
        machine2 = machine4.with_num_cores(2)
        gamess = store.get_llc_trace(tiny_suite["gamess"], machine4)
        result = MultiCoreSimulator(machine2).run([gamess, gamess])
        for program in result.programs:
            assert program.slowdown > 1.05

    def test_llc_sensitive_program_suffers_more_than_cache_friendly_one(
        self, store, tiny_suite, machine4
    ):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "gamess", "hmmer", "soplex"])
        result = MultiCoreSimulator(machine4).run(traces)
        gamess_slowdown = max(
            program.slowdown for program in result.programs if program.name == "gamess"
        )
        hmmer_slowdown = result.program("hmmer").slowdown
        assert gamess_slowdown > 1.5
        assert hmmer_slowdown < 1.2
        assert gamess_slowdown > hmmer_slowdown

    def test_results_are_deterministic(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "hmmer", "soplex", "mcf"])
        first = MultiCoreSimulator(machine4).run(traces)
        second = MultiCoreSimulator(machine4).run(traces)
        assert [p.cpi for p in first.programs] == [p.cpi for p in second.programs]
        assert first.total_llc_misses == second.total_llc_misses

    def test_every_program_completes_at_least_one_pass(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "hmmer", "soplex", "lbm"])
        result = MultiCoreSimulator(machine4).run(traces)
        for program in result.programs:
            assert program.passes_completed >= 1
            assert program.llc_accesses_first_pass > 0
            assert (
                program.llc_hits_first_pass + program.llc_misses_first_pass
                == program.llc_accesses_first_pass
            )
        # Fast programs wrap around while the slowest finishes (FAME-style).
        assert max(program.passes_completed for program in result.programs) >= 1

    def test_stats_accessors(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "hmmer", "soplex", "mcf"])
        result = MultiCoreSimulator(machine4).run(traces)
        assert set(result.per_program_cpi) == {0, 1, 2, 3}
        assert len(result.slowdowns) == 4
        with pytest.raises(KeyError):
            result.program("not-there")
        assert result.total_llc_accesses >= result.total_llc_misses > 0

    def test_more_cores_increase_pressure_on_a_sensitive_program(
        self, store, tiny_suite, machine4
    ):
        gamess = store.get_llc_trace(tiny_suite["gamess"], machine4)
        soplex = store.get_llc_trace(tiny_suite["soplex"], machine4)
        mcf = store.get_llc_trace(tiny_suite["mcf"], machine4)
        hmmer = store.get_llc_trace(tiny_suite["hmmer"], machine4)
        two_core = MultiCoreSimulator(machine4.with_num_cores(2)).run([gamess, soplex])
        four_core = MultiCoreSimulator(machine4).run([gamess, soplex, mcf, hmmer])
        assert four_core.program("gamess").slowdown >= two_core.program("gamess").slowdown - 1e-6


class TestReadyQueueVariants:
    def test_invalid_ready_queue_rejected(self, machine4):
        with pytest.raises(MultiCoreSimulationError):
            MultiCoreSimulator(machine4, ready_queue="sorted-list")

    def test_heap_and_scan_are_bit_identical_on_an_eight_core_mix(
        self, store, tiny_suite, machine4
    ):
        """The heapq ready queue must reproduce the linear scan exactly.

        Eight cores with duplicated programs maximise ready-time ties,
        which is where the two orderings could diverge; dataclass
        equality compares every cycle count exactly.
        """
        machine8 = machine4.with_num_cores(8)
        names = ["gamess", "soplex", "mcf", "hmmer", "gamess", "soplex", "mcf", "hmmer"]
        traces = _traces(store, tiny_suite, machine4, names)
        heap_result = MultiCoreSimulator(machine8, ready_queue="heap").run(traces)
        scan_result = MultiCoreSimulator(machine8, ready_queue="scan").run(traces)
        assert heap_result == scan_result

    def test_serialisation_roundtrip_is_exact(self, store, tiny_suite, machine4):
        traces = _traces(store, tiny_suite, machine4, ["gamess", "hmmer", "soplex", "mcf"])
        result = MultiCoreSimulator(machine4).run(traces)
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        from repro.simulators.multi_core import MultiCoreRunResult

        assert MultiCoreRunResult.from_dict(payload) == result
