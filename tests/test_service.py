"""Tests for the prediction service (HTTP layer, batching, endpoints).

A single live service (on a background thread, ephemeral port) is
shared module-wide; individual tests talk to it with the stdlib asyncio
client and assert on the service's own stats/caches where the wire
format can't show the behaviour (dedup, zero-recompute warm serving).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments import ExperimentSetup
from repro.predictors import available_predictors
from repro.service import (
    LatencyTracker,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceStats,
    ServiceThread,
)
from repro.service.http import HttpError, Request
from repro.service.payloads import models_payload, prediction_payload, workloads_payload
from repro.workloads import WorkloadMix, make_workload

#: Small workload + short traces keep the whole module fast; the window
#: is generous so concurrent submissions reliably share one batch.
WORKLOAD = "suite:spec29/scaled@5"
CONFIG = ServiceConfig(workload=WORKLOAD, instructions=20_000, window=0.02)

NAMES = make_workload(WORKLOAD).suite().names


@pytest.fixture(scope="module")
def live():
    with ServiceThread(CONFIG) as thread:
        yield thread


def call(live, coro_factory):
    """Run one async client interaction against the live service."""

    async def main():
        async with ServiceClient(live.host, live.port) as client:
            return await coro_factory(client)

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# HTTP plumbing (no live server needed)
# ---------------------------------------------------------------------------


class TestRequestParsing:
    def test_json_rejects_empty_body(self):
        with pytest.raises(HttpError) as excinfo:
            Request(method="POST", path="/predict").json()
        assert excinfo.value.status == 400

    def test_json_rejects_malformed_body(self):
        request = Request(method="POST", path="/predict", body=b"{not json")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        assert "malformed JSON" in excinfo.value.message

    def test_json_rejects_non_object_body(self):
        request = Request(method="POST", path="/predict", body=b"[1, 2]")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert "JSON object" in excinfo.value.message


class TestLatencyTracker:
    def test_percentiles_are_nearest_rank(self):
        tracker = LatencyTracker()
        for ms in range(1, 101):  # 1ms .. 100ms
            tracker.record(ms / 1000.0)
        summary = tracker.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.0)
        assert summary["p95"] == pytest.approx(95.0)
        assert summary["p99"] == pytest.approx(99.0)

    def test_empty_tracker_reports_zeros(self):
        assert LatencyTracker().summary() == {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }


class TestServiceStats:
    def test_per_predictor_batches_accumulate(self):
        stats = ServiceStats()
        assert stats.snapshot()["predictors"] == {}
        stats.record_predictor_batch("mppm:foa", size=3, seconds=0.25)
        stats.record_predictor_batch("mppm:foa", size=1, seconds=0.05)
        stats.record_predictor_batch("baseline:one-shot", size=2, seconds=0.01)
        predictors = stats.snapshot()["predictors"]
        assert list(predictors) == ["baseline:one-shot", "mppm:foa"]  # sorted
        entry = predictors["mppm:foa"]
        assert entry["batches"] == 2
        assert entry["items"] == 4
        assert entry["max_size"] == 3
        assert entry["mean_size"] == 2.0
        assert entry["solve_time_ms"] == pytest.approx(300.0)


# ---------------------------------------------------------------------------
# Introspection endpoints
# ---------------------------------------------------------------------------


class TestIntrospection:
    def test_healthz_reports_preload(self, live):
        payload = call(live, lambda c: c.healthz())
        assert payload["status"] == "ok"
        assert payload["preloaded_profiles"] == len(NAMES)
        assert payload["uptime_seconds"] > 0

    def test_index_lists_endpoints(self, live):
        status, payload = call(live, lambda c: c.request("GET", "/"))
        assert status == 200
        assert "POST /predict" in payload["endpoints"]

    def test_models_matches_the_registry_payload(self, live):
        assert call(live, lambda c: c.models()) == models_payload()

    def test_workloads_matches_the_registry_payload(self, live):
        assert call(live, lambda c: c.workloads()) == workloads_payload()

    def test_stats_counts_requests_and_exposes_engine_cache(self, live):
        call(live, lambda c: c.healthz())
        payload = call(live, lambda c: c.stats())
        assert payload["requests"]["GET /healthz"] >= 1
        assert set(payload["engine_cache"]) == {"entries", "hits", "misses", "stores", "loaded"}
        assert payload["config"]["workload"] == WORKLOAD

    def test_unknown_path_is_404(self, live):
        status, payload = call(live, lambda c: c.request("GET", "/nope"))
        assert status == 404 and "unknown path" in payload["error"]

    def test_wrong_method_is_405(self, live):
        status, _ = call(live, lambda c: c.request("GET", "/predict"))
        assert status == 405
        status, _ = call(live, lambda c: c.request("POST", "/models"))
        assert status == 405


# ---------------------------------------------------------------------------
# /predict: correctness
# ---------------------------------------------------------------------------


def reference_setup() -> ExperimentSetup:
    return ExperimentSetup(config=CONFIG.experiment_config(), workload=WORKLOAD)


class TestPredict:
    def test_every_predictor_spec_round_trips(self, live):
        """Each registry spec serves a structurally complete prediction."""
        mix = NAMES[:2]

        async def run_all(client):
            return {
                spec: await client.predict(mix=mix, predictor=spec)
                for spec in available_predictors()
            }

        responses = call(live, run_all)
        for spec, response in responses.items():
            assert response["predictor"] == spec or spec == "mppm"
            prediction = response["prediction"]
            assert prediction["stp"] > 0
            assert prediction["antt"] >= 1.0 or spec == "baseline:no-contention"
            assert len(prediction["programs"]) == len(mix)

    def test_served_prediction_is_bit_identical_to_the_batch_path(self, live):
        """The service is a transport: same specs, same bits as `repro predict`."""
        mix = [NAMES[0], NAMES[2], NAMES[3], NAMES[1]]
        setup = reference_setup()
        try:
            for spec in ("mppm:foa", "baseline:one-shot", "detailed"):
                served = call(
                    live, lambda c, s=spec: c.predict(mix=mix, predictor=s, machine=3)
                )
                machine = setup.machine(num_cores=len(mix), llc_config=3)
                expected = setup.predict(
                    WorkloadMix(programs=tuple(mix)), machine, predictor=spec
                )
                # Through JSON and back: repr round-trip of floats is exact.
                assert served["prediction"] == json.loads(
                    json.dumps(prediction_payload(expected))
                )
        finally:
            setup.close()

    def test_mixes_field_serves_a_batch_in_order(self, live):
        rows = [[NAMES[0], NAMES[1]], [NAMES[2], NAMES[3], NAMES[4]]]
        response = call(live, lambda c: c.predict(mixes=rows))
        assert response["count"] == 2
        assert "prediction" not in response  # batch responses have no single alias
        assert response["machine"]["cores"] == [2, 3]
        # Mixes echo in sorted (canonical) program order.
        assert response["mixes"] == [sorted(row) for row in rows]

    def test_sample_field_matches_the_workload_api(self, live):
        response = call(
            live,
            lambda c: c.predict(sample={"programs": 2, "count": 3, "seed": 9}),
        )
        setup = reference_setup()
        try:
            expected = setup.mixes(2, 3, seed=9)
        finally:
            setup.close()
        assert response["mixes"] == [list(mix.programs) for mix in expected]

    def test_sample_with_category_uses_current_practice_sampling(self, live):
        response = call(
            live,
            lambda c: c.predict(
                sample={"programs": 2, "count": 2, "seed": 5, "category": "MEM"}
            ),
        )
        setup = reference_setup()
        try:
            expected = setup.mixes(2, 2, seed=5, category="MEM")
            classes = setup.classification()
            for row in response["mixes"]:
                for name in row:
                    assert classes[name].value == "MEM"
        finally:
            setup.close()
        assert response["mixes"] == [list(mix.programs) for mix in expected]

    def test_other_workloads_are_served_lazily(self, live):
        response = call(
            live,
            lambda c: c.predict(
                mix=["svc-auth", "svc-kvcache"], workload="service:n=4,seed=0"
            ),
        )
        assert response["workload"] == "service:n=4,seed=0"
        assert response["prediction"]["stp"] > 0


# ---------------------------------------------------------------------------
# /predict: structured failures
# ---------------------------------------------------------------------------


class TestPredictErrors:
    def expect_400(self, live, payload, *needles):
        status, body = call(live, lambda c: c.request("POST", "/predict", payload))
        assert status == 400, body
        for needle in needles:
            assert needle in body["error"], body["error"]

    def test_unknown_predictor_carries_the_registry_text(self, live):
        self.expect_400(
            live,
            {"mix": NAMES[:2], "predictor": "oracle"},
            "unknown predictor spec",
            "available predictors",
        )

    def test_unknown_workload_carries_the_registry_text(self, live):
        self.expect_400(
            live, {"mix": NAMES[:2], "workload": "oracle"}, "suite:spec29"
        )

    def test_unknown_benchmark_lists_the_valid_names(self, live):
        self.expect_400(
            live, {"mix": ["quake", NAMES[0]]}, "unknown benchmark", NAMES[0]
        )

    def test_exactly_one_mix_source_is_required(self, live):
        self.expect_400(live, {}, "exactly one of")
        self.expect_400(
            live, {"mix": NAMES[:2], "sample": {"programs": 2}}, "exactly one of"
        )

    def test_unknown_top_level_field_is_rejected(self, live):
        self.expect_400(live, {"mix": NAMES[:2], "cores": 4}, "unknown field")

    def test_bad_machine_specs_are_rejected(self, live):
        self.expect_400(live, {"mix": NAMES[:2], "machine": "turbo"}, "unknown machine spec")
        self.expect_400(live, {"mix": NAMES[:2], "machine": 9}, "unknown LLC configuration")
        self.expect_400(
            live,
            {"mix": NAMES[:2], "machine": {"llc_config": 1, "cores": 4}},
            "must match the mix size",
        )

    def test_bad_category_carries_the_valid_choices(self, live):
        self.expect_400(
            live,
            {"sample": {"programs": 2, "count": 1, "category": "IO"}},
            "valid categories",
        )


# ---------------------------------------------------------------------------
# perf: workloads over the wire
# ---------------------------------------------------------------------------


class TestPerfWorkloads:
    """Fitted-trace workloads served like any other registry family."""

    @pytest.fixture(scope="class")
    def perf_spec(self, tmp_path_factory):
        from pathlib import Path

        from repro.ingest import write_bundle
        from repro.ingest.workload import ingest_to_bundle

        fixture = Path(__file__).parent / "data" / "perf_ingest_samples.csv"
        workload, _ = ingest_to_bundle(fixture)
        out = tmp_path_factory.mktemp("svc-perf") / "bundle"
        write_bundle(workload, out)
        return f"perf:{out}"

    def test_perf_workload_is_served(self, live, perf_spec):
        response = call(
            live,
            lambda c: c.predict(mix=["pmu-c0", "pmu-c1"], workload=perf_spec),
        )
        # The echoed workload is the canonical, digest-qualified spec.
        assert response["workload"].startswith(perf_spec + ",digest=")
        assert response["prediction"]["stp"] > 0
        assert [p["name"] for p in response["prediction"]["programs"]] == [
            "pmu-c0",
            "pmu-c1",
        ]

    def test_served_perf_prediction_matches_the_batch_path(self, live, perf_spec):
        served = call(
            live, lambda c: c.predict(mix=["pmu-c0", "pmu-c1"], workload=perf_spec)
        )
        setup = ExperimentSetup(config=CONFIG.experiment_config(), workload=perf_spec)
        try:
            machine = setup.machine(num_cores=2)
            expected = setup.predict(
                WorkloadMix(programs=("pmu-c0", "pmu-c1")), machine
            )
        finally:
            setup.close()
        assert served["prediction"] == json.loads(
            json.dumps(prediction_payload(expected))
        )

    def test_malformed_perf_samples_are_a_400(self, live, tmp_path):
        from pathlib import Path

        bad = tmp_path / "bad.csv"
        bad.write_text("core,timestamp\n0,1.0\n")
        machine_json = (
            Path(__file__).parent / "data" / "perf_ingest_samples.machine.json"
        )
        (tmp_path / "machine.json").write_text(machine_json.read_text())
        status, body = call(
            live,
            lambda c: c.request(
                "POST", "/predict", {"mix": ["pmu-c0"], "workload": f"perf:{bad}"}
            ),
        )
        assert status == 400, body
        assert "missing" in body["error"]

    def test_stale_digest_is_a_400(self, live, perf_spec):
        status, body = call(
            live,
            lambda c: c.request(
                "POST",
                "/predict",
                {"mix": ["pmu-c0"], "workload": f"{perf_spec},digest=000000000000"},
            ),
        )
        assert status == 400, body
        assert "changed on disk" in body["error"]

    def test_workloads_payload_lists_the_perf_family(self, live):
        payload = call(live, lambda c: c.workloads())
        assert any(row["spec"].startswith("perf:") for row in payload["workloads"])

    def test_malformed_json_body_is_a_structured_400(self, live):
        async def post_garbage(client):
            return await client.request("POST", "/predict", payload=None)

        # An empty body is the simplest malformed case the client can send.
        status, body = call(live, post_garbage)
        assert status == 400 and "JSON object" in body["error"]

    def test_client_error_carries_status_and_payload(self, live):
        with pytest.raises(ServiceClientError) as excinfo:
            call(live, lambda c: c.predict(mix=["quake"]))
        assert excinfo.value.status == 400
        assert "unknown benchmark" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Batching, dedup and memoisation
# ---------------------------------------------------------------------------


class TestBatchingAndCaching:
    def test_warm_requests_recompute_nothing(self, live):
        mix = [NAMES[1], NAMES[3]]
        call(live, lambda c: c.predict(mix=mix, predictor="mppm:sdc"))
        computed_before = live.service.stats.predictions_computed
        hits_before = live.service.engine.cache_stats()["hits"]
        repeat = call(live, lambda c: c.predict(mix=mix, predictor="mppm:sdc"))
        assert live.service.stats.predictions_computed == computed_before
        assert live.service.engine.cache_stats()["hits"] > hits_before
        assert repeat["prediction"]["stp"] > 0

    def test_concurrent_identical_requests_share_one_computation(self, live):
        mix = [NAMES[2], NAMES[4]]
        stats = live.service.stats
        deduped_before = stats.inflight_deduped
        computed_before = stats.predictions_computed

        async def storm():
            clients = [ServiceClient(live.host, live.port) for _ in range(4)]
            try:
                for client in clients:
                    await client.connect()
                return await asyncio.gather(
                    *(c.predict(mix=mix, predictor="mppm:prob") for c in clients)
                )
            finally:
                for client in clients:
                    await client.close()

        responses = asyncio.run(storm())
        first = responses[0]["prediction"]
        assert all(response["prediction"] == first for response in responses)
        assert stats.inflight_deduped > deduped_before
        # All four concurrent requests cost at most one computed prediction.
        assert stats.predictions_computed <= computed_before + 1

    def test_concurrent_distinct_requests_coalesce_into_one_batch(self, live):
        stats = live.service.stats
        batches_before = stats.batches
        rows = [[NAMES[i], NAMES[(i + 1) % len(NAMES)]] for i in range(3)]

        async def storm():
            clients = [ServiceClient(live.host, live.port) for _ in range(3)]
            try:
                for client in clients:
                    await client.connect()
                return await asyncio.gather(
                    *(
                        c.predict(mix=row, predictor="baseline:no-contention")
                        for c, row in zip(clients, rows)
                    )
                )
            finally:
                for client in clients:
                    await client.close()

        asyncio.run(storm())
        new_batches = stats.batches - batches_before
        # Three concurrent submissions within one 20ms window: fewer
        # batches than requests (usually exactly one).
        assert 1 <= new_batches < 3

    def test_stats_served_counter_tracks_predictions(self, live):
        served_before = live.service.stats.predictions_served
        call(live, lambda c: c.predict(mixes=[NAMES[:2], NAMES[1:3]]))
        assert live.service.stats.predictions_served == served_before + 2

    def test_stats_report_per_predictor_solve_batches(self, live):
        mixes = [[NAMES[0], NAMES[4]], [NAMES[1], NAMES[4]], [NAMES[3], NAMES[4]]]
        response = call(live, lambda c: c.predict(mixes=mixes, predictor="mppm:foa"))
        # Served predictions carry the solver kernel as provenance.
        assert all(
            prediction["kernel"] == "batched" for prediction in response["predictions"]
        )
        payload = call(live, lambda c: c.stats())
        entry = payload["predictors"]["mppm:foa"]
        assert entry["batches"] >= 1
        assert entry["items"] >= len(mixes)
        assert entry["max_size"] >= 1
        assert entry["mean_size"] > 0
        assert entry["solve_time_ms"] >= 0


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_shutdown_endpoint_stops_the_service(self):
        config = ServiceConfig(workload=WORKLOAD, instructions=20_000, preload=False)
        thread = ServiceThread(config).start()
        payload = call(thread, lambda c: c.shutdown())
        assert payload["status"] == "shutting down"
        thread._thread.join(timeout=10)
        assert not thread._thread.is_alive()

    def test_no_preload_starts_with_an_empty_store(self):
        config = ServiceConfig(workload=WORKLOAD, instructions=20_000, preload=False)
        with ServiceThread(config) as thread:
            health = call(thread, lambda c: c.healthz())
            assert health["preloaded_profiles"] == 0
            # First prediction profiles on demand and still succeeds.
            response = call(thread, lambda c: c.predict(mix=NAMES[:2]))
            assert response["prediction"]["stp"] > 0


# ---------------------------------------------------------------------------
# Raw HTTP framing
# ---------------------------------------------------------------------------


class TestContentLengthFraming:
    """RFC 9110 allows only ASCII digits in Content-Length; bare int()
    also accepted signs and underscores, which clients and
    intermediaries interpret inconsistently (request-smuggling bait)."""

    @staticmethod
    def raw_exchange(live, content_length):
        async def send():
            reader, writer = await asyncio.open_connection(live.host, live.port)
            request = (
                "POST /predict HTTP/1.1\r\n"
                f"Content-Length: {content_length}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(request.encode("latin-1"))
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        return asyncio.run(send())

    @pytest.mark.parametrize("value", ["+5", "-1", "1_0", "0x10", "5.0", ""])
    def test_malformed_content_length_is_a_structured_400(self, live, value):
        raw = self.raw_exchange(live, value)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.split(b"\r\n", 1)[0] == b"HTTP/1.1 400 Bad Request"
        assert b"malformed Content-Length header" in body

    def test_plain_digits_still_reach_the_json_parser(self, live):
        # "2" is well-formed framing; the 400 must now come from the
        # JSON layer (body "{}", wrong shape), not the framing layer.
        async def send():
            reader, writer = await asyncio.open_connection(live.host, live.port)
            writer.write(
                b"POST /predict HTTP/1.1\r\n"
                b"Content-Length: 2\r\n"
                b"Connection: close\r\n"
                b"\r\n"
                b"{}"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw = asyncio.run(send())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.split(b"\r\n", 1)[0] == b"HTTP/1.1 400 Bad Request"
        assert b"malformed Content-Length" not in body
