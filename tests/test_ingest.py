"""Tests for the real-trace ingestion subsystem (``src/repro/ingest/``).

The contract pinned here: PMU sample parsing rejects malformed input
with structured, row-addressed errors; change-point segmentation finds
planted phase boundaries; the closed loop (known benchmarks →
synthesized samples → fit → replay) recovers the observed miss rate,
access rate and CPI within tolerance — no hardware involved; and a
fitted bundle survives the JSON round-trip bit-for-bit, producing
identical predictions before and after reload.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import machine_with_llc, scaled
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.ingest import (
    FitOptions,
    FittedWorkload,
    IngestError,
    MachineDescriptor,
    fit_stream,
    load_bundle,
    load_samples,
    parse_samples,
    segment_series,
    synthesize_rows,
    write_bundle,
    write_samples,
)
from repro.ingest.samples import REQUIRED_COLUMNS, default_machine_path
from repro.ingest.workload import ingest_to_bundle
from repro.workloads import WorkloadMix, make_workload
from repro.workloads.suite import BenchmarkSuite

MACHINE = MachineDescriptor(cores=(0, 1))

#: Closed-loop tolerances (see README "Real traces"): the miss-rate
#: residual is absolute and only counted on phases with LLC traffic;
#: access-rate and CPI residuals are relative.
MISS_TOL = 0.05
ACCESS_TOL = 0.35
CPI_TOL = 0.15


def csv_text(rows):
    lines = [",".join(REQUIRED_COLUMNS)]
    lines.extend(",".join(str(value) for value in row) for row in rows)
    return "\n".join(lines) + "\n"


GOOD_ROWS = [
    (0, 1.0e-5, 40, 20, 1000),
    (0, 2.0e-5, 42, 21, 1000),
    (1, 1.5e-5, 7, 3, 1000),
    (1, 2.5e-5, 9, 2, 1000),
]


class TestParsing:
    def test_good_csv_parses_into_per_core_series(self):
        stream = parse_samples(csv_text(GOOD_ROWS), MACHINE)
        assert stream.core_ids == [0, 1]
        core0 = stream.cores[0]
        assert core0.num_samples == 2
        assert core0.total_instructions == 2000
        assert np.array_equal(core0.llc_loads, [40, 42])
        # Cycles come from timestamp deltas at the descriptor frequency.
        assert core0.cycles[1] == pytest.approx(1.0e-5 * 2.0e9)

    def test_jsonl_agrees_with_csv(self):
        jsonl = "\n".join(
            json.dumps(dict(zip(REQUIRED_COLUMNS, row))) for row in GOOD_ROWS
        )
        a = parse_samples(csv_text(GOOD_ROWS), MACHINE)
        b = parse_samples(jsonl, MACHINE, fmt="jsonl")
        for left, right in zip(a.cores, b.cores):
            assert left.core == right.core
            assert np.array_equal(left.llc_misses, right.llc_misses)
            assert np.array_equal(left.cycles, right.cycles)

    def test_missing_columns_are_named(self):
        text = "core,timestamp,llc_loads\n0,1.0,5\n"
        with pytest.raises(IngestError, match="missing.*llc_misses"):
            parse_samples(text, MACHINE)

    def test_empty_file_is_rejected(self):
        with pytest.raises(IngestError, match="empty"):
            parse_samples("", MACHINE)

    def test_non_numeric_cell_is_addressed_by_row(self):
        rows = [(0, 1.0e-5, "many", 0, 1000)]
        with pytest.raises(IngestError, match="row 2.*llc_loads"):
            parse_samples(csv_text(rows), MACHINE)

    def test_negative_counter_is_rejected(self):
        rows = [(0, 1.0e-5, 5, 1, -3)]
        with pytest.raises(IngestError, match="non-negative"):
            parse_samples(csv_text(rows), MACHINE)

    def test_misses_cannot_exceed_loads(self):
        rows = [(0, 1.0e-5, 5, 9, 1000)]
        with pytest.raises(IngestError, match="llc_misses.*exceeds.*llc_loads"):
            parse_samples(csv_text(rows), MACHINE)

    def test_non_monotonic_timestamps_are_rejected(self):
        rows = [(0, 2.0e-5, 5, 1, 1000), (0, 1.0e-5, 5, 1, 1000)]
        with pytest.raises(IngestError, match="non-monotonic"):
            parse_samples(csv_text(rows), MACHINE)

    def test_unknown_core_id_names_the_declared_cores(self):
        rows = [(7, 1.0e-5, 5, 1, 1000)]
        with pytest.raises(IngestError, match="unknown core id 7.*\\[0, 1\\]"):
            parse_samples(csv_text(rows), MACHINE)

    def test_zero_instruction_core_is_rejected(self):
        rows = [(0, 1.0e-5, 0, 0, 0)]
        with pytest.raises(IngestError, match="no instructions"):
            parse_samples(csv_text(rows), MACHINE)

    def test_errors_are_workload_errors(self):
        from repro.workloads.benchmark import WorkloadError

        assert issubclass(IngestError, WorkloadError)


class TestMachineDescriptor:
    def test_round_trips_through_dict(self):
        descriptor = MachineDescriptor(cores=(0, 1, 2), frequency_ghz=3.2)
        assert MachineDescriptor.from_dict(descriptor.to_dict()) == descriptor

    def test_unknown_fields_are_rejected(self):
        data = MACHINE.to_dict()
        data["sockets"] = 2
        with pytest.raises(IngestError, match="sockets"):
            MachineDescriptor.from_dict(data)

    def test_bad_geometry_is_rejected(self):
        with pytest.raises(IngestError, match="8-way sets"):
            MachineDescriptor(llc_lines=500, llc_associativity=8)

    def test_to_machine_config_has_three_levels(self):
        machine = MACHINE.to_machine_config()
        assert len(machine.private_levels) == 2
        assert machine.llc.shared
        assert machine.llc.num_lines == MACHINE.llc_lines

    def test_from_machine_round_trips_the_simulated_geometry(self):
        machine = scaled(machine_with_llc(1, num_cores=1), 16)
        descriptor = MachineDescriptor.from_machine(
            machine.single_core(), cores=(0,), frequency_ghz=2.0
        )
        rebuilt = descriptor.to_machine_config()
        assert rebuilt.llc.num_lines == machine.llc.num_lines
        assert rebuilt.memory.latency == machine.memory.latency


class TestSegmentation:
    def test_finds_a_planted_change_point(self):
        flat = np.concatenate([np.full(20, 0.1), np.full(20, 0.9)])
        features = np.stack([flat, flat], axis=1)
        segments = segment_series(features, max_phases=4)
        assert [(s.start, s.stop) for s in segments] == [(0, 20), (20, 40)]

    def test_constant_series_stays_one_segment(self):
        features = np.full((30, 3), 0.5)
        segments = segment_series(features, max_phases=6)
        assert len(segments) == 1

    def test_respects_the_phase_budget(self):
        steps = np.concatenate([np.full(10, v) for v in (0.0, 1.0, 0.0, 1.0, 0.0)])
        segments = segment_series(steps.reshape(-1, 1), max_phases=3)
        assert 1 <= len(segments) <= 3

    def test_min_samples_floor_is_respected(self):
        flat = np.concatenate([np.full(4, 0.0), np.full(4, 1.0)])
        for segment in segment_series(flat.reshape(-1, 1), min_samples=3):
            assert segment.stop - segment.start >= 3


@pytest.fixture(scope="module")
def synth_fixture(tmp_path_factory):
    """Synthesized samples from two known benchmarks + their fits."""
    suite = make_workload("suite:spec29").suite()
    specs = [suite["gamess"], suite["lbm"]]
    machine = scaled(machine_with_llc(1, num_cores=1), 16)
    out = tmp_path_factory.mktemp("synth") / "samples.csv"
    csv_path, machine_path = write_samples(
        specs, machine, out, num_instructions=60_000, interval_instructions=1_500
    )
    stream = load_samples(csv_path)
    fits = fit_stream(stream, FitOptions())
    return specs, csv_path, machine_path, stream, fits


class TestClosedLoop:
    def test_synthesis_is_deterministic(self):
        suite = make_workload("suite:spec29").suite()
        machine = scaled(machine_with_llc(1, num_cores=1), 16)
        a = synthesize_rows([suite["gamess"]], machine, num_instructions=20_000)
        b = synthesize_rows([suite["gamess"]], machine, num_instructions=20_000)
        assert a == b

    def test_machine_descriptor_is_written_beside_the_samples(self, synth_fixture):
        _, csv_path, machine_path, _, _ = synth_fixture
        assert default_machine_path(csv_path) == machine_path

    def test_fit_recovers_the_observed_rates(self, synth_fixture):
        """Known profile → samples → fit → replay matches within tolerance."""
        _, _, _, stream, fits = synth_fixture
        assert [fit.core for fit in fits] == [0, 1]
        for fit in fits:
            assert fit.coverage == pytest.approx(1.0)
            assert fit.max_miss_rate_error <= MISS_TOL, fit.core
            assert fit.max_access_rate_error <= ACCESS_TOL, fit.core
            assert fit.max_cpi_error <= CPI_TOL, fit.core

    def test_fit_report_targets_match_the_samples(self, synth_fixture):
        """Phase targets are instruction-weighted means of the raw samples."""
        _, _, _, stream, fits = synth_fixture
        for core, fit in zip(stream.cores, fits):
            weighted = float(core.llc_misses.sum() / core.total_instructions)
            overall = sum(
                phase.fraction * phase.target_miss_rate * phase.target_access_rate
                for phase in fit.phases
            )
            assert overall == pytest.approx(weighted, rel=0.2)

    def test_fitted_specs_are_valid_benchmarks(self, synth_fixture):
        _, _, _, _, fits = synth_fixture
        suite = BenchmarkSuite(specs=tuple(fit.spec for fit in fits))
        assert suite.names == ["pmu-c0", "pmu-c1"]
        for spec in suite:
            assert sum(phase.fraction for phase in spec.phases) == pytest.approx(1.0)


class TestBundleRoundTrip:
    def test_bundle_survives_json_and_reload(self, synth_fixture, tmp_path):
        _, csv_path, _, stream, fits = synth_fixture
        workload, _ = ingest_to_bundle(csv_path)
        path = write_bundle(workload, tmp_path / "bundle")
        reloaded = load_bundle(path)
        assert reloaded.to_dict() == workload.to_dict()
        assert reloaded.specs == workload.specs
        assert reloaded.source_digest == workload.source_digest

    def test_reloaded_bundle_predicts_identically(self, synth_fixture, tmp_path):
        """samples → fit → JSON → reload → bit-identical predictions."""
        _, csv_path, _, _, _ = synth_fixture
        workload, _ = ingest_to_bundle(csv_path)
        write_bundle(workload, tmp_path / "bundle")
        config = ExperimentConfig(
            scale=16, num_instructions=20_000, interval_instructions=1_000
        )
        direct = ExperimentSetup(
            config=config, suite=BenchmarkSuite(specs=workload.specs)
        )
        reloaded = ExperimentSetup(
            config=config, workload=f"perf:{tmp_path / 'bundle'}"
        )
        mix = WorkloadMix(programs=("pmu-c0", "pmu-c1"))
        machine = direct.machine(num_cores=2)
        assert direct.predict(mix, machine) == reloaded.predict(mix, machine)

    def test_truncated_bundle_is_rejected(self, tmp_path):
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps({"format_version": 1, "fits": []}))
        with pytest.raises(IngestError):
            load_bundle(path)

    def test_future_format_version_is_rejected(self, synth_fixture, tmp_path):
        _, csv_path, _, _, _ = synth_fixture
        workload, _ = ingest_to_bundle(csv_path)
        data = workload.to_dict()
        data["format_version"] = 99
        with pytest.raises(IngestError, match="format_version"):
            FittedWorkload.from_dict(data)

    def test_fit_options_round_trip(self):
        options = FitOptions(num_instructions=50_000, rounds=2, seed=7)
        assert FitOptions.from_dict(options.to_dict()) == options
