"""The single-core profile data model.

A :class:`SingleCoreProfile` is exactly what the paper's §2.1 collects
per benchmark: for every interval of the isolated run,

* the single-core CPI,
* the memory CPI (cycles waiting for memory per instruction), and
* the LLC stack-distance counters (SDCs),

plus enough bookkeeping (interval length, trace length, LLC geometry)
for MPPM to aggregate windows of the profile as its iterative process
advances each program's instruction pointer.  Profiles are plain data:
they can be serialised to JSON and reloaded without touching the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.caches.stack_distance import StackDistanceCounters


class ProfileError(ValueError):
    """Raised for inconsistent profile data or invalid window queries."""


@dataclass(frozen=True)
class IntervalProfile:
    """Profile of one interval (the paper's 20M-instruction granularity)."""

    index: int
    instructions: int
    cpi: float
    memory_cpi: float
    llc_accesses: float
    llc_misses: float
    sdc: StackDistanceCounters

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ProfileError(f"interval {self.index}: instructions must be positive")
        if self.cpi <= 0:
            raise ProfileError(f"interval {self.index}: CPI must be positive, got {self.cpi}")
        if self.memory_cpi < 0 or self.memory_cpi > self.cpi:
            raise ProfileError(
                f"interval {self.index}: memory CPI {self.memory_cpi} must be within [0, CPI]"
            )
        if self.llc_accesses < 0 or self.llc_misses < 0 or self.llc_misses > self.llc_accesses:
            raise ProfileError(f"interval {self.index}: inconsistent LLC access/miss counts")

    @property
    def cycles(self) -> float:
        return self.cpi * self.instructions

    @property
    def memory_cycles(self) -> float:
        return self.memory_cpi * self.instructions


@dataclass(frozen=True)
class ProfileWindow:
    """Aggregation of a profile over a window of instructions.

    MPPM repeatedly needs "the SDCs, the memory cycles and the isolated
    LLC miss count over the next N_p instructions starting from the
    program's current position I_p"; a :class:`ProfileWindow` is that
    aggregate.  Partial intervals are scaled proportionally.
    """

    instructions: float
    cycles: float
    memory_cycles: float
    llc_accesses: float
    llc_misses: float
    sdc: StackDistanceCounters

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def memory_cpi(self) -> float:
        return self.memory_cycles / self.instructions if self.instructions else 0.0

    @property
    def average_miss_penalty(self) -> float:
        """Average exposed cycles per isolated LLC miss over the window.

        This is the paper's ``LLC_miss_penalty_p = CPI_mem,p * N_p /
        #LLC misses``; zero when the window contains no misses.
        """
        if self.llc_misses <= 0:
            return 0.0
        return self.memory_cycles / self.llc_misses


class SingleCoreProfile:
    """Per-benchmark single-core profile on a given machine."""

    def __init__(
        self,
        benchmark: str,
        machine_key: str,
        machine_name: str,
        interval_instructions: int,
        intervals: Sequence[IntervalProfile],
        llc_associativity: int,
    ) -> None:
        if not intervals:
            raise ProfileError("a profile needs at least one interval")
        if interval_instructions <= 0:
            raise ProfileError("interval_instructions must be positive")
        expected_index = list(range(len(intervals)))
        if [interval.index for interval in intervals] != expected_index:
            raise ProfileError("profile intervals must be consecutively indexed from 0")
        for interval in intervals:
            if interval.sdc.associativity != llc_associativity:
                raise ProfileError(
                    "interval SDC associativity does not match the profile's LLC associativity"
                )
        self.benchmark = benchmark
        self.machine_key = machine_key
        self.machine_name = machine_name
        self.interval_instructions = interval_instructions
        self.intervals: List[IntervalProfile] = list(intervals)
        self.llc_associativity = llc_associativity

        # Precomputed cumulative instruction boundaries for window lookups.
        self._boundaries = np.cumsum([interval.instructions for interval in self.intervals])

    # ------------------------------------------------------------------
    # Whole-trace aggregates
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def num_instructions(self) -> int:
        """Total instructions of the profiled trace."""
        return int(self._boundaries[-1])

    @property
    def total_cycles(self) -> float:
        return sum(interval.cycles for interval in self.intervals)

    @property
    def cpi(self) -> float:
        """Overall single-core CPI (the paper's CPI_SC)."""
        return self.total_cycles / self.num_instructions

    @property
    def memory_cpi(self) -> float:
        """Overall memory CPI (the paper's CPI_mem)."""
        return sum(interval.memory_cycles for interval in self.intervals) / self.num_instructions

    @property
    def memory_cpi_fraction(self) -> float:
        """Memory CPI as a fraction of total CPI (used for MEM/COMP classification)."""
        return self.memory_cpi / self.cpi if self.cpi else 0.0

    @property
    def total_llc_accesses(self) -> float:
        return sum(interval.llc_accesses for interval in self.intervals)

    @property
    def total_llc_misses(self) -> float:
        return sum(interval.llc_misses for interval in self.intervals)

    @property
    def llc_misses_per_kilo_instruction(self) -> float:
        return 1000.0 * self.total_llc_misses / self.num_instructions

    def total_sdc(self) -> StackDistanceCounters:
        """Sum of all interval SDCs."""
        return StackDistanceCounters.sum(
            (interval.sdc for interval in self.intervals), self.llc_associativity
        )

    # ------------------------------------------------------------------
    # Window aggregation (the operation MPPM performs every iteration)
    # ------------------------------------------------------------------

    def window(self, start_instruction: float, num_instructions: float) -> ProfileWindow:
        """Aggregate the profile over ``[start, start + num_instructions)``.

        The start position wraps around the end of the trace (MPPM lets
        fast programs iterate over their trace more than once), and the
        window itself may span the wrap-around point.  Partial
        intervals contribute proportionally.
        """
        if num_instructions <= 0:
            raise ProfileError(f"window length must be positive, got {num_instructions}")
        trace_length = self.num_instructions
        start = float(start_instruction) % trace_length

        remaining = float(num_instructions)
        position = start
        instructions = 0.0
        cycles = 0.0
        memory_cycles = 0.0
        llc_accesses = 0.0
        llc_misses = 0.0
        sdc_counts = np.zeros(self.llc_associativity + 1, dtype=np.float64)

        # Guard against pathological window lengths that would loop forever.
        max_passes = int(np.ceil(num_instructions / trace_length)) + 2
        passes = 0
        while remaining > 1e-9:
            if position >= trace_length - 1e-9:
                position = 0.0
                passes += 1
                if passes > max_passes:
                    raise ProfileError("window aggregation failed to terminate")
            interval_index = int(np.searchsorted(self._boundaries, position, side="right"))
            interval = self.intervals[interval_index]
            available = self._boundaries[interval_index] - position
            take = min(available, remaining)
            fraction = take / interval.instructions

            instructions += take
            cycles += interval.cycles * fraction
            memory_cycles += interval.memory_cycles * fraction
            llc_accesses += interval.llc_accesses * fraction
            llc_misses += interval.llc_misses * fraction
            sdc_counts += interval.sdc.counts * fraction

            position += take
            remaining -= take

        return ProfileWindow(
            instructions=instructions,
            cycles=cycles,
            memory_cycles=memory_cycles,
            llc_accesses=llc_accesses,
            llc_misses=llc_misses,
            sdc=StackDistanceCounters(associativity=self.llc_associativity, counts=sdc_counts),
        )

    # ------------------------------------------------------------------
    # Derived profiles
    # ------------------------------------------------------------------

    def reduced_associativity(self, ways: int) -> "SingleCoreProfile":
        """Derive the profile for an LLC with fewer ways (same sets).

        The paper points out that profiles collected for a 16-way LLC
        can be reused for an 8-way LLC without re-simulation.  The SDCs
        fold exactly; the CPI and memory CPI are adjusted by charging
        the additional misses the average miss penalty observed in the
        interval (an approximation the paper shares).
        """
        new_intervals = []
        for interval in self.intervals:
            new_sdc = interval.sdc.reduced_associativity(ways)
            extra_misses = new_sdc.misses - interval.sdc.misses
            if interval.llc_misses > 0:
                penalty = interval.memory_cycles / interval.llc_misses
            else:
                penalty = 0.0
            extra_cycles = extra_misses * penalty
            cycles = interval.cycles + extra_cycles
            memory_cycles = interval.memory_cycles + extra_cycles
            new_intervals.append(
                IntervalProfile(
                    index=interval.index,
                    instructions=interval.instructions,
                    cpi=cycles / interval.instructions,
                    memory_cpi=memory_cycles / interval.instructions,
                    llc_accesses=interval.llc_accesses,
                    llc_misses=interval.llc_misses + extra_misses,
                    sdc=new_sdc,
                )
            )
        return SingleCoreProfile(
            benchmark=self.benchmark,
            machine_key=f"{self.machine_key}|derived_ways={ways}",
            machine_name=f"{self.machine_name} (derived {ways}-way LLC)",
            interval_instructions=self.interval_instructions,
            intervals=new_intervals,
            llc_associativity=ways,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-data representation suitable for JSON."""
        return {
            "benchmark": self.benchmark,
            "machine_key": self.machine_key,
            "machine_name": self.machine_name,
            "interval_instructions": self.interval_instructions,
            "llc_associativity": self.llc_associativity,
            "intervals": [
                {
                    "index": interval.index,
                    "instructions": interval.instructions,
                    "cpi": interval.cpi,
                    "memory_cpi": interval.memory_cpi,
                    "llc_accesses": interval.llc_accesses,
                    "llc_misses": interval.llc_misses,
                    "sdc": interval.sdc.counts.tolist(),
                }
                for interval in self.intervals
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SingleCoreProfile":
        """Inverse of :meth:`to_dict`."""
        associativity = int(data["llc_associativity"])
        intervals = [
            IntervalProfile(
                index=int(entry["index"]),
                instructions=int(entry["instructions"]),
                cpi=float(entry["cpi"]),
                memory_cpi=float(entry["memory_cpi"]),
                llc_accesses=float(entry["llc_accesses"]),
                llc_misses=float(entry["llc_misses"]),
                sdc=StackDistanceCounters(
                    associativity=associativity,
                    counts=np.asarray(entry["sdc"], dtype=np.float64),
                ),
            )
            for entry in data["intervals"]
        ]
        return cls(
            benchmark=data["benchmark"],
            machine_key=data["machine_key"],
            machine_name=data["machine_name"],
            interval_instructions=int(data["interval_instructions"]),
            intervals=intervals,
            llc_associativity=associativity,
        )

    def describe(self) -> str:
        return (
            f"{self.benchmark} on {self.machine_name}: CPI_SC {self.cpi:.3f}, "
            f"CPI_mem {self.memory_cpi:.3f} ({self.memory_cpi_fraction:.0%}), "
            f"{self.llc_misses_per_kilo_instruction:.2f} LLC MPKI, "
            f"{self.num_intervals} intervals"
        )
