"""The single-core profile data model.

A :class:`SingleCoreProfile` is exactly what the paper's §2.1 collects
per benchmark: for every interval of the isolated run,

* the single-core CPI,
* the memory CPI (cycles waiting for memory per instruction), and
* the LLC stack-distance counters (SDCs),

plus enough bookkeeping (interval length, trace length, LLC geometry)
for MPPM to aggregate windows of the profile as its iterative process
advances each program's instruction pointer.  Profiles are plain data:
they can be serialised to JSON and reloaded without touching the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.caches.stack_distance import StackDistanceCounters


class ProfileError(ValueError):
    """Raised for inconsistent profile data or invalid window queries."""


@dataclass(frozen=True)
class IntervalProfile:
    """Profile of one interval (the paper's 20M-instruction granularity)."""

    index: int
    instructions: int
    cpi: float
    memory_cpi: float
    llc_accesses: float
    llc_misses: float
    sdc: StackDistanceCounters

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ProfileError(f"interval {self.index}: instructions must be positive")
        if self.cpi <= 0:
            raise ProfileError(f"interval {self.index}: CPI must be positive, got {self.cpi}")
        if self.memory_cpi < 0 or self.memory_cpi > self.cpi:
            raise ProfileError(
                f"interval {self.index}: memory CPI {self.memory_cpi} must be within [0, CPI]"
            )
        if self.llc_accesses < 0 or self.llc_misses < 0 or self.llc_misses > self.llc_accesses:
            raise ProfileError(f"interval {self.index}: inconsistent LLC access/miss counts")

    @property
    def cycles(self) -> float:
        return self.cpi * self.instructions

    @property
    def memory_cycles(self) -> float:
        return self.memory_cpi * self.instructions


@dataclass(frozen=True)
class ProfileWindow:
    """Aggregation of a profile over a window of instructions.

    MPPM repeatedly needs "the SDCs, the memory cycles and the isolated
    LLC miss count over the next N_p instructions starting from the
    program's current position I_p"; a :class:`ProfileWindow` is that
    aggregate.  Partial intervals are scaled proportionally.
    """

    instructions: float
    cycles: float
    memory_cycles: float
    llc_accesses: float
    llc_misses: float
    sdc: StackDistanceCounters

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def memory_cpi(self) -> float:
        return self.memory_cycles / self.instructions if self.instructions else 0.0

    @property
    def average_miss_penalty(self) -> float:
        """Average exposed cycles per isolated LLC miss over the window.

        This is the paper's ``LLC_miss_penalty_p = CPI_mem,p * N_p /
        #LLC misses``; zero when the window contains no misses.
        """
        if self.llc_misses <= 0:
            return 0.0
        return self.memory_cycles / self.llc_misses


class ProfileWindowTable:
    """Precomputed cumulative per-interval counter sums for window queries.

    MPPM aggregates the profile over a window ``[I_p, I_p + N_p)``
    every iteration; with exclusive prefix sums of every per-interval
    counter, any window is two gathered point evaluations and a
    subtract (plus the whole-trace totals once per full wrap-around
    pass).  Both MPPM kernels — the scalar reference loop through
    :meth:`SingleCoreProfile.window` and the batched mix-major solver —
    evaluate windows through this one table, so their float operations
    are identical and the kernels stay bit-identical by construction.

    The point evaluation ``P(x)`` (cumulative counters over ``[0, x)``)
    locates the interval containing ``x`` and interpolates the partial
    interval proportionally; a window starting at ``s`` (already
    wrapped into the trace) of length ``n`` with ``e = s + n``,
    ``q = floor(e / L)`` full passes and remainder ``r = e - q*L`` then
    aggregates to ``(P(r) - P(s)) + q * totals``.
    """

    #: Column layout of :attr:`values` / :attr:`prefix` / window rows:
    #: the five scalar counters, then the A+1 stack-distance counters.
    COL_INSTRUCTIONS = 0
    COL_CYCLES = 1
    COL_MEMORY_CYCLES = 2
    COL_LLC_ACCESSES = 3
    COL_LLC_MISSES = 4
    SDC_OFFSET = 5

    def __init__(self, profile: "SingleCoreProfile") -> None:
        intervals = profile.intervals
        sdc = np.stack([interval.sdc.counts for interval in intervals]).astype(np.float64)
        #: Per-interval counter matrix, one row per interval.
        self.values = np.column_stack(
            [
                np.array([interval.instructions for interval in intervals], dtype=np.float64),
                np.array([interval.cycles for interval in intervals], dtype=np.float64),
                np.array([interval.memory_cycles for interval in intervals], dtype=np.float64),
                np.array([interval.llc_accesses for interval in intervals], dtype=np.float64),
                np.array([interval.llc_misses for interval in intervals], dtype=np.float64),
                sdc,
            ]
        )
        #: Exclusive prefix sums: ``prefix[i]`` = counters over intervals < i.
        self.prefix = np.vstack(
            [np.zeros((1, self.values.shape[1])), np.cumsum(self.values, axis=0)]
        )
        #: Whole-trace totals (the last prefix row).
        self.totals = self.prefix[-1]
        #: Instruction positions where each interval starts / ends.  The
        #: interval lengths are integers, so these cumulative sums are
        #: exact in float64 and partial-interval fractions land in [0, 1].
        self.starts = self.prefix[:-1, self.COL_INSTRUCTIONS]
        self.boundaries = self.prefix[1:, self.COL_INSTRUCTIONS]
        self.instructions = self.values[:, self.COL_INSTRUCTIONS]
        self.trace_length = float(profile.num_instructions)

    def point(self, positions: np.ndarray) -> np.ndarray:
        """``P(x)``: cumulative counters over ``[0, x)`` for ``x`` in [0, L]."""
        index = np.minimum(
            np.searchsorted(self.boundaries, positions, side="right"),
            len(self.instructions) - 1,
        )
        fraction = (positions - self.starts[index]) / self.instructions[index]
        return self.prefix[index] + fraction[..., None] * self.values[index]

    def windows(self, start_instructions: np.ndarray, num_instructions: np.ndarray) -> np.ndarray:
        """Aggregate counters over ``[start, start + n)`` windows.

        Starts wrap around the end of the trace and windows may span
        the wrap-around point any number of times.  Accepts scalars or
        arrays (broadcast together); returns rows in the column layout
        above, with one extra leading axis per input axis.
        """
        length = self.trace_length
        start = np.mod(np.asarray(start_instructions, dtype=np.float64), length)
        end = start + np.asarray(num_instructions, dtype=np.float64)
        full_passes = np.floor(end / length)
        remainder = np.minimum(np.maximum(end - full_passes * length, 0.0), length)
        return (self.point(remainder) - self.point(start)) + full_passes[
            ..., None
        ] * self.totals


class SingleCoreProfile:
    """Per-benchmark single-core profile on a given machine."""

    def __init__(
        self,
        benchmark: str,
        machine_key: str,
        machine_name: str,
        interval_instructions: int,
        intervals: Sequence[IntervalProfile],
        llc_associativity: int,
    ) -> None:
        if not intervals:
            raise ProfileError("a profile needs at least one interval")
        if interval_instructions <= 0:
            raise ProfileError("interval_instructions must be positive")
        expected_index = list(range(len(intervals)))
        if [interval.index for interval in intervals] != expected_index:
            raise ProfileError("profile intervals must be consecutively indexed from 0")
        for interval in intervals:
            if interval.sdc.associativity != llc_associativity:
                raise ProfileError(
                    "interval SDC associativity does not match the profile's LLC associativity"
                )
        self.benchmark = benchmark
        self.machine_key = machine_key
        self.machine_name = machine_name
        self.interval_instructions = interval_instructions
        self.intervals: List[IntervalProfile] = list(intervals)
        self.llc_associativity = llc_associativity

        # Precomputed cumulative instruction boundaries for window lookups.
        self._boundaries = np.cumsum([interval.instructions for interval in self.intervals])
        self._window_table: Optional[ProfileWindowTable] = None

    # ------------------------------------------------------------------
    # Whole-trace aggregates
    # ------------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def num_instructions(self) -> int:
        """Total instructions of the profiled trace."""
        return int(self._boundaries[-1])

    @property
    def total_cycles(self) -> float:
        return sum(interval.cycles for interval in self.intervals)

    @property
    def cpi(self) -> float:
        """Overall single-core CPI (the paper's CPI_SC)."""
        return self.total_cycles / self.num_instructions

    @property
    def memory_cpi(self) -> float:
        """Overall memory CPI (the paper's CPI_mem)."""
        return sum(interval.memory_cycles for interval in self.intervals) / self.num_instructions

    @property
    def memory_cpi_fraction(self) -> float:
        """Memory CPI as a fraction of total CPI (used for MEM/COMP classification)."""
        return self.memory_cpi / self.cpi if self.cpi else 0.0

    @property
    def total_llc_accesses(self) -> float:
        return sum(interval.llc_accesses for interval in self.intervals)

    @property
    def total_llc_misses(self) -> float:
        return sum(interval.llc_misses for interval in self.intervals)

    @property
    def llc_misses_per_kilo_instruction(self) -> float:
        return 1000.0 * self.total_llc_misses / self.num_instructions

    def total_sdc(self) -> StackDistanceCounters:
        """Sum of all interval SDCs."""
        return StackDistanceCounters.sum(
            (interval.sdc for interval in self.intervals), self.llc_associativity
        )

    # ------------------------------------------------------------------
    # Window aggregation (the operation MPPM performs every iteration)
    # ------------------------------------------------------------------

    @property
    def window_table(self) -> ProfileWindowTable:
        """The profile's prefix-sum window table (built lazily, cached)."""
        if self._window_table is None:
            self._window_table = ProfileWindowTable(self)
        return self._window_table

    def window(self, start_instruction: float, num_instructions: float) -> ProfileWindow:
        """Aggregate the profile over ``[start, start + num_instructions)``.

        The start position wraps around the end of the trace (MPPM lets
        fast programs iterate over their trace more than once), and the
        window itself may span the wrap-around point.  Partial
        intervals contribute proportionally.  The aggregation goes
        through :class:`ProfileWindowTable` — the same float operations
        the batched MPPM kernel applies to whole arrays of windows.
        """
        if num_instructions <= 0:
            raise ProfileError(f"window length must be positive, got {num_instructions}")
        table = self.window_table
        row = table.windows(float(start_instruction), float(num_instructions))
        return ProfileWindow(
            instructions=float(row[ProfileWindowTable.COL_INSTRUCTIONS]),
            cycles=float(row[ProfileWindowTable.COL_CYCLES]),
            memory_cycles=float(row[ProfileWindowTable.COL_MEMORY_CYCLES]),
            llc_accesses=float(row[ProfileWindowTable.COL_LLC_ACCESSES]),
            llc_misses=float(row[ProfileWindowTable.COL_LLC_MISSES]),
            sdc=StackDistanceCounters(
                associativity=self.llc_associativity,
                counts=row[ProfileWindowTable.SDC_OFFSET :].copy(),
            ),
        )

    # ------------------------------------------------------------------
    # Derived profiles
    # ------------------------------------------------------------------

    def reduced_associativity(self, ways: int) -> "SingleCoreProfile":
        """Derive the profile for an LLC with fewer ways (same sets).

        The paper points out that profiles collected for a 16-way LLC
        can be reused for an 8-way LLC without re-simulation.  The SDCs
        fold exactly; the CPI and memory CPI are adjusted by charging
        the additional misses the average miss penalty observed in the
        interval (an approximation the paper shares).
        """
        new_intervals = []
        for interval in self.intervals:
            new_sdc = interval.sdc.reduced_associativity(ways)
            extra_misses = new_sdc.misses - interval.sdc.misses
            if interval.llc_misses > 0:
                penalty = interval.memory_cycles / interval.llc_misses
            else:
                penalty = 0.0
            extra_cycles = extra_misses * penalty
            cycles = interval.cycles + extra_cycles
            memory_cycles = interval.memory_cycles + extra_cycles
            new_intervals.append(
                IntervalProfile(
                    index=interval.index,
                    instructions=interval.instructions,
                    cpi=cycles / interval.instructions,
                    memory_cpi=memory_cycles / interval.instructions,
                    llc_accesses=interval.llc_accesses,
                    llc_misses=interval.llc_misses + extra_misses,
                    sdc=new_sdc,
                )
            )
        return SingleCoreProfile(
            benchmark=self.benchmark,
            machine_key=f"{self.machine_key}|derived_ways={ways}",
            machine_name=f"{self.machine_name} (derived {ways}-way LLC)",
            interval_instructions=self.interval_instructions,
            intervals=new_intervals,
            llc_associativity=ways,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-data representation suitable for JSON."""
        return {
            "benchmark": self.benchmark,
            "machine_key": self.machine_key,
            "machine_name": self.machine_name,
            "interval_instructions": self.interval_instructions,
            "llc_associativity": self.llc_associativity,
            "intervals": [
                {
                    "index": interval.index,
                    "instructions": interval.instructions,
                    "cpi": interval.cpi,
                    "memory_cpi": interval.memory_cpi,
                    "llc_accesses": interval.llc_accesses,
                    "llc_misses": interval.llc_misses,
                    "sdc": interval.sdc.counts.tolist(),
                }
                for interval in self.intervals
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SingleCoreProfile":
        """Inverse of :meth:`to_dict`."""
        associativity = int(data["llc_associativity"])
        intervals = [
            IntervalProfile(
                index=int(entry["index"]),
                instructions=int(entry["instructions"]),
                cpi=float(entry["cpi"]),
                memory_cpi=float(entry["memory_cpi"]),
                llc_accesses=float(entry["llc_accesses"]),
                llc_misses=float(entry["llc_misses"]),
                sdc=StackDistanceCounters(
                    associativity=associativity,
                    counts=np.asarray(entry["sdc"], dtype=np.float64),
                ),
            )
            for entry in data["intervals"]
        ]
        return cls(
            benchmark=data["benchmark"],
            machine_key=data["machine_key"],
            machine_name=data["machine_name"],
            interval_instructions=int(data["interval_instructions"]),
            intervals=intervals,
            llc_associativity=associativity,
        )

    def describe(self) -> str:
        return (
            f"{self.benchmark} on {self.machine_name}: CPI_SC {self.cpi:.3f}, "
            f"CPI_mem {self.memory_cpi:.3f} ({self.memory_cpi_fraction:.0%}), "
            f"{self.llc_misses_per_kilo_instruction:.2f} LLC MPKI, "
            f"{self.num_intervals} intervals"
        )
