"""Caching store for single-core profiles (and their LLC traces).

Single-core simulation is the one-time cost of the paper's methodology;
the store makes sure it really is paid only once per (benchmark,
machine) pair within a process, and — optionally — across processes by
persisting profiles as JSON files in a cache directory.

Two kinds of artefacts are cached:

* the :class:`SingleCoreProfile` — all MPPM ever needs; persisted to
  disk when a cache directory is configured, and
* the :class:`LLCAccessTrace` of the same isolated run — needed only by
  the multi-core *reference* simulator; kept in memory and regenerated
  on demand (it is deterministic, so regeneration is always consistent
  with the profile).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.config.machine import MachineConfig
from repro.io import atomic_write_json, read_json_tolerant
from repro.profiling.profile import SingleCoreProfile
from repro.profiling.profiler import ProfiledBenchmark, Profiler
from repro.simulators.llc_trace import LLCAccessTrace
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.suite import BenchmarkSuite


class ProfileStore:
    """Caches profiles per (benchmark, machine).

    Parameters
    ----------
    num_instructions, interval_instructions, seed, kernel:
        Passed through to the :class:`Profiler` when a profile has to
        be produced.  ``kernel`` selects the replay kernel
        (``"vectorized"`` by default); both kernels yield bit-identical
        profiles, so cached artefacts are shared between them.
    cache_dir:
        Optional directory for JSON persistence of profiles.
    workload_spec:
        Optional workload spec string (see
        :mod:`repro.workloads.registry`) qualifying the on-disk cache
        keys, so two workloads that both contain a benchmark of the
        same name can never collide in one ``cache_dir``.  Every save
        also writes the *unqualified* (content-addressed) key — whose
        digest covers the full benchmark spec, so it is collision-free
        too — which lets workloads that share bit-identical benchmark
        specs (``suite:spec29`` vs ``suite:spec29/scaled@8``, a
        ``random:*`` family scaled up) share profiles: a qualified
        miss falls back to that shared layer (which also covers
        payloads written by older, unqualified stores) and adopts the
        profile under the qualified key.
    """

    def __init__(
        self,
        num_instructions: int = 200_000,
        interval_instructions: int = 4_000,
        seed: int = 0,
        cache_dir: Optional[Path] = None,
        kernel: str = "vectorized",
        workload_spec: Optional[str] = None,
    ) -> None:
        self.num_instructions = num_instructions
        self.interval_instructions = interval_instructions
        self.seed = seed
        self.kernel = kernel
        self.workload_spec = workload_spec
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._profiles: Dict[Tuple[BenchmarkSpec, str], SingleCoreProfile] = {}
        self._traces: Dict[Tuple[BenchmarkSpec, str], LLCAccessTrace] = {}
        self._profilers: Dict[str, Profiler] = {}
        self.simulated_profiles = 0
        self.loaded_profiles = 0
        self.absorbed_profiles = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def get_profile(self, spec: BenchmarkSpec, machine: MachineConfig) -> SingleCoreProfile:
        """Profile (or fetch the cached profile of) one benchmark on one machine."""
        key = self._key(spec, machine)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached

        loaded = self._load_from_disk(spec, machine)
        if loaded is not None:
            self._profiles[key] = loaded
            self.loaded_profiles += 1
            return loaded

        return self._simulate(spec, machine).profile

    def get_llc_trace(self, spec: BenchmarkSpec, machine: MachineConfig) -> LLCAccessTrace:
        """The LLC access trace of the isolated run (simulates if needed)."""
        key = self._key(spec, machine)
        cached = self._traces.get(key)
        if cached is not None:
            return cached
        return self._simulate(spec, machine).llc_trace

    def get(self, spec: BenchmarkSpec, machine: MachineConfig) -> ProfiledBenchmark:
        """Both the profile and the LLC trace for one benchmark."""
        key = self._key(spec, machine)
        if key in self._profiles and key in self._traces:
            return ProfiledBenchmark(profile=self._profiles[key], llc_trace=self._traces[key])
        profiled = self._simulate(spec, machine)
        return profiled

    def get_suite(
        self, suite: BenchmarkSuite, machine: MachineConfig
    ) -> Dict[str, ProfiledBenchmark]:
        """Profiles for every benchmark of a suite (name → profiled benchmark)."""
        return {spec.name: self.get(spec, machine) for spec in suite}

    def get_suite_profiles(
        self, suite: BenchmarkSuite, machine: MachineConfig
    ) -> Dict[str, SingleCoreProfile]:
        """Profiles only, for every benchmark of a suite."""
        return {spec.name: self.get_profile(spec, machine) for spec in suite}

    def preload(self, suite: BenchmarkSuite, machine: MachineConfig) -> int:
        """Warm the full (profile, LLC trace) bundle for a whole suite.

        Long-running callers (the prediction service) pay the one-time
        profiling cost once at startup and then share the in-memory
        bundles read-only across every subsequent request — no
        re-profiling, no re-pickling per call.  Returns the number of
        (benchmark, machine) pairs now resident.
        """
        for spec in suite:
            self.get(spec, machine)
        return len(suite)

    def has(self, spec: BenchmarkSpec, machine: MachineConfig) -> bool:
        """Whether the pair has an in-memory profile (disk is not probed)."""
        return self._key(spec, machine) in self._profiles

    def load_if_cached(self, spec: BenchmarkSpec, machine: MachineConfig) -> bool:
        """Pull the pair's profile into memory if it is cached anywhere.

        Unlike :meth:`get_profile` this never simulates: it returns
        ``True`` when the profile was already in memory or could be
        loaded from disk, ``False`` otherwise.  Note a disk hit only
        provides the profile — the LLC trace still requires a
        simulation, so callers that need traces must not rely on this.
        """
        key = self._key(spec, machine)
        if key in self._profiles:
            return True
        loaded = self._load_from_disk(spec, machine)
        if loaded is None:
            return False
        self._profiles[key] = loaded
        self.loaded_profiles += 1
        return True

    def absorb(
        self, spec: BenchmarkSpec, machine: MachineConfig, profiled: ProfiledBenchmark
    ) -> None:
        """Adopt a profile computed elsewhere (e.g. by an engine worker).

        The artefacts enter the in-memory and on-disk caches exactly as
        if this store had simulated them, but ``simulated_profiles`` is
        untouched — the simulation work was paid in another process.
        """
        key = self._key(spec, machine)
        self._profiles[key] = profiled.profile
        self._traces[key] = profiled.llc_trace
        self.absorbed_profiles += 1
        self._save_to_disk(spec, profiled.profile)

    def cached_pairs(self) -> int:
        """Number of (benchmark, machine) pairs with an in-memory profile."""
        return len(self._profiles)

    def clear(self) -> None:
        """Drop the in-memory caches (the on-disk cache is untouched)."""
        self._profiles.clear()
        self._traces.clear()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _key(self, spec: BenchmarkSpec, machine: MachineConfig) -> Tuple[BenchmarkSpec, str]:
        # Keyed by the full (frozen, hashable) spec, not just its name, so
        # that redefining a benchmark under the same name never returns a
        # stale profile.
        return (spec, machine.profile_key())

    def _profiler_for(self, machine: MachineConfig) -> Profiler:
        key = machine.profile_key()
        if key not in self._profilers:
            self._profilers[key] = Profiler(
                machine=machine,
                num_instructions=self.num_instructions,
                interval_instructions=self.interval_instructions,
                seed=self.seed,
                kernel=self.kernel,
            )
        return self._profilers[key]

    def _simulate(self, spec: BenchmarkSpec, machine: MachineConfig) -> ProfiledBenchmark:
        profiled = self._profiler_for(machine).profile(spec)
        key = self._key(spec, machine)
        self._profiles[key] = profiled.profile
        self._traces[key] = profiled.llc_trace
        self.simulated_profiles += 1
        self._save_to_disk(spec, profiled.profile)
        return profiled

    def _disk_path(
        self, spec: BenchmarkSpec, machine_key: str, qualified: bool = True
    ) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        digest = 0
        description = (
            f"{machine_key}|{self.num_instructions}|{self.interval_instructions}|"
            f"{self.seed}|{spec!r}"
        )
        if qualified and self.workload_spec is not None:
            description = f"{self.workload_spec}|{description}"
        for char in description:
            digest = (digest * 131 + ord(char)) & 0xFFFFFFFF
        return self.cache_dir / f"{spec.name}-{digest:08x}.json"

    def _load_from_disk(
        self, spec: BenchmarkSpec, machine: MachineConfig
    ) -> Optional[SingleCoreProfile]:
        path = self._disk_path(spec, machine.profile_key())
        if path is None:
            return None
        data = read_json_tolerant(path)
        if data is None and self.workload_spec is not None:
            # Shared content-addressed layer (also covers payloads
            # written by pre-workload-spec stores): load and adopt the
            # profile under the qualified key.
            shared = self._disk_path(spec, machine.profile_key(), qualified=False)
            data = read_json_tolerant(shared)
            if data is not None:
                atomic_write_json(path, data)
        if data is None:
            return None
        return SingleCoreProfile.from_dict(data)

    def _save_to_disk(self, spec: BenchmarkSpec, profile: SingleCoreProfile) -> None:
        path = self._disk_path(spec, profile.machine_key)
        if path is None:
            return
        payload = profile.to_dict()
        atomic_write_json(path, payload)
        if self.workload_spec is not None:
            # The shared layer other workloads with bit-identical
            # benchmark specs (and legacy stores) read from.
            shared = self._disk_path(spec, profile.machine_key, qualified=False)
            atomic_write_json(shared, payload)
