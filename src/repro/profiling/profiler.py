"""The profiler: from benchmark specs to single-core profiles.

This is the "single-core simulation, one-time cost" box of the paper's
Figure 1: generate the benchmark's trace, run it in isolation on the
target machine with the detailed single-core simulator, and package the
per-interval measurements into a :class:`SingleCoreProfile`.  The
filtered LLC access trace produced by the same run is kept alongside
the profile because the multi-core *reference* simulator (the stand-in
for detailed CMP$im simulation) replays it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.config.machine import MachineConfig
from repro.profiling.profile import IntervalProfile, SingleCoreProfile
from repro.simulators.llc_trace import LLCAccessTrace
from repro.simulators.single_core import SingleCoreRunResult, SingleCoreSimulator
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.generator import TraceGenerator
from repro.workloads.suite import BenchmarkSuite


@dataclass(frozen=True)
class ProfiledBenchmark:
    """A benchmark's profile plus the LLC trace of the same isolated run."""

    profile: SingleCoreProfile
    llc_trace: LLCAccessTrace

    @property
    def name(self) -> str:
        return self.profile.benchmark


class Profiler:
    """Profiles benchmarks on a given machine.

    Parameters
    ----------
    machine:
        The target machine; profiling runs the benchmark in isolation
        on this machine's core and cache hierarchy.
    num_instructions:
        Trace length per benchmark.
    interval_instructions:
        Profiling interval (50 intervals per trace at the defaults,
        matching the paper's 50 x 20M structure).
    seed:
        Trace-generation seed.
    kernel:
        Replay kernel of the underlying simulator: ``"vectorized"``
        (default, batched stack distances) or ``"reference"``
        (per-access simulation).  Both yield bit-identical profiles.
    """

    def __init__(
        self,
        machine: MachineConfig,
        num_instructions: int = 200_000,
        interval_instructions: int = 4_000,
        seed: int = 0,
        kernel: str = "vectorized",
    ) -> None:
        self.machine = machine
        self.generator = TraceGenerator(num_instructions=num_instructions, seed=seed)
        self.simulator = SingleCoreSimulator(
            machine=machine, interval_instructions=interval_instructions, kernel=kernel
        )

    def profile(self, spec: BenchmarkSpec) -> ProfiledBenchmark:
        """Profile one benchmark (generate trace, simulate in isolation)."""
        trace = self.generator.generate(spec)
        run = self.simulator.run(trace)
        return ProfiledBenchmark(
            profile=profile_from_run(run, self.machine), llc_trace=run.llc_trace
        )

    def profile_suite(self, suite: BenchmarkSuite) -> Dict[str, ProfiledBenchmark]:
        """Profile every benchmark of a suite; returns name → profiled benchmark."""
        return {spec.name: self.profile(spec) for spec in suite}


def profile_from_run(run: SingleCoreRunResult, machine: MachineConfig) -> SingleCoreProfile:
    """Convert a raw single-core simulation result into a profile."""
    intervals = [
        IntervalProfile(
            index=measurement.index,
            instructions=measurement.instructions,
            cpi=measurement.cpi,
            memory_cpi=measurement.memory_cpi,
            llc_accesses=float(measurement.llc_accesses),
            llc_misses=float(measurement.llc_misses),
            sdc=measurement.sdc,
        )
        for measurement in run.intervals
    ]
    return SingleCoreProfile(
        benchmark=run.benchmark,
        machine_key=machine.profile_key(),
        machine_name=machine.name,
        interval_instructions=run.interval_instructions,
        intervals=intervals,
        llc_associativity=machine.llc.associativity,
    )
