"""Single-core profiles: the one-time input to MPPM.

The paper's workflow (its Figure 1) is: run every benchmark once in
isolation on the target machine, store the per-interval profile
(single-core CPI, memory CPI, stack-distance counters), and feed those
profiles to MPPM for any number of multi-program mixes.  This package
holds the profile data model, the profiler that produces profiles from
benchmark specs, and a caching store so that experiments never pay the
single-core simulation cost twice.
"""

from repro.profiling.profile import IntervalProfile, ProfileWindow, SingleCoreProfile
from repro.profiling.profiler import Profiler, ProfiledBenchmark
from repro.profiling.store import ProfileStore

__all__ = [
    "IntervalProfile",
    "ProfileWindow",
    "SingleCoreProfile",
    "Profiler",
    "ProfiledBenchmark",
    "ProfileStore",
]
