"""repro — a reproduction of the Multi-Program Performance Model (MPPM).

MPPM (Van Craeynest & Eeckhout, IISWC 2011) predicts multi-program
multi-core performance — per-program multi-core CPI, system throughput
(STP) and average normalized turnaround time (ANTT) — from single-core
simulation profiles only, using an iterative analytical model of
shared-cache contention.

The package layers, bottom-up:

* :mod:`repro.config` — machine configurations (Tables 1 and 2),
* :mod:`repro.workloads` — the unified Workload API: one spec-string
  registry (``make_workload``) covering the SPEC CPU2006-like suite,
  parametric ``random:*`` families and microservice-like ``service:*``
  benchmarks, plus trace generation and multi-program mix sampling,
* :mod:`repro.caches`, :mod:`repro.cores` — the cache and core timing
  substrate,
* :mod:`repro.simulators` — the detailed single-core profiler and the
  shared-LLC multi-core reference simulator (the CMP$im stand-in),
* :mod:`repro.profiling` — single-core profiles and their store,
* :mod:`repro.contention` — FOA and the other Chandra et al. models,
* :mod:`repro.core` — MPPM itself,
* :mod:`repro.predictors` — the unified Predictor API: one spec-string
  registry (``make_predictor``) covering MPPM variants, the baselines
  and detailed simulation,
* :mod:`repro.metrics` — STP/ANTT, errors, confidence intervals,
  Spearman rank correlation,
* :mod:`repro.engine` — the parallel experiment engine (job graphs,
  serial/process-pool backends, persistent result cache),
* :mod:`repro.experiments` — one harness per paper table/figure.

Quick start::

    from repro import quickstart_predict
    prediction = quickstart_predict(["gamess", "gamess", "hmmer", "soplex"])
    print(prediction.describe())
"""

from typing import Optional, Sequence

from repro.core import MPPM, MPPMConfig
from repro.core.result import MixPrediction
from repro.config import baseline_machine, llc_design_space, machine_with_llc, scaled
from repro.contention import available_contention_models, make_contention_model
from repro.predictors import (
    DEFAULT_PREDICTOR,
    Predictor,
    available_predictors,
    make_predictor,
)
from repro.simulators import KERNELS
from repro.workloads import (
    DEFAULT_WORKLOAD,
    GENERATOR_KERNELS,
    WorkloadMix,
    WorkloadSource,
    available_workloads,
    make_workload,
    spec_cpu2006_like_suite,
)
from repro.experiments import ExperimentConfig, ExperimentSetup, default_setup

__version__ = "1.2.0"

__all__ = [
    "MPPM",
    "MPPMConfig",
    "MixPrediction",
    "Predictor",
    "DEFAULT_PREDICTOR",
    "DEFAULT_WORKLOAD",
    "KERNELS",
    "GENERATOR_KERNELS",
    "WorkloadMix",
    "WorkloadSource",
    "available_contention_models",
    "available_predictors",
    "available_workloads",
    "baseline_machine",
    "machine_with_llc",
    "llc_design_space",
    "make_contention_model",
    "make_predictor",
    "make_workload",
    "scaled",
    "spec_cpu2006_like_suite",
    "ExperimentConfig",
    "ExperimentSetup",
    "default_setup",
    "quickstart_predict",
    "__version__",
]


def quickstart_predict(
    programs: Sequence[str],
    llc_config: int = 1,
    setup: Optional[ExperimentSetup] = None,
    predictor: Optional[str] = None,
) -> MixPrediction:
    """Predict multi-core performance for one workload mix in one call.

    ``programs`` is a list of benchmark names from the SPEC CPU2006-like
    suite (one per core, repetitions allowed).  The function profiles
    the required benchmarks on the (scaled) baseline machine with the
    requested Table 2 LLC configuration — a one-time cost cached in the
    setup — and runs the requested predictor (``predictor`` is a spec
    from :func:`available_predictors`; default MPPM with FOA) on the
    mix.
    """
    setup = setup if setup is not None else ExperimentSetup()
    mix = WorkloadMix(programs=tuple(programs))
    machine = setup.machine(num_cores=mix.num_programs, llc_config=llc_config)
    return setup.predict(mix, machine, predictor=predictor)
