"""An inductive-probability style contention model.

Chandra et al.'s third model (Prob) estimates, for every access with a
given stack distance, the probability that interleaved accesses from
co-scheduled threads push the reused line beyond the associativity
before it is reused.  This implementation follows the same idea in a
simplified closed form:

* between two consecutive accesses of program ``p`` to the same set,
  each co-runner ``q`` interleaves ``a_q / a_p`` accesses on average
  (access counts over the shared window),
* only the fraction of those accesses that bring *new* lines into the
  set pushes ``p``'s line deeper; that fraction is estimated from
  ``q``'s own stack-distance profile as its "unique line" rate (cold
  and deep accesses),
* an access of ``p`` with isolated stack distance ``d`` therefore sees
  an effective shared distance of ``d * (1 + sum_q r_q * u_q)`` and
  misses when that exceeds the associativity.

The model is intentionally more pessimistic than FOA for programs with
sparse reuse and is used in the contention-model ablation benchmark.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config.cache_config import CacheConfig
from repro.contention.base import (
    ContentionEstimate,
    ContentionModel,
    ProgramCacheDemand,
)


def _unique_line_rate(demand: ProgramCacheDemand) -> float:
    """Fraction of a program's accesses that insert a (newly fetched or deep) line."""
    total = demand.sdc.total_accesses
    if total <= 0:
        return 0.0
    return demand.sdc.misses / total


class InductiveProbabilityModel(ContentionModel):
    """Probabilistic dilation of stack distances by interleaved co-runner accesses."""

    name = "prob"

    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        self._validate(demands, llc)
        associativity = llc.associativity

        estimates: List[ContentionEstimate] = []
        for i, demand in enumerate(demands):
            isolated = demand.isolated_misses
            if demand.accesses <= 0 or len(demands) == 1:
                estimates.append(
                    ContentionEstimate(
                        name=demand.name, isolated_misses=isolated, shared_misses=isolated
                    )
                )
                continue

            dilation = 1.0
            for j, other in enumerate(demands):
                if j == i or other.accesses <= 0:
                    continue
                interleaving_ratio = other.accesses / demand.accesses
                dilation += interleaving_ratio * _unique_line_rate(other)

            # An isolated distance d becomes d * dilation when shared; the
            # access misses once that exceeds the associativity.  Accesses
            # at distance d survive sharing only if d <= A / dilation.
            surviving_ways = associativity / dilation
            shared = demand.sdc.misses_for_effective_ways(surviving_ways)
            shared = max(shared, isolated)
            estimates.append(
                ContentionEstimate(
                    name=demand.name, isolated_misses=isolated, shared_misses=shared
                )
            )
        return estimates
