"""An inductive-probability style contention model.

Chandra et al.'s third model (Prob) estimates, for every access with a
given stack distance, the probability that interleaved accesses from
co-scheduled threads push the reused line beyond the associativity
before it is reused.  This implementation follows the same idea in a
simplified closed form:

* between two consecutive accesses of program ``p`` to the same set,
  each co-runner ``q`` interleaves ``a_q / a_p`` accesses on average
  (access counts over the shared window),
* only the fraction of those accesses that bring *new* lines into the
  set pushes ``p``'s line deeper; that fraction is estimated from
  ``q``'s own stack-distance profile as its "unique line" rate (cold
  and deep accesses),
* an access of ``p`` with isolated stack distance ``d`` therefore sees
  an effective shared distance of ``d * (1 + sum_q r_q * u_q)`` and
  misses when that exceeds the associativity.

The model is intentionally more pessimistic than FOA for programs with
sparse reuse and is used in the contention-model ablation benchmark.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config.cache_config import CacheConfig
from repro.contention.base import (
    ContentionEstimate,
    ContentionModel,
    ProgramCacheDemand,
    interpolate_suffix_misses,
    suffix_miss_counts,
)


def _unique_line_rate(demand: ProgramCacheDemand) -> float:
    """Fraction of a program's accesses that insert a (newly fetched or deep) line."""
    total = demand.sdc.total_accesses
    if total <= 0:
        return 0.0
    return demand.sdc.misses / total


class InductiveProbabilityModel(ContentionModel):
    """Probabilistic dilation of stack distances by interleaved co-runner accesses."""

    name = "prob"

    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        self._validate(demands, llc)
        associativity = llc.associativity

        estimates: List[ContentionEstimate] = []
        for i, demand in enumerate(demands):
            isolated = demand.isolated_misses
            if demand.accesses <= 0 or len(demands) == 1:
                estimates.append(
                    ContentionEstimate(
                        name=demand.name, isolated_misses=isolated, shared_misses=isolated
                    )
                )
                continue

            dilation = 1.0
            for j, other in enumerate(demands):
                if j == i or other.accesses <= 0:
                    continue
                interleaving_ratio = other.accesses / demand.accesses
                dilation += interleaving_ratio * _unique_line_rate(other)

            # An isolated distance d becomes d * dilation when shared; the
            # access misses once that exceeds the associativity.  Accesses
            # at distance d survive sharing only if d <= A / dilation.
            surviving_ways = associativity / dilation
            shared = demand.sdc.misses_for_effective_ways(surviving_ways)
            shared = max(shared, isolated)
            estimates.append(
                ContentionEstimate(
                    name=demand.name, isolated_misses=isolated, shared_misses=shared
                )
            )
        return estimates

    def estimate_batch(
        self, counts: np.ndarray, instructions: np.ndarray, llc: CacheConfig
    ) -> np.ndarray:
        """Dilation accumulated co-runner by co-runner, as the scalar loop does.

        The inner loops run over programs (a handful of cores), not
        mixes, so the work per float stays a few array ops.  Co-runners
        with no accesses contribute an exact 0.0 term, which matches
        the scalar path skipping them (the dilation is at least 1.0,
        so adding 0.0 leaves it bitwise unchanged).
        """
        counts = np.asarray(counts, dtype=np.float64)
        self._validate_batch(counts, llc)
        num_mixes, num_programs, _ = counts.shape
        associativity = llc.associativity
        isolated = counts[..., associativity]
        if num_programs == 1:
            return isolated.copy()

        accesses = counts.sum(axis=-1)
        unique_rate = np.where(
            accesses > 0.0, isolated / np.where(accesses > 0.0, accesses, 1.0), 0.0
        )
        suffix = suffix_miss_counts(counts)
        shared = np.empty_like(accesses)
        for i in range(num_programs):
            own = accesses[:, i]
            safe_own = np.where(own > 0.0, own, 1.0)
            dilation = np.ones(num_mixes, dtype=np.float64)
            for j in range(num_programs):
                if j == i:
                    continue
                term = np.where(
                    accesses[:, j] > 0.0,
                    (accesses[:, j] / safe_own) * unique_rate[:, j],
                    0.0,
                )
                dilation = dilation + term
            surviving_ways = associativity / dilation
            contended = np.maximum(
                interpolate_suffix_misses(suffix[:, i], surviving_ways), isolated[:, i]
            )
            shared[:, i] = np.where(own > 0.0, contended, isolated[:, i])
        return shared
