"""The Stack Distance Competition (SDC) contention model.

Chandra et al.'s SDC model merges the co-scheduled programs'
stack-distance profiles to decide how many ways of each set every
program effectively owns: the A ways of the shared cache are handed
out one at a time, each time to the program that would gain the most
hits from one more way (i.e. the program with the largest counter at
its next unclaimed stack position).  Each program's shared-cache
misses are then its own misses at the number of ways it won.

Programs that win no way at all still keep one effective way's worth of
space in this implementation (a fully starved program would otherwise
predict a 100% miss rate, which LRU sharing does not produce in
practice and which destabilises MPPM's iteration).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config.cache_config import CacheConfig
from repro.contention.base import (
    ContentionEstimate,
    ContentionModel,
    ProgramCacheDemand,
    suffix_miss_counts,
)


class StackDistanceCompetitionModel(ContentionModel):
    """Stack-distance competition contention model (Chandra et al., HPCA 2005)."""

    name = "sdc"

    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        self._validate(demands, llc)
        associativity = llc.associativity
        num_programs = len(demands)

        if num_programs == 1:
            demand = demands[0]
            return [
                ContentionEstimate(
                    name=demand.name,
                    isolated_misses=demand.isolated_misses,
                    shared_misses=demand.isolated_misses,
                )
            ]

        # Competition: repeatedly give the next way to the program whose
        # next stack position holds the most accesses.
        won_ways = [0] * num_programs
        next_position = [0] * num_programs  # index into counts[0..A-1]
        for _ in range(associativity):
            best_program = -1
            best_value = -1.0
            for i, demand in enumerate(demands):
                position = next_position[i]
                if position >= associativity:
                    continue
                value = float(demand.sdc.counts[position])
                if value > best_value:
                    best_value = value
                    best_program = i
            if best_program < 0:
                break
            won_ways[best_program] += 1
            next_position[best_program] += 1

        estimates: List[ContentionEstimate] = []
        for i, demand in enumerate(demands):
            isolated = demand.isolated_misses
            effective_ways = max(1, won_ways[i]) if demand.accesses > 0 else associativity
            shared = demand.sdc.misses_for_ways(min(effective_ways, associativity))
            shared = max(shared, isolated)
            estimates.append(
                ContentionEstimate(
                    name=demand.name, isolated_misses=isolated, shared_misses=shared
                )
            )
        return estimates

    def estimate_batch(
        self, counts: np.ndarray, instructions: np.ndarray, llc: CacheConfig
    ) -> np.ndarray:
        """All mixes run the way-by-way competition in lock step.

        Every round, each mix's winner is the first program with the
        strictly greatest counter at its next unclaimed stack position
        — exactly the scalar loop's running-best scan (initialised to
        -1.0, so first occurrence of the maximum wins and exhausted
        programs, masked to -1.0, never do).  Mixes whose programs are
        all exhausted simply stop winning ways, which is the batched
        form of the scalar loop's early break.
        """
        counts = np.asarray(counts, dtype=np.float64)
        self._validate_batch(counts, llc)
        num_mixes, num_programs, _ = counts.shape
        associativity = llc.associativity
        isolated = counts[..., associativity]
        if num_programs == 1:
            return isolated.copy()

        accesses = counts.sum(axis=-1)
        won_ways = np.zeros((num_mixes, num_programs), dtype=np.int64)
        next_position = np.zeros((num_mixes, num_programs), dtype=np.int64)
        rows = np.arange(num_mixes)
        for _ in range(associativity):
            values = np.take_along_axis(counts, next_position[..., None], axis=-1)[..., 0]
            values = np.where(next_position >= associativity, -1.0, values)
            best_value = values.max(axis=1)
            winner = np.argmax(values == best_value[:, None], axis=1)
            live = best_value > -1.0
            won_ways[rows[live], winner[live]] += 1
            next_position[rows[live], winner[live]] += 1

        effective_ways = np.where(accesses > 0.0, np.maximum(won_ways, 1), associativity)
        effective_ways = np.minimum(effective_ways, associativity)
        shared = np.take_along_axis(
            suffix_miss_counts(counts), effective_ways[..., None], axis=-1
        )[..., 0]
        return np.maximum(shared, isolated)
