"""The Stack Distance Competition (SDC) contention model.

Chandra et al.'s SDC model merges the co-scheduled programs'
stack-distance profiles to decide how many ways of each set every
program effectively owns: the A ways of the shared cache are handed
out one at a time, each time to the program that would gain the most
hits from one more way (i.e. the program with the largest counter at
its next unclaimed stack position).  Each program's shared-cache
misses are then its own misses at the number of ways it won.

Programs that win no way at all still keep one effective way's worth of
space in this implementation (a fully starved program would otherwise
predict a 100% miss rate, which LRU sharing does not produce in
practice and which destabilises MPPM's iteration).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config.cache_config import CacheConfig
from repro.contention.base import (
    ContentionEstimate,
    ContentionModel,
    ProgramCacheDemand,
)


class StackDistanceCompetitionModel(ContentionModel):
    """Stack-distance competition contention model (Chandra et al., HPCA 2005)."""

    name = "sdc"

    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        self._validate(demands, llc)
        associativity = llc.associativity
        num_programs = len(demands)

        if num_programs == 1:
            demand = demands[0]
            return [
                ContentionEstimate(
                    name=demand.name,
                    isolated_misses=demand.isolated_misses,
                    shared_misses=demand.isolated_misses,
                )
            ]

        # Competition: repeatedly give the next way to the program whose
        # next stack position holds the most accesses.
        won_ways = [0] * num_programs
        next_position = [0] * num_programs  # index into counts[0..A-1]
        for _ in range(associativity):
            best_program = -1
            best_value = -1.0
            for i, demand in enumerate(demands):
                position = next_position[i]
                if position >= associativity:
                    continue
                value = float(demand.sdc.counts[position])
                if value > best_value:
                    best_value = value
                    best_program = i
            if best_program < 0:
                break
            won_ways[best_program] += 1
            next_position[best_program] += 1

        estimates: List[ContentionEstimate] = []
        for i, demand in enumerate(demands):
            isolated = demand.isolated_misses
            effective_ways = max(1, won_ways[i]) if demand.accesses > 0 else associativity
            shared = demand.sdc.misses_for_ways(min(effective_ways, associativity))
            shared = max(shared, isolated)
            estimates.append(
                ContentionEstimate(
                    name=demand.name, isolated_misses=isolated, shared_misses=shared
                )
            )
        return estimates
