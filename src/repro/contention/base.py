"""Interface shared by all cache-contention models.

A contention model answers one question: given the per-program
stack-distance counters (SDCs) over a window of co-executed
instructions, how many *additional* LLC misses does each program suffer
because the cache is shared?  Chandra et al. frame this as predicting
the shared-cache miss count from per-thread isolated profiles; MPPM
consumes the difference between that prediction and the isolated miss
count (the ``C>A`` counter).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.caches.stack_distance import StackDistanceCounters
from repro.config.cache_config import CacheConfig


class ContentionModelError(ValueError):
    """Raised when a contention model is given inconsistent inputs."""


@dataclass(frozen=True)
class ProgramCacheDemand:
    """One program's demand on the shared cache over a window.

    Attributes
    ----------
    name:
        Program identifier (benchmark name, or a per-core label when a
        mix contains several copies of the same benchmark).
    sdc:
        The program's stack-distance counters over the window, measured
        against the shared cache's geometry when running *alone*.
    instructions:
        Instructions the program executes in the window (used by models
        that need rates rather than raw counts).
    """

    name: str
    sdc: StackDistanceCounters
    instructions: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ContentionModelError(
                f"{self.name}: window instruction count must be positive"
            )

    @property
    def accesses(self) -> float:
        return self.sdc.total_accesses

    @property
    def isolated_misses(self) -> float:
        return self.sdc.misses

    @property
    def isolated_hits(self) -> float:
        return self.sdc.hits


@dataclass(frozen=True)
class ContentionEstimate:
    """Per-program outcome of the contention model for one window."""

    name: str
    isolated_misses: float
    shared_misses: float

    @property
    def extra_conflict_misses(self) -> float:
        """Additional misses due to sharing (never negative)."""
        return max(0.0, self.shared_misses - self.isolated_misses)


class ContentionModel(ABC):
    """Predicts shared-cache misses from isolated per-program SDCs."""

    name: str = "base"

    @abstractmethod
    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        """Estimate shared-LLC misses for each co-running program.

        ``demands`` holds one entry per core; ``llc`` is the shared
        cache being contended for.  Implementations must return one
        estimate per demand, in the same order.
        """

    def estimate_by_name(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> Dict[str, ContentionEstimate]:
        """Convenience wrapper returning a name-keyed dictionary."""
        return {estimate.name: estimate for estimate in self.estimate(demands, llc)}

    @staticmethod
    def _validate(demands: Sequence[ProgramCacheDemand], llc: CacheConfig) -> None:
        if not demands:
            raise ContentionModelError("at least one program demand is required")
        for demand in demands:
            if demand.sdc.associativity != llc.associativity:
                raise ContentionModelError(
                    f"{demand.name}: SDC associativity {demand.sdc.associativity} does not "
                    f"match the shared cache associativity {llc.associativity}"
                )
