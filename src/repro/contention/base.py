"""Interface shared by all cache-contention models.

A contention model answers one question: given the per-program
stack-distance counters (SDCs) over a window of co-executed
instructions, how many *additional* LLC misses does each program suffer
because the cache is shared?  Chandra et al. frame this as predicting
the shared-cache miss count from per-thread isolated profiles; MPPM
consumes the difference between that prediction and the isolated miss
count (the ``C>A`` counter).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.caches.stack_distance import StackDistanceCounters
from repro.config.cache_config import CacheConfig


def suffix_miss_counts(counts: np.ndarray) -> np.ndarray:
    """Batched ``misses_for_ways`` for every integer way count at once.

    ``counts[..., A+1]`` are stack-distance counter vectors; the result
    has the same shape with ``suffix[..., w]`` = the miss count at
    ``w`` ways (``counts[..., w:].sum()``).  Each suffix is summed over
    the same contiguous slice, in the same order, as the scalar
    :meth:`~repro.caches.stack_distance.StackDistanceCounters.misses_for_ways`,
    so the two agree bitwise.
    """
    suffix = np.empty_like(counts)
    for ways in range(counts.shape[-1]):
        suffix[..., ways] = counts[..., ways:].sum(axis=-1)
    return suffix


def interpolate_suffix_misses(suffix: np.ndarray, effective_ways: np.ndarray) -> np.ndarray:
    """Batched ``misses_for_effective_ways`` over precomputed suffix sums.

    Linear interpolation between the neighbouring integer way counts,
    with the same clamps (negative → 0, at or beyond the associativity
    → the plain miss count) and the same float operation order as the
    scalar method, so batch and scalar results are bit-identical.
    """
    associativity = suffix.shape[-1] - 1
    effective = np.maximum(np.asarray(effective_ways, dtype=np.float64), 0.0)
    capped = effective >= associativity
    lower = np.minimum(effective.astype(np.int64), associativity - 1)
    fraction = effective - lower
    at_lower = np.take_along_axis(suffix, lower[..., None], axis=-1)[..., 0]
    at_upper = np.take_along_axis(suffix, (lower + 1)[..., None], axis=-1)[..., 0]
    return np.where(
        capped, suffix[..., associativity], (1.0 - fraction) * at_lower + fraction * at_upper
    )


class ContentionModelError(ValueError):
    """Raised when a contention model is given inconsistent inputs."""


@dataclass(frozen=True)
class ProgramCacheDemand:
    """One program's demand on the shared cache over a window.

    Attributes
    ----------
    name:
        Program identifier (benchmark name, or a per-core label when a
        mix contains several copies of the same benchmark).
    sdc:
        The program's stack-distance counters over the window, measured
        against the shared cache's geometry when running *alone*.
    instructions:
        Instructions the program executes in the window (used by models
        that need rates rather than raw counts).
    """

    name: str
    sdc: StackDistanceCounters
    instructions: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ContentionModelError(
                f"{self.name}: window instruction count must be positive"
            )

    @property
    def accesses(self) -> float:
        return self.sdc.total_accesses

    @property
    def isolated_misses(self) -> float:
        return self.sdc.misses

    @property
    def isolated_hits(self) -> float:
        return self.sdc.hits


@dataclass(frozen=True)
class ContentionEstimate:
    """Per-program outcome of the contention model for one window."""

    name: str
    isolated_misses: float
    shared_misses: float

    @property
    def extra_conflict_misses(self) -> float:
        """Additional misses due to sharing (never negative)."""
        return max(0.0, self.shared_misses - self.isolated_misses)


class ContentionModel(ABC):
    """Predicts shared-cache misses from isolated per-program SDCs."""

    name: str = "base"

    @abstractmethod
    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        """Estimate shared-LLC misses for each co-running program.

        ``demands`` holds one entry per core; ``llc`` is the shared
        cache being contended for.  Implementations must return one
        estimate per demand, in the same order.
        """

    def estimate_by_name(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> Dict[str, ContentionEstimate]:
        """Convenience wrapper returning a name-keyed dictionary."""
        return {estimate.name: estimate for estimate in self.estimate(demands, llc)}

    def estimate_batch(
        self, counts: np.ndarray, instructions: np.ndarray, llc: CacheConfig
    ) -> np.ndarray:
        """Shared-cache miss counts for a whole batch of windows at once.

        ``counts[m, c, A+1]`` holds every program's stack-distance
        counters over its window, for ``m`` co-schedules of ``c``
        programs each; ``instructions[m, c]`` the matching window
        instruction counts.  Returns ``shared_misses[m, c]``,
        bit-identical per mix to running :meth:`estimate` on that mix's
        demands alone.  This base implementation loops over mixes, so
        any third-party model is batch-capable out of the box; the
        built-in models override it with vectorized array expressions.
        """
        counts = np.asarray(counts, dtype=np.float64)
        instructions = np.asarray(instructions, dtype=np.float64)
        self._validate_batch(counts, llc)
        shared = np.empty(counts.shape[:2], dtype=np.float64)
        for m in range(counts.shape[0]):
            demands = [
                ProgramCacheDemand(
                    name=f"core{c}",
                    sdc=StackDistanceCounters(
                        associativity=llc.associativity, counts=counts[m, c]
                    ),
                    instructions=float(instructions[m, c]),
                )
                for c in range(counts.shape[1])
            ]
            for c, estimate in enumerate(self.estimate(demands, llc)):
                shared[m, c] = estimate.shared_misses
        return shared

    @staticmethod
    def _validate_batch(counts: np.ndarray, llc: CacheConfig) -> None:
        if counts.ndim != 3 or counts.shape[1] < 1:
            raise ContentionModelError(
                "batched counts must have shape (mixes, programs, ways + 1) "
                f"with at least one program, got {counts.shape}"
            )
        if counts.shape[-1] != llc.associativity + 1:
            raise ContentionModelError(
                f"batched SDC width {counts.shape[-1] - 1} does not match the "
                f"shared cache associativity {llc.associativity}"
            )

    @staticmethod
    def _validate(demands: Sequence[ProgramCacheDemand], llc: CacheConfig) -> None:
        if not demands:
            raise ContentionModelError("at least one program demand is required")
        for demand in demands:
            if demand.sdc.associativity != llc.associativity:
                raise ContentionModelError(
                    f"{demand.name}: SDC associativity {demand.sdc.associativity} does not "
                    f"match the shared cache associativity {llc.associativity}"
                )
