"""The Frequency of Access (FOA) contention model.

FOA is the simplest of Chandra et al.'s models and the one the paper
uses: each co-scheduled program effectively owns a fraction of the
shared cache proportional to its access frequency.  The intuition is
that a program that accesses the cache more often brings in more data
and therefore occupies more space under LRU.

Concretely, for program ``p`` with access count ``a_p`` out of a window
total ``A_total``, its effective share of an A-way set is
``A * a_p / A_total`` ways.  Its shared-cache misses are then read off
its own stack-distance counters at that (fractional) number of ways,
interpolating between the neighbouring integer counters.  A program
running alone keeps the full cache and its isolated miss count.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config.cache_config import CacheConfig
from repro.contention.base import (
    ContentionEstimate,
    ContentionModel,
    ProgramCacheDemand,
    interpolate_suffix_misses,
    suffix_miss_counts,
)


class FOAModel(ContentionModel):
    """Frequency-of-access cache contention model (Chandra et al., HPCA 2005)."""

    name = "foa"

    def estimate(
        self, demands: Sequence[ProgramCacheDemand], llc: CacheConfig
    ) -> List[ContentionEstimate]:
        self._validate(demands, llc)
        total_accesses = sum(demand.accesses for demand in demands)
        estimates: List[ContentionEstimate] = []
        for demand in demands:
            isolated = demand.isolated_misses
            if total_accesses <= 0 or demand.accesses <= 0 or len(demands) == 1:
                # No traffic at all, or no co-runners: sharing changes nothing.
                estimates.append(
                    ContentionEstimate(
                        name=demand.name, isolated_misses=isolated, shared_misses=isolated
                    )
                )
                continue
            share = demand.accesses / total_accesses
            effective_ways = llc.associativity * share
            shared = demand.sdc.misses_for_effective_ways(effective_ways)
            # Sharing can only add misses: clamp at the isolated count.
            shared = max(shared, isolated)
            estimates.append(
                ContentionEstimate(
                    name=demand.name, isolated_misses=isolated, shared_misses=shared
                )
            )
        return estimates

    def estimate_batch(
        self, counts: np.ndarray, instructions: np.ndarray, llc: CacheConfig
    ) -> np.ndarray:
        """The proportional-share formula as one array expression per batch."""
        counts = np.asarray(counts, dtype=np.float64)
        self._validate_batch(counts, llc)
        num_programs = counts.shape[1]
        isolated = counts[..., llc.associativity]
        if num_programs == 1:
            return isolated.copy()
        accesses = counts.sum(axis=-1)
        # Accumulate the per-mix access totals program by program, in
        # the same left-to-right order as the scalar path's sum().
        total = accesses[:, 0].copy()
        for core in range(1, num_programs):
            total = total + accesses[:, core]
        share = accesses / np.where(total > 0.0, total, 1.0)[:, None]
        effective_ways = llc.associativity * share
        shared = interpolate_suffix_misses(suffix_miss_counts(counts), effective_ways)
        shared = np.maximum(shared, isolated)
        degenerate = (total <= 0.0)[:, None] | (accesses <= 0.0)
        return np.where(degenerate, isolated, shared)
