"""Shared-cache contention models.

MPPM needs, every iteration, an estimate of the *additional conflict
misses* each program suffers because it shares the LLC with its
co-runners.  The paper uses the Frequency of Access (FOA) model of
Chandra et al. (HPCA 2005) and stresses that the contention model is a
pluggable component (§2.3).  This package therefore defines a small
interface (:class:`ContentionModel`) and three implementations:

* :class:`FOAModel` — effective cache space proportional to access
  frequency (the paper's choice and the default),
* :class:`StackDistanceCompetitionModel` — Chandra et al.'s SDC model,
  which merges the programs' stack-distance profiles to decide how many
  ways each program effectively owns,
* :class:`InductiveProbabilityModel` — a probabilistic model in the
  spirit of Chandra et al.'s Prob model, estimating the chance that a
  reused line was evicted by interleaved co-runner accesses.

The latter two are used by the ablation benchmarks.
"""

from repro.contention.base import ContentionEstimate, ContentionModel, ProgramCacheDemand
from repro.contention.foa import FOAModel
from repro.contention.sdc_competition import StackDistanceCompetitionModel
from repro.contention.prob import InductiveProbabilityModel

__all__ = [
    "ContentionEstimate",
    "ContentionModel",
    "ProgramCacheDemand",
    "FOAModel",
    "StackDistanceCompetitionModel",
    "InductiveProbabilityModel",
    "available_contention_models",
    "make_contention_model",
]


_MODELS = {
    "foa": FOAModel,
    "sdc": StackDistanceCompetitionModel,
    "prob": InductiveProbabilityModel,
}


def available_contention_models() -> list:
    """All registered contention-model names, in registration order."""
    return list(_MODELS)


def make_contention_model(name: str) -> ContentionModel:
    """Construct a contention model by name (``"foa"``, ``"sdc"``, ``"prob"``)."""
    try:
        return _MODELS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown contention model {name!r}; available models: "
            + ", ".join(available_contention_models())
        ) from None
