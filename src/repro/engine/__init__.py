"""The parallel experiment engine.

The engine turns an experiment campaign — thousands of independent
profile / reference-simulation / MPPM-prediction units — into a
:class:`JobGraph` executed by an :class:`Executor` on an
interchangeable backend (:class:`SerialBackend` or
:class:`ProcessPoolBackend`), through a persistent :class:`ResultCache`
keyed by content hashes of everything a result depends on.

Guarantees:

* **Determinism** — results are ordered by job submission order, never
  completion order; a serial and a parallel run of the same graph are
  bit-identical.
* **Memoisation** — cached results are returned without recomputation,
  within a process and (with a cache directory) across processes.
* **Observability** — every job's fate is reported through a
  :class:`ProgressReporter` hook.

This is the seam every scaling direction plugs into: a new backend
(sharded, async, remote) only has to run picklable jobs in submission
order.
"""

from pathlib import Path
from typing import Optional, Union

from repro.engine.backends import ExecutorBackend, ProcessPoolBackend, SerialBackend
from repro.engine.cache import MISS, ResultCache, content_key, register_result_type
from repro.engine.executor import Executor
from repro.engine.job import Job, JobGraph, JobGraphError
from repro.engine.progress import CollectingReporter, ConsoleReporter, ProgressReporter

__all__ = [
    "Job",
    "JobGraph",
    "JobGraphError",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "Executor",
    "ResultCache",
    "MISS",
    "content_key",
    "register_result_type",
    "ProgressReporter",
    "ConsoleReporter",
    "CollectingReporter",
    "create_engine",
]


def create_engine(
    jobs: Union[int, str] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    reporter: Optional[ProgressReporter] = None,
    memory_cache: bool = False,
) -> Executor:
    """Build an executor from the two knobs every caller has.

    ``jobs`` selects the backend: 1 → serial, N → a process pool of N
    workers, or a ``fleet:`` spec string (``"fleet:localhost:2"``,
    ``"fleet:ssh=host1,host2"`` — see :mod:`repro.engine.remote`) → a
    multi-host fleet.  ``cache_dir`` is the campaign cache directory —
    engine results are persisted under ``<cache_dir>/results``, next to
    the profile store's ``<cache_dir>/profiles``; a loopback fleet's
    workers share it, making the content-hash cache the fleet-wide
    dedup layer.  ``memory_cache`` gives the executor a memory-only
    :class:`ResultCache` when no cache directory is configured, so
    long-running callers (the prediction service) still memoise and
    deduplicate repeated work without touching disk.
    """
    backend: ExecutorBackend
    if isinstance(jobs, str):
        from repro.engine.remote import FleetBackend

        backend = FleetBackend(
            jobs, cache_dir=str(cache_dir) if cache_dir is not None else None
        )
    else:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        backend = SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    cache: Optional[ResultCache] = None
    if cache_dir is not None:
        cache = ResultCache(Path(cache_dir) / "results")
    elif memory_cache:
        cache = ResultCache(None)
    return Executor(backend=backend, cache=cache, reporter=reporter)
