"""The executor: graphs in, deterministically ordered results out.

The executor ties together the four engine pieces: it resolves jobs
against the :class:`~repro.engine.cache.ResultCache`, prunes optional
warm-up jobs nobody needs, runs the remaining waves on the configured
backend (deduplicating identical work within a wave), stores fresh
results back into the cache, and reports progress throughout.

Execution is deterministic by construction: results are keyed and
ordered by job submission order, never by completion order, so a
serial run and a parallel run of the same graph produce bit-identical
result sequences.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.backends import ExecutorBackend, SerialBackend
from repro.engine.cache import MISS, ResultCache
from repro.engine.job import Job, JobGraph
from repro.engine.progress import ProgressReporter


class Executor:
    """Runs job graphs on a backend, through an optional result cache.

    Parameters
    ----------
    backend:
        Where jobs execute; defaults to :class:`SerialBackend`.
    cache:
        Optional :class:`ResultCache` consulted before any job runs.
    reporter:
        Optional :class:`ProgressReporter` receiving per-job events.
    """

    def __init__(
        self,
        backend: Optional[ExecutorBackend] = None,
        cache: Optional[ResultCache] = None,
        reporter: Optional[ProgressReporter] = None,
    ) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self.cache = cache
        self.reporter = reporter if reporter is not None else ProgressReporter()

    @property
    def jobs(self) -> int:
        """Worker count of the backend (1 for serial execution)."""
        return self.backend.jobs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, graph: Union[JobGraph, Iterable[Job]]) -> Dict[str, Any]:
        """Execute a graph; returns ``{job key: result}`` in submission order.

        Optional (warm-up) jobs that were skipped do not appear in the
        result mapping.
        """
        if not isinstance(graph, JobGraph):
            graph = JobGraph(graph)
        waves = graph.waves()

        self.reporter.on_start(len(graph))
        results: Dict[str, Any] = {}
        cached_keys = self._resolve_from_cache(graph, results)
        skipped_jobs = self._prune_optional(graph, cached_keys)
        skipped = {job.key for job in skipped_jobs}
        for job in skipped_jobs:
            self.reporter.on_job(job, "skipped")

        for wave in waves:
            pending = [job for job in wave if job.key not in results and job.key not in skipped]
            self._run_wave(pending, results)
        self.reporter.on_finish()

        # Deterministic ordering: submission order of the graph.
        return {job.key: results[job.key] for job in graph if job.key in results}

    def map(self, jobs: Sequence[Job]) -> List[Any]:
        """Run independent jobs; results in the order the jobs were given."""
        results = self.run(JobGraph(jobs))
        return [results[job.key] for job in jobs]

    def is_cached(self, cache_key: Optional[str]) -> bool:
        """Whether a content key would hit the result cache (no side effects)."""
        return cache_key is not None and self.cache is not None and cache_key in self.cache

    def store(self, cache_key: Optional[str], value: Any) -> None:
        """Store one result under a content key, as :meth:`run` would have.

        Batch jobs compute many logical results in one task; the caller
        scatters them and stores each under the per-result key it would
        have had as an individual job, keeping the cache (and its
        ``stores`` counter) indistinguishable from a per-op run.
        """
        if self.cache is not None and cache_key is not None:
            self.cache.put(cache_key, value)

    def cache_stats(self) -> Dict[str, int]:
        """The result cache's live counters (all zero without a cache)."""
        if self.cache is None:
            return {"entries": 0, "hits": 0, "misses": 0, "stores": 0, "loaded": 0}
        return self.cache.stats()

    def refresh_workers(self) -> None:
        """Recycle backend workers (see :meth:`ExecutorBackend.refresh`)."""
        self.backend.refresh()

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internal phases
    # ------------------------------------------------------------------

    def _resolve_from_cache(self, graph: JobGraph, results: Dict[str, Any]) -> set:
        """Fill ``results`` with cache hits; returns the hit keys."""
        hits: set = set()
        if self.cache is None:
            return hits
        for job in graph:
            if job.cache_key is None:
                continue
            value = self.cache.get(job.cache_key)
            if value is not MISS:
                results[job.key] = value
                hits.add(job.key)
                self.reporter.on_job(job, "cached")
        return hits

    def _prune_optional(self, graph: JobGraph, cached: set) -> List[Job]:
        """Optional jobs are dropped when no surviving job depends on them.

        A fully warm cache therefore performs *zero* computation: the
        mix jobs resolve from the cache and the profile warm-up wave is
        skipped entirely.
        """
        optional = [job for job in graph if job.optional and job.key not in cached]
        if not optional:
            return []
        needed: set = set()
        for job in graph:
            if job.key in cached or job.optional:
                continue
            stack = list(job.deps)
            while stack:
                dep = stack.pop()
                if dep in needed:
                    continue
                needed.add(dep)
                stack.extend(graph.job(dep).deps)
        return [job for job in optional if job.key not in needed]

    def _run_wave(self, wave: Sequence[Job], results: Dict[str, Any]) -> None:
        if not wave:
            return
        # Re-check the cache: an earlier wave may have stored a result
        # under the same content key (repeated mixes across trials).
        pending: List[Job] = []
        for job in wave:
            if self.cache is not None and job.cache_key is not None:
                value = self.cache.get(job.cache_key)
                if value is not MISS:
                    results[job.key] = value
                    self.reporter.on_job(job, "cached")
                    continue
            pending.append(job)

        # Deduplicate identical work within the wave by content key.
        representatives: List[Job] = []
        aliases: Dict[str, List[Job]] = {}
        seen: Dict[str, Job] = {}
        for job in pending:
            if job.cache_key is not None and job.cache_key in seen:
                aliases.setdefault(seen[job.cache_key].key, []).append(job)
                continue
            if job.cache_key is not None:
                seen[job.cache_key] = job
            representatives.append(job)

        local = [job for job in representatives if job.local]
        pooled = [job for job in representatives if not job.local]
        # Local (warm-up) jobs run first so a lazily forked pool
        # inherits their side effects.
        local_results = SerialBackend().run(local)
        pooled_results = self.backend.run(pooled)

        for job, value in zip(local + pooled, local_results + pooled_results):
            self._record(job, value, results)
            for alias in aliases.get(job.key, ()):
                results[alias.key] = value
                self.reporter.on_job(alias, "shared")

    def _record(self, job: Job, value: Any, results: Dict[str, Any]) -> None:
        results[job.key] = value
        if self.cache is not None and job.cache_key is not None:
            self.cache.put(job.cache_key, value)
        self.reporter.on_job(job, "done")
