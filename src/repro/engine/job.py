"""Jobs and job graphs: the unit of work of the experiment engine.

A :class:`Job` is one independent unit of an experiment campaign —
profile this benchmark on this machine, reference-simulate this mix,
MPPM-predict this mix — expressed as a picklable top-level function
plus its (picklable) arguments, so the same job runs unchanged in the
parent process or in a worker of a process pool.

A :class:`JobGraph` collects jobs with explicit dependencies and
linearises them into *waves*: lists of jobs whose dependencies are all
satisfied by earlier waves, in submission order.  Dependencies are
ordering constraints (run the profile wave before the mix wave so that
forked pool workers inherit a warm profile store); jobs do not consume
each other's return values — every job is self-contained so it can run
in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


class JobGraphError(ValueError):
    """Raised for malformed job graphs (duplicate keys, missing deps, cycles)."""


@dataclass(frozen=True)
class Job:
    """One unit of work.

    Parameters
    ----------
    key:
        Unique identifier within a graph; results are keyed by it.
    fn:
        A module-level callable (must be picklable for the process-pool
        backend).
    args, kwargs:
        Arguments for ``fn``; must be picklable for the process-pool
        backend.
    deps:
        Keys of jobs that must complete before this one starts.
    kind:
        Free-form label (``"profile"``, ``"simulate"``, ``"predict"``)
        used by progress reporting.
    cache_key:
        Content-hash key for the :class:`~repro.engine.cache.ResultCache`;
        ``None`` disables result caching for this job.
    local:
        Run in the submitting process even under a process-pool backend.
        Used for warm-up work whose side effects (e.g. a warm profile
        store) the forked workers should inherit.
    optional:
        A warm-up job that may be skipped when every job depending on it
        is served from the result cache.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    kind: str = "job"
    cache_key: Optional[str] = None
    local: bool = False
    optional: bool = False

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


class JobGraph:
    """An ordered collection of jobs with dependency edges."""

    def __init__(self, jobs: Iterable[Job] = ()) -> None:
        self._jobs: Dict[str, Job] = {}
        for job in jobs:
            self.add(job)

    def add(self, job: Job) -> Job:
        if job.key in self._jobs:
            raise JobGraphError(f"duplicate job key {job.key!r}")
        self._jobs[job.key] = job
        return job

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, key: str) -> bool:
        return key in self._jobs

    def job(self, key: str) -> Job:
        try:
            return self._jobs[key]
        except KeyError:
            raise JobGraphError(f"no job with key {key!r}") from None

    def validate(self) -> None:
        """Check that every dependency exists (cycles surface in :meth:`waves`)."""
        for job in self:
            for dep in job.deps:
                if dep not in self._jobs:
                    raise JobGraphError(f"job {job.key!r} depends on unknown job {dep!r}")

    def waves(self) -> List[List[Job]]:
        """Topological levels: each wave depends only on earlier waves.

        Jobs keep their submission order within a wave, so execution —
        and therefore result ordering — is deterministic regardless of
        how the graph was assembled.
        """
        self.validate()
        remaining: Dict[str, Job] = dict(self._jobs)
        done: set = set()
        waves: List[List[Job]] = []
        while remaining:
            wave = [job for job in remaining.values() if all(d in done for d in job.deps)]
            if not wave:
                cycle = ", ".join(sorted(remaining))
                raise JobGraphError(f"dependency cycle among jobs: {cycle}")
            waves.append(wave)
            for job in wave:
                done.add(job.key)
                del remaining[job.key]
        return waves

    def dependents(self) -> Dict[str, List[str]]:
        """Reverse dependency map: job key -> keys of jobs that depend on it."""
        reverse: Dict[str, List[str]] = {key: [] for key in self._jobs}
        for job in self:
            for dep in job.deps:
                reverse[dep].append(job.key)
        return reverse
