"""Execution backends: where jobs actually run.

Both backends take a list of jobs and return their results **in
submission order**, regardless of completion order, so that everything
downstream of the engine is deterministic and a serial run and a
parallel run of the same graph are bit-identical.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Sequence

from repro.engine.job import Job


class ExecutorBackend(ABC):
    """Runs batches of independent jobs."""

    #: Worker count the backend effectively uses (1 for serial).
    jobs: int = 1

    @abstractmethod
    def run(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute the jobs; results in submission order."""

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def refresh(self) -> None:
        """Recycle workers so the next batch observes fresh parent state.

        With a fork-based process pool this makes parent-side caches
        populated *between* batches (e.g. absorbed profiles) visible to
        the workers of the next batch.  No-op for in-process execution.
        """


class SerialBackend(ExecutorBackend):
    """Run every job inline in the submitting process."""

    jobs = 1

    def run(self, jobs: Sequence[Job]) -> List[Any]:
        return [job.run() for job in jobs]


def _run_job(job: Job) -> Any:
    """Top-level trampoline so a Job executes in a pool worker."""
    return job.run()


class ProcessPoolBackend(ExecutorBackend):
    """Fan jobs out over a ``concurrent.futures`` process pool.

    The pool is created lazily on the first parallel batch: with the
    default ``fork`` start method the workers therefore inherit every
    side effect of earlier *local* jobs — most importantly a warm
    profile store — for free.  Results are gathered in submission
    order, so completion-order races cannot reorder anything.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.jobs = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if self.jobs <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def run(self, jobs: Sequence[Job]) -> List[Any]:
        if not jobs:
            return []
        pool = self._ensure_pool()
        futures = [pool.submit(_run_job, job) for job in jobs]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def refresh(self) -> None:
        self.close()
