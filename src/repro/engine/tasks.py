"""Picklable experiment tasks and their job constructors.

A job that must run in a process-pool worker cannot close over an
:class:`~repro.experiments.setup.ExperimentSetup` (the setup holds
caches, a profiler and possibly a process pool of its own).  Instead,
every task carries the setup's *recipe* — its token, its
:class:`ExperimentConfig`, its suite, its workload spec string and its
cache directory — and resolves it through a per-process registry:

* in the submitting process (serial backend, local jobs) the token maps
  to the live setup, so in-memory caches keep working exactly as for
  the inline code paths;
* in a forked worker the registry — including the live setup and every
  profile it had already computed — is inherited at fork time;
* in a spawned worker (or a fork that predates the setup) the setup is
  rebuilt once from the recipe and reused for every subsequent task the
  worker executes; with a cache directory configured it loads profiles
  from disk instead of re-simulating them.

The ``*_job`` constructors build :class:`~repro.engine.job.Job` objects
with content-hash cache keys covering everything the result depends on:
machine configuration, workload spec, benchmark/mix specification,
model configuration, trace length and seed.
"""

from __future__ import annotations

import itertools
import os
import weakref
from typing import TYPE_CHECKING, Optional, Tuple

from repro.engine.cache import content_key
from repro.engine.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.core.mppm import MPPMConfig
    from repro.core.result import MixPrediction
    from repro.experiments.setup import ExperimentConfig, ExperimentSetup
    from repro.profiling.profile import SingleCoreProfile
    from repro.simulators.multi_core import MultiCoreRunResult
    from repro.workloads.benchmark import BenchmarkSpec
    from repro.workloads.mixes import WorkloadMix
    from repro.workloads.suite import BenchmarkSuite

#: Setups registered by the parent process (weak: tests create many).
_REGISTERED: "weakref.WeakValueDictionary[str, ExperimentSetup]" = weakref.WeakValueDictionary()
#: Setups reconstructed inside a worker process (strong: reused across tasks).
_RECONSTRUCTED: dict = {}
_TOKENS = itertools.count()


def register_setup(setup: "ExperimentSetup") -> str:
    """Register a live setup; returns the token tasks use to find it."""
    token = f"setup-{os.getpid()}-{next(_TOKENS)}"
    _REGISTERED[token] = setup
    return token


def _resolve_setup(
    token: str,
    config: "ExperimentConfig",
    suite: "BenchmarkSuite",
    workload_spec: str,
    cache_dir: Optional[str],
) -> "ExperimentSetup":
    setup = _REGISTERED.get(token)
    if setup is None:
        setup = _RECONSTRUCTED.get(token)
    if setup is None:
        from repro.experiments.setup import ExperimentSetup
        from repro.workloads import RegisteredWorkload

        # The shipped suite object is authoritative; the spec string
        # keeps cache keys and profile files identical to the parent's.
        workload = RegisteredWorkload(
            workload_spec, f"workload {workload_spec}", lambda: suite
        )
        setup = ExperimentSetup(
            config=config, suite=suite, workload=workload, cache_dir=cache_dir
        )
        _RECONSTRUCTED[token] = setup
    return setup


# ---------------------------------------------------------------------------
# Task functions (top-level, picklable)
# ---------------------------------------------------------------------------


def profile_task(
    token: str,
    config: "ExperimentConfig",
    suite: "BenchmarkSuite",
    workload_spec: str,
    cache_dir: Optional[str],
    spec: "BenchmarkSpec",
    machine: "MachineConfig",
) -> "SingleCoreProfile":
    setup = _resolve_setup(token, config, suite, workload_spec, cache_dir)
    return setup.store.get_profile(spec, machine)


def profile_bundle_task(
    token: str,
    config: "ExperimentConfig",
    suite: "BenchmarkSuite",
    workload_spec: str,
    cache_dir: Optional[str],
    spec: "BenchmarkSpec",
    machine: "MachineConfig",
):
    """Profile one benchmark and return the full (profile, LLC trace) bundle.

    Unlike :func:`profile_task` — whose point is the *side effect* of a
    warm store in the executing process — this task returns everything
    the submitting process needs to adopt the profile into its own
    store (:meth:`ProfileStore.absorb`), so the one-time profiling cost
    itself can fan out over pool workers.
    """
    setup = _resolve_setup(token, config, suite, workload_spec, cache_dir)
    return setup.store.get(spec, machine)


def simulate_task(
    token: str,
    config: "ExperimentConfig",
    suite: "BenchmarkSuite",
    workload_spec: str,
    cache_dir: Optional[str],
    mix: "WorkloadMix",
    machine: "MachineConfig",
) -> "MultiCoreRunResult":
    setup = _resolve_setup(token, config, suite, workload_spec, cache_dir)
    return setup.simulate(mix, machine)


def predict_task(
    token: str,
    config: "ExperimentConfig",
    suite: "BenchmarkSuite",
    workload_spec: str,
    cache_dir: Optional[str],
    predictor: str,
    mix: "WorkloadMix",
    machine: "MachineConfig",
    contention_model=None,
    mppm_config: Optional["MPPMConfig"] = None,
) -> "MixPrediction":
    setup = _resolve_setup(token, config, suite, workload_spec, cache_dir)
    if contention_model is not None:
        # Ablation override: the instance replaces the spec's model
        # (setup.predict rejects spec + instance together).
        return setup.predict(
            mix, machine, contention_model=contention_model, mppm_config=mppm_config
        )
    return setup.predict(mix, machine, predictor=predictor, mppm_config=mppm_config)


def predict_mppm_batch_task(
    token: str,
    config: "ExperimentConfig",
    suite: "BenchmarkSuite",
    workload_spec: str,
    cache_dir: Optional[str],
    predictor: str,
    items: Tuple[Tuple["WorkloadMix", "MachineConfig"], ...],
    mppm_config: Optional["MPPMConfig"] = None,
):
    """Solve many (mix, machine) pairs of one ``mppm:*`` spec in one pass.

    Returns the list of predictions in item order.  The submitting
    process scatters them to the per-op results and stores each under
    its per-op predict cache key, so a batched sweep populates exactly
    the same cache entries as per-op jobs would have.
    """
    setup = _resolve_setup(token, config, suite, workload_spec, cache_dir)
    return setup.predictor(predictor, mppm_config=mppm_config).predict_batch(items)


# ---------------------------------------------------------------------------
# Job constructors
# ---------------------------------------------------------------------------


def _recipe(setup: "ExperimentSetup") -> Tuple:
    cache_dir = str(setup.cache_dir) if setup.cache_dir is not None else None
    return (setup.token, setup.config, setup.suite, setup.workload_spec, cache_dir)


def _config_parts(setup: "ExperimentSetup") -> Tuple:
    # The replay kernel is deliberately NOT part of the cache key: the
    # vectorized and reference kernels produce bit-identical results
    # (asserted by the equivalence suite), so artefacts computed under
    # either remain valid for both.  The MPPM solver kernel and the
    # multi-core interleaving kernel are excluded for the same reason
    # (batched/reference predictions and chunked/heap/scan reference
    # simulations are bit-identical).
    # The workload spec qualifies every result: two workloads that
    # both contain a benchmark named "gamess" must never share a cache
    # entry, even inside one campaign cache directory.
    config = setup.config
    return (
        setup.workload_spec,
        config.num_instructions,
        config.interval_instructions,
        config.seed,
    )


def profile_job(
    setup: "ExperimentSetup",
    spec: "BenchmarkSpec",
    machine: "MachineConfig",
    key: Optional[str] = None,
    optional: bool = False,
) -> Job:
    """Warm the profile store for one (benchmark, machine) pair.

    Profile persistence is handled by the :class:`ProfileStore` itself,
    so the job carries no result-cache key; it runs locally so forked
    pool workers inherit the warm store.
    """
    return Job(
        key=key if key is not None else f"profile:{machine.profile_key()}:{spec.name}",
        fn=profile_task,
        args=_recipe(setup) + (spec, machine),
        kind="profile",
        local=True,
        optional=optional,
    )


def profile_bundle_job(
    setup: "ExperimentSetup",
    spec: "BenchmarkSpec",
    machine: "MachineConfig",
    key: str,
) -> Job:
    """Profile one (benchmark, machine) pair on a pool worker."""
    return Job(
        key=key,
        fn=profile_bundle_task,
        args=_recipe(setup) + (spec, machine),
        kind="profile",
    )


def simulate_cache_key(
    setup: "ExperimentSetup", mix: "WorkloadMix", machine: "MachineConfig"
) -> str:
    """The content key one (mix, machine) reference simulation is cached under.

    Shared between simulate jobs and consumers that *read* detailed
    results from the cache (the ``learned:`` predictor trains on these
    entries), so a simulation computed by any path is found by all.
    """
    return content_key(
        "simulate",
        machine.profile_key(),
        mix.num_programs,
        mix.programs,
        *_config_parts(setup),
    )


def simulate_job(
    setup: "ExperimentSetup",
    mix: "WorkloadMix",
    machine: "MachineConfig",
    key: str,
    deps: Tuple[str, ...] = (),
) -> Job:
    """Reference-simulate one mix on one machine (result-cached)."""
    cache_key = simulate_cache_key(setup, mix, machine)
    return Job(
        key=key,
        fn=simulate_task,
        args=_recipe(setup) + (mix, machine),
        deps=deps,
        kind="simulate",
        cache_key=cache_key,
    )


def predict_job(
    setup: "ExperimentSetup",
    mix: "WorkloadMix",
    machine: "MachineConfig",
    key: str,
    deps: Tuple[str, ...] = (),
    predictor: Optional[str] = None,
    contention_model=None,
    mppm_config: Optional["MPPMConfig"] = None,
) -> Job:
    """Predict one mix on one machine with one registry predictor.

    ``predictor`` is a spec from :mod:`repro.predictors` (default
    ``mppm:foa``); the cache key covers ``(spec, mix, machine)`` plus
    the setup recipe, so heterogeneous predictor sweeps cache and
    parallelise through the same :class:`ResultCache`/process pool as
    homogeneous ones.  Predictions are result-cached when they are a
    pure function of the recipe: a registry spec, and either the
    default MPPM configuration or an explicit (frozen, reproducibly
    ``repr``-able) :class:`MPPMConfig`.  A custom contention model
    instance has no content-stable representation, so those
    predictions always run.  A ``detailed``-spec job is labelled
    ``kind="simulate"`` because it replays LLC traces — the parallel
    warm-up phase uses the kind to decide what to pre-compute.
    """
    from repro.predictors import DEFAULT_PREDICTOR, canonical_spec, predictor_requires_traces

    spec = canonical_spec(predictor if predictor is not None else DEFAULT_PREDICTOR)
    cache_key = None
    if contention_model is None:
        cache_key = predict_cache_key(setup, spec, mix, machine, mppm_config)
    return Job(
        key=key,
        fn=predict_task,
        args=_recipe(setup) + (spec, mix, machine, contention_model, mppm_config),
        deps=deps,
        kind="simulate" if predictor_requires_traces(spec) else "predict",
        cache_key=cache_key,
    )


def predict_cache_key(
    setup: "ExperimentSetup",
    spec: str,
    mix: "WorkloadMix",
    machine: "MachineConfig",
    mppm_config: Optional["MPPMConfig"] = None,
) -> str:
    """The content key one (spec, mix, machine) prediction is cached under.

    Shared between per-op predict jobs and the batched MPPM sweep (which
    computes many predictions in one job but stores each under the key a
    per-op job would have used, so the cache cannot tell the difference).
    """
    return content_key(
        "predict",
        spec,
        machine.profile_key(),
        machine.num_cores,
        mix.programs,
        repr(mppm_config),
        *_config_parts(setup),
    )


def predict_mppm_batch_job(
    setup: "ExperimentSetup",
    items: Tuple[Tuple["WorkloadMix", "MachineConfig"], ...],
    key: str,
    deps: Tuple[str, ...] = (),
    predictor: str = "mppm:foa",
    mppm_config: Optional["MPPMConfig"] = None,
) -> Job:
    """Batch-solve many (mix, machine) pairs of one ``mppm:*`` spec.

    The job itself carries no result-cache key (its value is a list);
    the caller scatters the returned predictions and stores each under
    its :func:`predict_cache_key` via :meth:`Executor.store`.
    """
    return Job(
        key=key,
        fn=predict_mppm_batch_task,
        args=_recipe(setup) + (predictor, tuple(items), mppm_config),
        deps=deps,
        kind="predict",
        cache_key=None,
    )
