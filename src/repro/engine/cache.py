"""Persistent result cache for the experiment engine.

Extends the :class:`~repro.profiling.store.ProfileStore` pattern —
in-memory dictionary backed by JSON files — to every expensive artefact
of an experiment campaign: reference multi-core simulations, MPPM
predictions and single-core profiles.  Entries are keyed by a content
hash of everything the result depends on (machine configuration, the
workload spec string, benchmark/mix specification, model
configuration, trace length, seed — see
:func:`repro.engine.tasks._config_parts`), so a repeated sweep is
near-free across processes and sessions and two workloads sharing a
benchmark name can never collide in one cache directory.

Results are serialised through a small type registry: any dataclass
with ``to_dict``/``from_dict`` can be registered.  Unregistered types
still cache in memory within the process; they are simply not persisted.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.io import atomic_write_json, read_json_tolerant


def content_key(*parts: Any) -> str:
    """A stable content hash over the given parts.

    Parts are joined by their ``str`` form; callers must only pass
    values with stable, content-determined string representations
    (strings, numbers, tuples of those, frozen dataclasses).
    """
    description = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(description.encode("utf-8")).hexdigest()[:32]


class _Miss:
    """Sentinel for cache misses (``None`` is a legal cached value)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache miss>"


MISS = _Miss()

#: type name -> (class, to_payload, from_payload)
_SERIALIZERS: Dict[str, Tuple[type, Callable[[Any], Dict], Callable[[Dict], Any]]] = {}


def register_result_type(
    cls: type,
    to_payload: Optional[Callable[[Any], Dict]] = None,
    from_payload: Optional[Callable[[Dict], Any]] = None,
) -> None:
    """Make a result type persistable (defaults to ``to_dict``/``from_dict``)."""
    _SERIALIZERS[cls.__name__] = (
        cls,
        to_payload if to_payload is not None else (lambda value: value.to_dict()),
        from_payload if from_payload is not None else cls.from_dict,
    )


def serialize_result(value: Any) -> Optional[Dict]:
    """The ``{"type", "payload"}`` envelope for a registered result type.

    Returns ``None`` for unregistered types.  This is the single
    serialisation used both for disk persistence and for shipping
    results between fleet hosts (:mod:`repro.engine.remote.protocol`),
    so a result harvested over the wire is byte-for-byte the entry a
    local run would have written.
    """
    entry = _SERIALIZERS.get(type(value).__name__)
    if entry is None or not isinstance(value, entry[0]):
        return None
    return {"type": type(value).__name__, "payload": entry[1](value)}


def deserialize_result(data: Any) -> Any:
    """Rebuild a value from its registry envelope.

    Raises ``KeyError``/``TypeError`` for foreign or truncated payloads;
    the disk cache treats those as a miss, the fleet protocol treats
    them as a corrupt worker payload.
    """
    entry = _SERIALIZERS[data["type"]]
    return entry[2](data["payload"])


class ResultCache:
    """Two-level (memory, disk) cache of experiment results.

    Parameters
    ----------
    cache_dir:
        Optional directory for JSON persistence; ``None`` keeps the
        cache memory-only.
    """

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.loaded = 0

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> Dict[str, int]:
        """Live counters (entries, hits, misses, stores, loaded).

        ``stores`` counts results actually computed and recorded, so a
        consumer can prove a warm sweep recomputed nothing by comparing
        the counter before and after (the service's ``/stats`` endpoint
        does exactly this).
        """
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "loaded": self.loaded,
        }

    def __contains__(self, key: str) -> bool:
        return self._memory.__contains__(key) or (
            self._path(key) is not None and self._path(key).exists()
        )

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        loaded = self._load_from_disk(key)
        if loaded is not MISS:
            self._memory[key] = loaded
            self.hits += 1
            self.loaded += 1
            return loaded
        self.misses += 1
        return MISS

    def put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self.stores += 1
        self._save_to_disk(key, value)

    def clear_memory(self) -> None:
        """Drop the in-memory level (the on-disk cache is untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # Disk level
    # ------------------------------------------------------------------

    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def _load_from_disk(self, key: str) -> Any:
        path = self._path(key)
        if path is None:
            return MISS
        data = read_json_tolerant(path)
        try:
            # A foreign or truncated payload is a miss, like corruption.
            return deserialize_result(data)
        except (TypeError, KeyError):
            return MISS

    def _save_to_disk(self, key: str, value: Any) -> None:
        path = self._path(key)
        if path is None:
            return
        envelope = serialize_result(value)
        if envelope is None:
            return
        atomic_write_json(path, envelope)


def _register_builtin_types() -> None:
    from repro.core.result import MixPrediction
    from repro.profiling.profile import SingleCoreProfile
    from repro.simulators.multi_core import MultiCoreRunResult

    register_result_type(MixPrediction)
    register_result_type(SingleCoreProfile)
    register_result_type(MultiCoreRunResult)


_register_builtin_types()
