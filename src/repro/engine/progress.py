"""Progress hooks for the experiment engine.

The executor reports every job's fate through a
:class:`ProgressReporter`: ``"done"`` (computed), ``"cached"`` (served
from the result cache), ``"shared"`` (deduplicated against an identical
job in the same wave) or ``"skipped"`` (an optional warm-up job that no
surviving job needed).  Reporters are deliberately tiny — the CLI uses
:class:`ConsoleReporter` for a live job counter, tests use
:class:`CollectingReporter` to assert engine behaviour.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO, Tuple

from repro.engine.job import Job


class ProgressReporter:
    """No-op base class; subclasses override any subset of the hooks."""

    def on_start(self, total_jobs: int) -> None:  # pragma: no cover - trivial
        pass

    def on_job(self, job: Job, status: str) -> None:  # pragma: no cover - trivial
        pass

    def on_finish(self) -> None:  # pragma: no cover - trivial
        pass


class CollectingReporter(ProgressReporter):
    """Records every event; used by tests and by callers that poll counts."""

    def __init__(self) -> None:
        self.total_jobs = 0
        self.events: List[Tuple[str, str]] = []
        self.finished = False

    def on_start(self, total_jobs: int) -> None:
        self.total_jobs = total_jobs

    def on_job(self, job: Job, status: str) -> None:
        self.events.append((job.key, status))

    def on_finish(self) -> None:
        self.finished = True

    def count(self, status: str) -> int:
        return sum(1 for _, event_status in self.events if event_status == status)


class ConsoleReporter(ProgressReporter):
    """Live single-line job counter (for ``repro run``)."""

    def __init__(self, stream: Optional[TextIO] = None, label: str = "engine") -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._total = 0
        self._done = 0
        self._cached = 0
        self._skipped = 0
        self._started_at = 0.0

    def on_start(self, total_jobs: int) -> None:
        self._total = total_jobs
        self._done = self._cached = self._skipped = 0
        self._started_at = time.perf_counter()

    def on_job(self, job: Job, status: str) -> None:
        self._done += 1
        if status == "cached":
            self._cached += 1
        elif status == "skipped":
            self._skipped += 1
        self.stream.write(
            f"\r[{self.label}] {self._done}/{self._total} jobs "
            f"({self._cached} cached, {self._skipped} skipped)"
        )
        self.stream.flush()

    def on_finish(self) -> None:
        elapsed = time.perf_counter() - self._started_at
        self.stream.write(
            f"\r[{self.label}] {self._done}/{self._total} jobs "
            f"({self._cached} cached, {self._skipped} skipped) in {elapsed:.1f}s\n"
        )
        self.stream.flush()
