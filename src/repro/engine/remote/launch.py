"""Launching fleet workers: loopback subprocesses and ssh remotes.

Loopback workers (``fleet:localhost:N``) are real ``repro worker``
subprocesses on ``127.0.0.1`` — the CI-testable path exercising the
full wire protocol, process isolation included.  Each is started with
``--port 0``; the launcher reads the announce line
(:data:`~repro.engine.remote.worker.ANNOUNCE_PREFIX`) from its stdout
to discover the bound port, with a deadline so a worker that dies
during startup produces a structured error instead of a hang.

SSH workers (``fleet:ssh=host1,host2``) use the same announce
handshake over ``ssh -o BatchMode=yes``: the remote worker binds
``0.0.0.0`` and announces its port; the driver then connects directly
to ``host:port`` (trusted-network assumption, like every MPI launcher).
The hosts need key-based auth and the repro package importable by the
remote interpreter.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional
from urllib.parse import urlsplit

from repro.engine.remote.errors import FleetError
from repro.engine.remote.worker import ANNOUNCE_PREFIX

#: Wall-clock budget for a launched worker to print its announce line.
STARTUP_TIMEOUT = 60.0


@dataclass
class WorkerHandle:
    """One launched (or adopted) worker endpoint."""

    url: str
    tag: str
    #: The local subprocess (loopback) or ssh client process; ``None``
    #: for attached endpoints the fleet does not own.
    process: Optional[subprocess.Popen] = None

    @property
    def owned(self) -> bool:
        return self.process is not None

    def terminate(self) -> None:
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()


def _worker_env() -> dict:
    """The subprocess environment, with the repro package importable."""
    src_dir = str(Path(__file__).resolve().parents[3])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not existing else f"{src_dir}{os.pathsep}{existing}"
    return env


def _read_announce(process: subprocess.Popen, tag: str, timeout: float) -> str:
    """Read the announce line from a worker's stdout, with a deadline."""
    assert process.stdout is not None
    deadline = time.monotonic() + timeout
    os.set_blocking(process.stdout.fileno(), False)
    buffer = b""
    while time.monotonic() < deadline:
        chunk = process.stdout.read()
        if chunk:
            buffer += chunk
            line, separator, _rest = buffer.partition(b"\n")
            if separator:
                text = line.decode("utf-8", "replace").strip()
                if text.startswith(ANNOUNCE_PREFIX):
                    os.set_blocking(process.stdout.fileno(), True)
                    return text[len(ANNOUNCE_PREFIX) :]
                raise FleetError(f"worker {tag} announced garbage: {text!r}")
        if process.poll() is not None:
            raise FleetError(
                f"worker {tag} exited with code {process.returncode} before announcing"
            )
        time.sleep(0.02)
    process.kill()
    raise FleetError(f"worker {tag} did not announce within {timeout:.0f}s")


def launch_local_workers(
    count: int,
    cache_dir: Optional[str] = None,
    startup_timeout: float = STARTUP_TIMEOUT,
) -> List[WorkerHandle]:
    """Start ``count`` loopback worker subprocesses; returns their handles."""
    handles: List[WorkerHandle] = []
    try:
        for index in range(count):
            tag = f"local-{index}"
            command = [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--tag",
                tag,
            ]
            if cache_dir is not None:
                command += ["--cache-dir", str(cache_dir)]
            process = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=_worker_env(),
            )
            url = _read_announce(process, tag, startup_timeout)
            handles.append(WorkerHandle(url=url, tag=tag, process=process))
    except Exception:
        for handle in handles:
            handle.terminate()
        raise
    return handles


def launch_ssh_workers(
    hosts: List[str],
    python: str = "python3",
    cache_dir: Optional[str] = None,
    startup_timeout: float = STARTUP_TIMEOUT,
) -> List[WorkerHandle]:
    """Start one worker per ssh host; returns their handles.

    The worker process on the remote host outlives nothing: killing the
    local ssh client tears down the remote agent with it (no ``-f``,
    no nohup), so fleet teardown is a plain :meth:`WorkerHandle.terminate`.
    """
    handles: List[WorkerHandle] = []
    try:
        for index, host in enumerate(hosts):
            tag = f"ssh-{index}-{host}"
            remote = f"{python} -m repro.cli worker --host 0.0.0.0 --port 0 --tag {tag}"
            if cache_dir is not None:
                remote += f" --cache-dir {cache_dir}"
            process = subprocess.Popen(
                ["ssh", "-o", "BatchMode=yes", host, remote],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
            )
            announced = _read_announce(process, tag, startup_timeout)
            # The remote binds 0.0.0.0; the reachable address is the host.
            port = urlsplit(announced).port
            handles.append(WorkerHandle(url=f"http://{host}:{port}", tag=tag, process=process))
    except Exception:
        for handle in handles:
            handle.terminate()
        raise
    return handles
