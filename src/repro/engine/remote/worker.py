"""The ``repro worker`` agent: one host's share of a fleet sweep.

A worker is the service tier's HTTP machinery
(:class:`~repro.service.http.HttpServer`) wrapped around the engine's
task layer: ``POST /run`` takes a pickled job recipe, resolves the
experiment setup from the recipe exactly as a process-pool worker
would (:func:`repro.engine.tasks._resolve_setup`), executes it, and
returns the result as a registry envelope
(:mod:`repro.engine.remote.protocol`).

Each worker owns a :class:`~repro.engine.cache.ResultCache`.  Before
executing, ``/run`` consults it by the job's content-hash cache key,
and ``POST /cache/query`` lets the driver ask which keys a worker
already holds — together these implement the fleet's shared-dedup
contract: no host ever recomputes another host's job.

Jobs execute on a single worker thread (``run_in_executor``) so the
event loop — and with it ``/healthz`` — stays responsive while a
simulation runs; that is what makes driver-side heartbeats meaningful.
A job that *raises* returns a structured ``{"status": "error"}`` body
with HTTP 200: task exceptions are deterministic job failures the
driver must propagate, distinct from transport failures it retries.
"""

from __future__ import annotations

import asyncio
import os
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Optional

from repro.engine.cache import MISS, ResultCache
from repro.engine.remote.errors import FleetProtocolError
from repro.engine.remote.protocol import decode_job, encode_result
from repro.service.http import HttpError, HttpServer, Request, Response

#: With ``--port 0`` this line is how launchers discover the bound port.
ANNOUNCE_PREFIX = "repro-worker listening on "


class FleetWorker:
    """A single worker agent (async lifecycle; see :func:`run_worker`)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> None:
        self.tag = tag if tag is not None else f"worker-{os.getpid()}"
        results_dir = Path(cache_dir) / "results" if cache_dir is not None else None
        self.cache = ResultCache(results_dir)
        self.server = HttpServer(self._handle, host=host, port=port)
        self.shutdown_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-worker")
        self.received = 0
        self.executed = 0
        self.cache_hits = 0
        self.errors = 0

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> "FleetWorker":
        await self.server.start()
        return self

    async def close(self) -> None:
        await self.server.close()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _handle(self, request: Request) -> Response:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return Response({"status": "ok", "tag": self.tag, "pid": os.getpid()})
        if route == ("GET", "/stats"):
            return Response(self.stats_payload())
        if route == ("POST", "/run"):
            return await self._handle_run(request)
        if route == ("POST", "/cache/query"):
            return self._handle_cache_query(request)
        if route == ("POST", "/shutdown"):
            self.shutdown_event.set()
            return Response({"status": "shutting down", "tag": self.tag})
        raise HttpError(404, f"no such endpoint: {request.method} {request.path}")

    def stats_payload(self) -> dict:
        return {
            "tag": self.tag,
            "pid": os.getpid(),
            "received": self.received,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "cache": self.cache.stats(),
        }

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    async def _handle_run(self, request: Request) -> Response:
        payload = request.json()
        self.received += 1
        key = payload.get("key")
        cache_key = payload.get("cache_key")

        if cache_key is not None:
            value = self.cache.get(cache_key)
            if value is not MISS:
                self.cache_hits += 1
                return Response(
                    {"key": key, "status": "ok", "cached": True, "result": encode_result(value)}
                )

        try:
            job = decode_job(payload)
        except FleetProtocolError as error:
            raise HttpError(400, str(error)) from None

        loop = asyncio.get_running_loop()
        try:
            value = await loop.run_in_executor(self._executor, job.run)
        except Exception as error:  # noqa: BLE001 - shipped to the driver, not swallowed
            self.errors += 1
            return Response(
                {
                    "key": key,
                    "status": "error",
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                }
            )
        self.executed += 1
        if job.cache_key is not None:
            self.cache.put(job.cache_key, value)
        return Response(
            {"key": key, "status": "ok", "cached": False, "result": encode_result(value)}
        )

    def _handle_cache_query(self, request: Request) -> Response:
        payload = request.json()
        keys = payload.get("keys")
        if not isinstance(keys, list):
            raise HttpError(400, "cache query body must carry a 'keys' list")
        hits = [key for key in keys if isinstance(key, str) and key in self.cache]
        return Response({"tag": self.tag, "hits": hits})


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


async def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: Optional[str] = None,
    tag: Optional[str] = None,
    printer: Callable[[str], None] = print,
) -> FleetWorker:
    """Start a worker and run until ``POST /shutdown`` (or cancellation)."""
    worker = FleetWorker(host=host, port=port, cache_dir=cache_dir, tag=tag)
    await worker.start()
    printer(f"{ANNOUNCE_PREFIX}http://{host}:{worker.port}")
    try:
        await worker.shutdown_event.wait()
    finally:
        await worker.close()
    return worker


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: Optional[str] = None,
    tag: Optional[str] = None,
    printer: Optional[Callable[[str], None]] = None,
) -> int:
    """The ``repro worker`` entry point; returns a process exit code."""
    if printer is None:
        # The announce line must reach a pipe-reading launcher promptly.
        def printer(line: str) -> None:
            print(line, flush=True)

    try:
        asyncio.run(serve_worker(host, port, cache_dir=cache_dir, tag=tag, printer=printer))
    except KeyboardInterrupt:
        printer("repro-worker: interrupted, shutting down")
    return 0
