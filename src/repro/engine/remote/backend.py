"""The fleet backend: JobGraph waves fanned across worker hosts.

:class:`FleetBackend` is the third :class:`ExecutorBackend` — the
executor above it is unchanged, so everything the engine guarantees
(submission-order results, driver-cache resolution before dispatch,
harvesting into the driver's :class:`ResultCache` after) holds for a
fleet exactly as for a process pool.  What the backend adds:

* **Cache-aware dispatch.**  Before shipping a wave, the driver asks
  every worker which of the wave's content-hash keys it already holds
  (``POST /cache/query``) and *pins* those jobs to the holding worker,
  whose ``/run`` answers from its cache — no host ever recomputes
  another host's job.  (Jobs the *driver's* cache holds never reach
  the backend at all; the executor resolves those first.)
* **Retry-on-worker-failure.**  One dispatch thread per worker pulls
  jobs from its pinned queue, then from the shared queue.  Any
  transport failure — refused, reset, timed out, corrupt payload —
  retires the worker and requeues its in-flight and pinned jobs for
  the survivors.  A job that *raises* on a worker is a deterministic
  failure and propagates as :class:`FleetJobError` instead.
* **Heartbeats.**  A monitor thread probes ``/healthz`` of workers
  with jobs in flight (workers execute jobs off the event loop, so a
  busy worker still answers).  Repeated misses abort the in-flight
  connection, which surfaces as a transport failure on the dispatch
  thread — one code path for every way a worker can die.

Results are collected by submission index, so a fleet run is
bit-identical to a serial run of the same wave.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

from repro.engine.backends import ExecutorBackend
from repro.engine.job import Job
from repro.engine.remote.client import HEALTH_TIMEOUT, WorkerClient
from repro.engine.remote.errors import (
    FleetError,
    FleetJobError,
    FleetProtocolError,
    WorkerTransportError,
)
from repro.engine.remote.launch import WorkerHandle, launch_local_workers, launch_ssh_workers
from repro.engine.remote.protocol import decode_result, encode_job
from repro.engine.remote.spec import FleetSpec, parse_fleet_spec

_UNSET = object()


class _WorkerSlot:
    """Driver-side state for one worker."""

    def __init__(self, handle: WorkerHandle, job_timeout: float) -> None:
        self.handle = handle
        self.client = WorkerClient(handle.url, timeout=job_timeout)
        # The dispatch client blocks for the whole job; heartbeats need
        # their own connection (WorkerClient tracks one in-flight call).
        self.health_client = WorkerClient(handle.url, timeout=HEALTH_TIMEOUT)
        self.alive = True
        self.pinned: Deque[int] = deque()
        self.inflight: Optional[int] = None
        self.missed_heartbeats = 0
        self.dispatched = 0
        self.completed = 0
        self.remote_hits = 0
        self.failures = 0
        self.last_error: Optional[str] = None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "tag": self.handle.tag,
            "url": self.handle.url,
            "alive": self.alive,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "remote_cache_hits": self.remote_hits,
            "failures": self.failures,
            "last_error": self.last_error,
        }


class FleetBackend(ExecutorBackend):
    """Run jobs across a fleet of ``repro worker`` agents.

    Parameters
    ----------
    spec:
        A ``fleet:`` spec string or parsed :class:`FleetSpec`.
    cache_dir:
        The driver's campaign cache directory; loopback workers share
        it, making the on-disk content-hash cache the fleet-wide dedup
        layer.
    heartbeat_interval / max_missed_heartbeats:
        A worker with a job in flight that misses this many consecutive
        ``/healthz`` probes is presumed dead and its connection aborted.
    """

    def __init__(
        self,
        spec: Union[str, FleetSpec],
        cache_dir: Optional[str] = None,
        heartbeat_interval: float = 2.0,
        max_missed_heartbeats: int = 3,
    ) -> None:
        self.spec = parse_fleet_spec(spec)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.job_timeout = self.spec.job_timeout
        self.heartbeat_interval = heartbeat_interval
        self.max_missed_heartbeats = max_missed_heartbeats
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._slots: List[_WorkerSlot] = []
        self._closed = False
        self.waves = 0
        try:
            self._start_workers()
        except Exception:
            self.close()
            raise
        self.jobs = len(self._slots)

    # ------------------------------------------------------------------
    # Startup / teardown
    # ------------------------------------------------------------------

    def _start_workers(self) -> None:
        spec = self.spec
        if spec.kind == "localhost":
            handles = launch_local_workers(spec.count, cache_dir=self.cache_dir)
        elif spec.kind == "ssh":
            handles = launch_ssh_workers(
                list(spec.hosts), python=spec.python, cache_dir=self.cache_dir
            )
        else:  # attach
            handles = [
                WorkerHandle(url=f"http://{endpoint}", tag=f"attach-{index}")
                for index, endpoint in enumerate(spec.hosts)
            ]
        self._slots = [_WorkerSlot(handle, self.job_timeout) for handle in handles]
        unreachable = []
        for slot in self._slots:
            try:
                slot.health_client.healthz()
            except WorkerTransportError as error:
                unreachable.append(f"{slot.handle.tag} ({slot.handle.url}): {error}")
        if unreachable:
            raise FleetError(
                f"{len(unreachable)} of {len(self._slots)} fleet workers unreachable "
                f"at startup: " + "; ".join(unreachable)
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.alive and slot.handle.owned:
                slot.client.request_shutdown()
            slot.handle.terminate()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[Any]:
        if not jobs:
            return []
        if self._closed:
            raise FleetError("fleet backend is closed")
        live = [slot for slot in self._slots if slot.alive]
        if not live:
            raise FleetError("no live fleet workers remain")
        self.waves += 1

        results: List[Any] = [_UNSET] * len(jobs)
        shared: Deque[int] = deque()
        self._pin_cached(jobs, live, shared)
        self._job_error: Optional[FleetJobError] = None
        self._stop = threading.Event()

        done = threading.Event()
        monitor = threading.Thread(
            target=self._monitor_loop, args=(done,), name="fleet-monitor", daemon=True
        )
        threads = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(slot, jobs, results, shared),
                name=f"fleet-{slot.handle.tag}",
                daemon=True,
            )
            for slot in live
        ]
        monitor.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        done.set()
        monitor.join()

        if self._job_error is not None:
            raise self._job_error
        missing = sum(1 for value in results if value is _UNSET)
        if missing:
            details = "; ".join(
                f"{slot.handle.tag}: {slot.last_error}"
                for slot in self._slots
                if slot.last_error is not None
            )
            raise FleetError(
                f"{missing} of {len(jobs)} jobs could not be executed — "
                f"no live fleet workers remain ({details or 'no worker errors recorded'})"
            )
        return results

    def _pin_cached(self, jobs: Sequence[Job], live: List[_WorkerSlot], shared: Deque[int]) -> None:
        """Pin jobs whose content key a worker already holds to that worker."""
        by_key: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            if job.cache_key is not None:
                by_key.setdefault(job.cache_key, []).append(index)
        claimed: Dict[str, _WorkerSlot] = {}
        if by_key:
            keys = list(by_key)
            for slot in live:
                try:
                    hits = slot.client.cache_query(keys)
                except WorkerTransportError as error:
                    self._retire(slot, None, shared, error)
                    continue
                for key in hits:
                    if key in by_key and key not in claimed:
                        claimed[key] = slot
                        slot.pinned.extend(by_key[key])
        pinned = {index for slot in live for index in slot.pinned}
        shared.extend(index for index in range(len(jobs)) if index not in pinned)

    def _dispatch_loop(
        self, slot: _WorkerSlot, jobs: Sequence[Job], results: List[Any], shared: Deque[int]
    ) -> None:
        while True:
            index = self._next_index(slot, shared)
            if index is None:
                return
            job = jobs[index]
            slot.dispatched += 1
            try:
                status, body = slot.client.run(encode_job(job), timeout=self.job_timeout)
                if status != 200:
                    raise WorkerTransportError(
                        f"{slot.handle.url}/run returned {status}: {body.get('error', body)}"
                    )
                if body.get("status") == "error":
                    with self._work:
                        if self._job_error is None:
                            self._job_error = FleetJobError(
                                f"job {job.key!r} failed on {slot.handle.tag}: "
                                f"{body.get('error')}\n{body.get('traceback', '')}"
                            )
                        self._stop.set()
                        slot.inflight = None
                        self._work.notify_all()
                    return
                if body.get("status") != "ok":
                    raise WorkerTransportError(f"{slot.handle.url}/run: malformed body {body!r}")
                value = decode_result(body.get("result"))
            except (WorkerTransportError, FleetProtocolError) as error:
                self._retire(slot, index, shared, error)
                return
            with self._work:
                results[index] = value
                slot.inflight = None
                slot.completed += 1
                slot.missed_heartbeats = 0
                if body.get("cached"):
                    slot.remote_hits += 1
                self._work.notify_all()

    def _next_index(self, slot: _WorkerSlot, shared: Deque[int]) -> Optional[int]:
        """Claim the next job index for this worker (blocks; None = done).

        A thread must not exit just because the queues are momentarily
        empty: another worker's in-flight job may yet fail and be
        requeued.  It exits only when stopped, retired, or every queue
        is empty with nothing in flight anywhere.
        """
        with self._work:
            while True:
                if self._stop.is_set() or not slot.alive:
                    return None
                if slot.pinned:
                    index = slot.pinned.popleft()
                elif shared:
                    index = shared.popleft()
                else:
                    if all(other.inflight is None for other in self._slots):
                        return None
                    self._work.wait(0.1)
                    continue
                slot.inflight = index
                return index

    def _retire(
        self,
        slot: _WorkerSlot,
        inflight_index: Optional[int],
        shared: Deque[int],
        error: Exception,
    ) -> None:
        """Mark a worker dead and hand its queued work to the survivors."""
        with self._work:
            slot.alive = False
            slot.failures += 1
            slot.last_error = str(error)
            slot.inflight = None
            if inflight_index is not None:
                shared.appendleft(inflight_index)
            while slot.pinned:
                shared.append(slot.pinned.popleft())
            self._work.notify_all()

    def _monitor_loop(self, done: threading.Event) -> None:
        while not done.wait(self.heartbeat_interval):
            for slot in self._slots:
                if not slot.alive or slot.inflight is None:
                    continue
                try:
                    slot.health_client.healthz(
                        timeout=min(self.heartbeat_interval, HEALTH_TIMEOUT)
                    )
                except WorkerTransportError:
                    slot.missed_heartbeats += 1
                    if slot.missed_heartbeats >= self.max_missed_heartbeats:
                        # The dispatch thread is blocked on this worker;
                        # aborting its connection funnels the death into
                        # the one retire-and-reassign path.
                        slot.client.abort()
                else:
                    slot.missed_heartbeats = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Per-worker dispatch/cache counters (the service's ``/stats`` fleet section)."""
        workers = [slot.snapshot() for slot in self._slots]
        return {
            "spec": self.spec.canonical,
            "workers": workers,
            "alive": sum(1 for w in workers if w["alive"]),
            "waves": self.waves,
            "dispatched": sum(w["dispatched"] for w in workers),
            "completed": sum(w["completed"] for w in workers),
            "remote_cache_hits": sum(w["remote_cache_hits"] for w in workers),
            "failures": sum(w["failures"] for w in workers),
        }
