"""Blocking HTTP client for one fleet worker.

Each dispatch thread owns one :class:`WorkerClient`.  Every call opens
a fresh ``http.client`` connection with a timeout — fleets ship a
handful of long-running jobs, not thousands of tiny requests, so
connection reuse buys nothing and fresh connections make failure
detection trivial.  The in-flight connection is kept on the instance
so the heartbeat monitor can :meth:`abort` it from another thread: the
socket shutdown makes the blocked ``getresponse`` raise immediately,
unsticking a dispatch thread whose worker died mid-job.

Every transport-level failure — refused, reset, timed out, truncated,
non-JSON — is normalised to :class:`WorkerTransportError`; the backend
maps that to "retire the worker, reassign the job".
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Any, Dict, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.engine.remote.errors import WorkerTransportError

#: Timeout for liveness probes; generous for a loopback healthz, tight
#: enough that a dead host is detected within one heartbeat interval.
HEALTH_TIMEOUT = 5.0


class WorkerClient:
    """Synchronous JSON-over-HTTP client for one worker endpoint."""

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if not split.hostname or not split.port:
            raise ValueError(f"worker url needs host and port, got {url!r}")
        self.url = f"http://{split.hostname}:{split.port}"
        self.host = split.hostname
        self.port = split.port
        self.timeout = timeout
        self._active: Optional[http.client.HTTPConnection] = None
        self._lock = threading.Lock()

    def abort(self) -> None:
        """Tear down the in-flight connection (called from another thread)."""
        with self._lock:
            connection = self._active
        if connection is None:
            return
        try:
            if connection.sock is not None:
                connection.sock.shutdown(socket.SHUT_RDWR)
            connection.close()
        except OSError:
            pass

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One request; returns ``(status, json body)`` or raises transport error."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout if timeout is not None else self.timeout
        )
        with self._lock:
            self._active = connection
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise WorkerTransportError(
                    f"{self.url}{path}: non-JSON response: {error}"
                ) from None
            if not isinstance(decoded, dict):
                raise WorkerTransportError(f"{self.url}{path}: response is not a JSON object")
            return response.status, decoded
        except WorkerTransportError:
            raise
        except (OSError, http.client.HTTPException) as error:
            raise WorkerTransportError(f"{self.url}{path}: {error}") from None
        finally:
            with self._lock:
                self._active = None
            try:
                connection.close()
            except OSError:
                pass

    # -- endpoint conveniences ------------------------------------------

    def healthz(self, timeout: float = HEALTH_TIMEOUT) -> Dict[str, Any]:
        status, body = self.request("GET", "/healthz", timeout=timeout)
        if status != 200:
            raise WorkerTransportError(f"{self.url}/healthz returned {status}")
        return body

    def stats(self) -> Dict[str, Any]:
        status, body = self.request("GET", "/stats", timeout=HEALTH_TIMEOUT)
        if status != 200:
            raise WorkerTransportError(f"{self.url}/stats returned {status}")
        return body

    def run(self, payload: Dict[str, Any], timeout: Optional[float] = None) -> Tuple[int, Dict]:
        return self.request("POST", "/run", payload=payload, timeout=timeout)

    def cache_query(self, keys: Sequence[str]) -> Sequence[str]:
        status, body = self.request("POST", "/cache/query", payload={"keys": list(keys)})
        if status != 200 or not isinstance(body.get("hits"), list):
            raise WorkerTransportError(f"{self.url}/cache/query returned {status}: {body}")
        return body["hits"]

    def request_shutdown(self) -> None:
        try:
            self.request("POST", "/shutdown", payload={}, timeout=HEALTH_TIMEOUT)
        except WorkerTransportError:
            pass  # best effort: the worker may already be gone
