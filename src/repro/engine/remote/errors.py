"""Fleet error taxonomy.

The distinction that matters operationally is *whose fault it was*:

* :class:`FleetSpecError` — the fleet spec string is malformed; raised
  at parse time, before anything is launched.
* :class:`WorkerTransportError` — one request to one worker failed at
  the HTTP/socket level (refused, timed out, truncated, non-JSON).
  The backend treats this as a *worker* failure: the worker is retired
  and its in-flight job is reassigned to a survivor.
* :class:`FleetError` — the fleet as a whole cannot make progress
  (unreachable hosts at startup, every worker dead with jobs pending).
* :class:`FleetJobError` — the *job itself* raised on a worker.  Jobs
  are deterministic, so rerunning elsewhere would fail identically;
  the error propagates to the caller instead of being retried.
"""

from __future__ import annotations


class FleetError(RuntimeError):
    """The fleet cannot make progress (startup or mid-sweep)."""


class FleetSpecError(FleetError):
    """A malformed ``fleet:`` spec string."""


class FleetProtocolError(FleetError):
    """A payload that does not decode to a job or a registered result."""


class WorkerTransportError(FleetError):
    """One worker request failed at the transport level."""


class FleetJobError(FleetError):
    """A job function raised on a worker (deterministic; not retried)."""
