"""Distributed sweep engine: a multi-host fleet behind the backend seam.

The engine's :class:`~repro.engine.executor.Executor` already hides
Serial vs ProcessPool behind one Job/JobGraph contract; this package
adds the third backend — a *fleet* of worker hosts — with the
content-hash :class:`~repro.engine.cache.ResultCache` as the shared
dedup layer, so no host ever recomputes another host's job and any
backend produces the same bytes.

* :mod:`repro.engine.remote.spec` — ``fleet:`` spec strings
* :mod:`repro.engine.remote.protocol` — pickled jobs out, registry
  result envelopes back
* :mod:`repro.engine.remote.worker` — the ``repro worker`` agent
* :mod:`repro.engine.remote.client` — blocking per-worker HTTP client
* :mod:`repro.engine.remote.launch` — loopback subprocess / ssh launch
* :mod:`repro.engine.remote.backend` — :class:`FleetBackend`:
  cache-aware dispatch, retry-on-worker-failure, heartbeats
"""

from repro.engine.remote.backend import FleetBackend
from repro.engine.remote.client import WorkerClient
from repro.engine.remote.errors import (
    FleetError,
    FleetJobError,
    FleetProtocolError,
    FleetSpecError,
    WorkerTransportError,
)
from repro.engine.remote.launch import WorkerHandle, launch_local_workers, launch_ssh_workers
from repro.engine.remote.protocol import decode_job, decode_result, encode_job, encode_result
from repro.engine.remote.spec import (
    DEFAULT_JOB_TIMEOUT,
    FleetSpec,
    is_fleet_spec,
    normalize_fleet_flag,
    parse_fleet_spec,
)
from repro.engine.remote.worker import ANNOUNCE_PREFIX, FleetWorker, run_worker, serve_worker

__all__ = [
    "FleetBackend",
    "FleetWorker",
    "FleetSpec",
    "FleetError",
    "FleetJobError",
    "FleetProtocolError",
    "FleetSpecError",
    "WorkerTransportError",
    "WorkerClient",
    "WorkerHandle",
    "ANNOUNCE_PREFIX",
    "is_fleet_spec",
    "normalize_fleet_flag",
    "parse_fleet_spec",
    "DEFAULT_JOB_TIMEOUT",
    "launch_local_workers",
    "launch_ssh_workers",
    "encode_job",
    "decode_job",
    "encode_result",
    "decode_result",
    "run_worker",
    "serve_worker",
]
