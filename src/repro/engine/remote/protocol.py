"""The fleet wire protocol: jobs out, result envelopes back.

Jobs travel as pickles (a :class:`~repro.engine.job.Job` is a frozen
dataclass of picklable parts — the same property the process-pool
backend relies on), base64-wrapped inside a JSON body so the transport
stays the service tier's JSON-over-HTTP.

Results travel as JSON envelopes.  Registered result types use the
:class:`~repro.engine.cache.ResultCache` type registry's
``{"type", "payload"}`` envelope — the exact bytes the driver's disk
cache would persist — so harvesting a remote result is
indistinguishable from computing it locally.  Three transparent
wrappers cover the rest: ``@list`` for batch tasks returning lists of
registered results, ``@json`` for plain scalars, and ``@pickle`` for
types outside the registry (profile bundles with numpy traces).

Anything that fails to decode raises :class:`FleetProtocolError`; the
backend treats a worker that ships undecodable payloads as dead and
reassigns the job.
"""

from __future__ import annotations

import base64
import binascii
import pickle
from typing import Any, Dict

from repro.engine.cache import deserialize_result, serialize_result
from repro.engine.job import Job
from repro.engine.remote.errors import FleetProtocolError


def _b64encode(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _b64decode(data: Any) -> bytes:
    if not isinstance(data, str):
        raise FleetProtocolError(f"expected base64 string, got {type(data).__name__}")
    try:
        return base64.b64decode(data.encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error) as error:
        raise FleetProtocolError(f"invalid base64 payload: {error}") from None


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------


def encode_job(job: Job) -> Dict[str, Any]:
    """The ``POST /run`` body for one job."""
    return {
        "key": job.key,
        "kind": job.kind,
        "cache_key": job.cache_key,
        "job": _b64encode(pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)),
    }


def decode_job(payload: Dict[str, Any]) -> Job:
    """Rebuild the job from a ``POST /run`` body."""
    raw = _b64decode(payload.get("job"))
    try:
        job = pickle.loads(raw)
    except Exception as error:  # noqa: BLE001 - pickle raises open-endedly
        raise FleetProtocolError(f"job payload does not unpickle: {error}") from None
    if not isinstance(job, Job):
        raise FleetProtocolError(f"job payload decoded to {type(job).__name__}, not Job")
    return job


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def encode_result(value: Any) -> Dict[str, Any]:
    """A JSON-safe envelope for any task result."""
    envelope = serialize_result(value)
    if envelope is not None:
        return envelope
    if isinstance(value, (list, tuple)):
        return {"type": "@list", "items": [encode_result(item) for item in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"type": "@json", "value": value}
    return {
        "type": "@pickle",
        "data": _b64encode(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)),
    }


def decode_result(envelope: Any) -> Any:
    """Rebuild a task result from its envelope."""
    if not isinstance(envelope, dict) or "type" not in envelope:
        raise FleetProtocolError(f"malformed result envelope: {envelope!r}")
    kind = envelope["type"]
    if kind == "@list":
        items = envelope.get("items")
        if not isinstance(items, list):
            raise FleetProtocolError("@list envelope without an items list")
        return [decode_result(item) for item in items]
    if kind == "@json":
        return envelope.get("value")
    if kind == "@pickle":
        raw = _b64decode(envelope.get("data"))
        try:
            return pickle.loads(raw)
        except Exception as error:  # noqa: BLE001 - pickle raises open-endedly
            raise FleetProtocolError(f"result payload does not unpickle: {error}") from None
    try:
        return deserialize_result(envelope)
    except (KeyError, TypeError) as error:
        raise FleetProtocolError(f"unknown or truncated result envelope: {error}") from None
