"""Fleet spec strings: how a multi-host backend is named.

A fleet spec is a string with the ``fleet:`` prefix, accepted anywhere
an engine ``jobs`` count is (``create_engine(jobs="fleet:...")``,
``ExperimentSetup(jobs=...)``, ``repro run --fleet ...``).  Three
worker sources:

* ``fleet:localhost:N`` — N loopback subprocess workers, launched and
  owned by the driver.  The CI-testable path.
* ``fleet:ssh=host1,host2`` — one worker per host, launched over
  ``ssh`` (``BatchMode``; the hosts need key auth and the repro
  package on their python path).
* ``fleet:attach=host:port+host:port`` — adopt already-running
  ``repro worker`` agents (``+``-separated because endpoints contain
  ``:``).  Attached workers are not shut down on close.

Options ride after the worker source as ``,key=value`` pairs:
``timeout`` (per-job seconds), ``python`` (remote interpreter for
``ssh=``).  Example: ``fleet:localhost:2,timeout=900``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from repro.engine.remote.errors import FleetSpecError

PREFIX = "fleet:"

#: Per-job execution timeout (seconds) unless the spec overrides it.
DEFAULT_JOB_TIMEOUT = 600.0

_OPTION_KEYS = ("timeout", "python")


def is_fleet_spec(value: object) -> bool:
    """Whether a ``jobs`` value names a fleet rather than a pool size."""
    return isinstance(value, str) and value.startswith(PREFIX)


def normalize_fleet_flag(value: str) -> str:
    """CLI convenience: accept ``localhost:2`` and ``fleet:localhost:2`` alike."""
    spec = value if value.startswith(PREFIX) else PREFIX + value
    return parse_fleet_spec(spec).canonical


@dataclass(frozen=True)
class FleetSpec:
    """A parsed fleet spec.

    ``kind`` is ``"localhost"`` / ``"ssh"`` / ``"attach"``; ``count``
    is the loopback worker count (0 otherwise); ``hosts`` holds ssh
    host names or ``host:port`` endpoints for ``attach``.
    """

    kind: str
    count: int = 0
    hosts: Tuple[str, ...] = field(default=())
    job_timeout: float = DEFAULT_JOB_TIMEOUT
    python: str = "python3"

    @property
    def num_workers(self) -> int:
        return self.count if self.kind == "localhost" else len(self.hosts)

    @property
    def canonical(self) -> str:
        if self.kind == "localhost":
            body = f"localhost:{self.count}"
        elif self.kind == "ssh":
            body = "ssh=" + ",".join(self.hosts)
        else:
            body = "attach=" + "+".join(self.hosts)
        options = []
        if self.job_timeout != DEFAULT_JOB_TIMEOUT:
            options.append(f"timeout={self.job_timeout:g}")
        if self.kind == "ssh" and self.python != "python3":
            options.append(f"python={self.python}")
        return PREFIX + ",".join([body] + options)

    def __str__(self) -> str:
        return self.canonical


def _split_options(parts: list) -> Dict[str, str]:
    """Pop trailing ``key=value`` option parts off a comma-split list."""
    options: Dict[str, str] = {}
    while parts:
        name, separator, value = parts[-1].partition("=")
        if not separator or name not in _OPTION_KEYS:
            break
        options[name] = value
        parts.pop()
    return options


def _parse_timeout(options: Dict[str, str]) -> float:
    raw = options.pop("timeout", None)
    if raw is None:
        return DEFAULT_JOB_TIMEOUT
    try:
        timeout = float(raw)
    except ValueError:
        raise FleetSpecError(f"fleet timeout must be a number, got {raw!r}") from None
    if timeout <= 0:
        raise FleetSpecError(f"fleet timeout must be positive, got {raw}")
    return timeout


def parse_fleet_spec(spec: Union[str, "FleetSpec"]) -> FleetSpec:
    """Parse a ``fleet:`` spec string into a :class:`FleetSpec`."""
    if isinstance(spec, FleetSpec):
        return spec
    if not is_fleet_spec(spec):
        raise FleetSpecError(f"not a fleet spec (missing {PREFIX!r} prefix): {spec!r}")
    body = spec[len(PREFIX) :].strip()
    if not body:
        raise FleetSpecError(f"empty fleet spec: {spec!r}")
    parts = [part.strip() for part in body.split(",")]
    options = _split_options(parts)
    job_timeout = _parse_timeout(options)

    head = parts[0]
    if head.startswith("localhost"):
        if len(parts) != 1:
            raise FleetSpecError(f"unexpected parts in localhost fleet spec: {spec!r}")
        _, separator, raw_count = head.partition(":")
        if not separator or not raw_count.isdigit() or int(raw_count) < 1:
            raise FleetSpecError(
                f"localhost fleets are 'fleet:localhost:N' with N >= 1, got {spec!r}"
            )
        return FleetSpec(kind="localhost", count=int(raw_count), job_timeout=job_timeout)

    if head.startswith("ssh="):
        hosts = tuple(h for h in [head[len("ssh=") :]] + parts[1:] if h)
        if not hosts:
            raise FleetSpecError(f"ssh fleet spec names no hosts: {spec!r}")
        python = options.pop("python", "python3")
        return FleetSpec(kind="ssh", hosts=hosts, job_timeout=job_timeout, python=python)

    if head.startswith("attach="):
        if len(parts) != 1:
            raise FleetSpecError(f"unexpected parts in attach fleet spec: {spec!r}")
        endpoints = tuple(e.strip() for e in head[len("attach=") :].split("+") if e.strip())
        if not endpoints:
            raise FleetSpecError(f"attach fleet spec names no endpoints: {spec!r}")
        for endpoint in endpoints:
            host, separator, port = endpoint.rpartition(":")
            if not separator or not host or not port.isdigit():
                raise FleetSpecError(
                    f"attach endpoints are 'host:port', got {endpoint!r} in {spec!r}"
                )
        return FleetSpec(kind="attach", hosts=endpoints, job_timeout=job_timeout)

    raise FleetSpecError(
        f"unknown fleet kind in {spec!r} (expected localhost:N, ssh=..., or attach=...)"
    )
