"""Command-line interface to the MPPM reproduction.

The CLI wraps the most common workflows behind one executable
(``repro-mppm`` after installation, or ``python -m repro.cli``):

``suite``
    List the selected workload's benchmark suite and the MEM/COMP/MIX
    classes.
``workloads``
    List the registered workload families (the values ``--suite``
    takes: ``suite:spec29``, ``suite:spec29/scaled@N``,
    ``random:n=...,seed=...``, ``service:n=...,seed=...``).
``models``
    List the registered predictor specs (the values ``--model`` takes).
``profile``
    Print the single-core profile summary of one or more benchmarks.
``predict``
    Run one predictor on one workload mix (benchmark names, one per
    core); ``--model`` selects the estimator (default ``mppm:foa``).
``compare``
    Run one or more predictors (repeatable ``--model``) and the
    detailed reference simulation on one mix and report the prediction
    errors.
``rank``
    Rank the six Table 2 LLC configurations over a sample of workload
    mixes, once per requested ``--model``.
``stress``
    Scan a sample of mixes with one predictor and report the
    worst-STP ones.
``run``
    The unified experiment pipeline: run whole paper experiments
    (accuracy, ranking, agreement, stress, variability, space) through
    the parallel engine, with ``--jobs N`` workers, a persistent
    ``--cache-dir`` and any set of estimators (repeatable ``--model``).
``ingest``
    Fit a PMU sample stream (CSV/JSONL + machine descriptor) into a
    reusable workload bundle; the written directory is usable anywhere
    ``--suite`` is accepted as ``perf:<dir>`` (see ``src/repro/ingest/``).
``serve``
    Run the prediction service: an asyncio HTTP/JSON server over the
    predictor/workload registries with request batching and
    shared-cache memoisation (see ``src/repro/service/``).
``worker``
    Run a fleet worker agent: the per-host half of ``--fleet``, taking
    pickled job recipes over HTTP and returning registry result
    envelopes (see ``src/repro/engine/remote/``).

All commands accept ``--suite`` (a workload spec from ``repro
workloads``), ``--benchmarks``, ``--instructions``, ``--scale`` and
``--seed`` to control the experiment setup, plus ``--jobs`` (process
pool), ``--fleet`` (multi-host worker fleet: ``localhost:N``,
``ssh=host1,host2``) and ``--cache-dir`` to control the engine; the
defaults match the benchmark suite in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.engine import ConsoleReporter, create_engine
from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.experiments.reporting import format_table
from repro.predictors import DEFAULT_PREDICTOR, canonical_spec, describe_predictors
from repro.workloads import (
    DEFAULT_WORKLOAD,
    WorkloadMix,
    canonical_workload_spec,
    describe_workloads,
)
from repro.workloads.classification import classify_suite


def _workload_spec_from_args(args: argparse.Namespace) -> str:
    """Resolve ``--suite`` / legacy ``--benchmarks`` into a workload spec.

    The two flags are mutually exclusive at the argparse level, so at
    most one is set here.
    """
    if args.suite is not None:
        return args.suite
    if args.benchmarks is None or args.benchmarks >= 29:
        return DEFAULT_WORKLOAD
    return f"suite:spec29/scaled@{args.benchmarks}"


def _engine_jobs_from_args(args: argparse.Namespace):
    """Resolve ``--fleet`` / ``--jobs`` into an engine ``jobs`` value.

    The two flags are mutually exclusive at the argparse level; a fleet
    spec (already canonicalised by :func:`_fleet_spec`) wins.
    """
    fleet = getattr(args, "fleet", None)
    return fleet if fleet is not None else args.jobs


def _build_setup(args: argparse.Namespace) -> ExperimentSetup:
    """Construct the experiment setup shared by all commands."""
    workload = _workload_spec_from_args(args)
    config = ExperimentConfig(
        scale=args.scale,
        num_instructions=args.instructions,
        interval_instructions=max(1, args.instructions // 50),
        seed=args.seed,
    )
    reporter = ConsoleReporter() if getattr(args, "progress", False) else None
    engine = create_engine(
        jobs=_engine_jobs_from_args(args), cache_dir=args.cache_dir, reporter=reporter
    )
    return ExperimentSetup(
        config=config, workload=workload, engine=engine, cache_dir=args.cache_dir
    )


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def _predictor_spec(value: str) -> str:
    """argparse type for ``--model``: canonicalised registry spec."""
    try:
        return canonical_spec(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _workload_spec(value: str) -> str:
    """argparse type for ``--suite``: canonicalised workload spec."""
    try:
        return canonical_workload_spec(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _fleet_spec(value: str) -> str:
    """argparse type for ``--fleet``: canonicalised ``fleet:`` spec."""
    from repro.engine.remote import FleetSpecError, normalize_fleet_flag

    try:
        return normalize_fleet_flag(value)
    except FleetSpecError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_model_argument(parser: argparse.ArgumentParser, repeatable: bool) -> None:
    if repeatable:
        parser.add_argument(
            "--model",
            dest="models",
            type=_predictor_spec,
            action="append",
            default=None,
            help=(
                "predictor spec to evaluate (see `repro models`); repeatable "
                f"(default: {DEFAULT_PREDICTOR})"
            ),
        )
    else:
        parser.add_argument(
            "--model",
            type=_predictor_spec,
            default=DEFAULT_PREDICTOR,
            help=f"predictor spec to use (see `repro models`; default: {DEFAULT_PREDICTOR})",
        )


def _selected_models(args: argparse.Namespace) -> List[str]:
    return args.models if args.models else [DEFAULT_PREDICTOR]


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    workload_group = parser.add_mutually_exclusive_group()
    workload_group.add_argument(
        "--suite",
        type=_workload_spec,
        default=None,
        help=(
            "workload spec to evaluate (see `repro workloads`; default: "
            f"{DEFAULT_WORKLOAD})"
        ),
    )
    workload_group.add_argument(
        "--benchmarks",
        type=int,
        default=None,
        help=(
            "legacy shorthand for --suite suite:spec29/scaled@N: a curated "
            "N-benchmark spread of the default suite (default: all 29)"
        ),
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=200_000,
        help="trace length per benchmark (default: 200000)",
    )
    parser.add_argument(
        "--scale", type=int, default=16, help="cache capacity scaling divisor (default: 16)"
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed (default: 0)")
    parser.add_argument(
        "--llc-config",
        type=int,
        default=1,
        choices=range(1, 7),
        help="Table 2 LLC configuration number (default: 1)",
    )
    engine_group = parser.add_mutually_exclusive_group()
    engine_group.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="engine worker processes; 1 runs everything in-process (default: 1)",
    )
    engine_group.add_argument(
        "--fleet",
        type=_fleet_spec,
        default=None,
        help=(
            "run the engine on a worker fleet instead of a process pool: "
            "localhost:N (loopback subprocesses), ssh=host1,host2, or "
            "attach=host:port+host:port (see src/repro/engine/remote/)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent cache directory for profiles and engine results (default: none)",
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _with_setup(handler):
    """Build the setup for a command and release its engine afterwards."""

    def wrapped(args: argparse.Namespace) -> int:
        setup = _build_setup(args)
        try:
            return handler(args, setup)
        finally:
            setup.close()

    return wrapped


def _command_models(args: argparse.Namespace) -> int:
    """List the predictor registry (no experiment setup required)."""
    if getattr(args, "json", False):
        from repro.service.payloads import models_payload

        print(json.dumps(models_payload(), indent=2))
        return 0
    rows = [
        {"spec": spec, "description": description}
        for spec, description in describe_predictors()
    ]
    print(
        format_table(
            rows,
            title="Registered predictors (pass a spec via --model):",
        )
    )
    print(f"\ndefault: {DEFAULT_PREDICTOR}")
    from repro.core import MPPM_KERNELS
    from repro.simulators import MULTI_CORE_KERNELS

    print(f"mppm kernels: {', '.join(MPPM_KERNELS)} (default: batched, bit-identical)")
    print(
        f"multicore kernels: {', '.join(MULTI_CORE_KERNELS)} "
        "(default: chunked, bit-identical)"
    )
    return 0


def _command_workloads(args: argparse.Namespace) -> int:
    """List the workload registry (no experiment setup required)."""
    if getattr(args, "json", False):
        from repro.service.payloads import workloads_payload

        print(json.dumps(workloads_payload(), indent=2))
        return 0
    rows = [
        {"spec": spec, "description": description}
        for spec, description in describe_workloads()
    ]
    print(
        format_table(
            rows,
            title="Registered workload families (pass a spec via --suite):",
        )
    )
    print(f"\ndefault: {DEFAULT_WORKLOAD}")
    return 0


def _command_suite(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    classes = classify_suite(setup.suite)
    rows = [
        {
            "benchmark": spec.name,
            "class": classes[spec.name].value,
            "base_CPI": spec.base_cpi,
            "mem_refs": spec.mem_ref_fraction,
            "working_set_lines": spec.working_set_lines,
            "phases": spec.num_phases,
        }
        for spec in setup.suite
    ]
    print(
        format_table(
            rows,
            title=f"Workload {setup.workload_spec} ({len(rows)} benchmarks):",
        )
    )
    return 0


def _command_profile(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    machine = setup.machine(num_cores=1, llc_config=args.llc_config)
    names = args.names or setup.benchmark_names
    unknown = [name for name in names if name not in setup.suite]
    if unknown:
        print(f"error: unknown benchmarks {unknown}", file=sys.stderr)
        return 2
    rows = []
    for name in names:
        profile = setup.store.get_profile(setup.suite[name], machine)
        rows.append(
            {
                "benchmark": name,
                "CPI_SC": profile.cpi,
                "memory_CPI": profile.memory_cpi,
                "memory_fraction": profile.memory_cpi_fraction,
                "LLC_MPKI": profile.llc_misses_per_kilo_instruction,
                "intervals": profile.num_intervals,
            }
        )
    print(format_table(rows, title=f"Single-core profiles on {machine.name}:"))
    return 0


def _mix_from_args(args: argparse.Namespace, setup: ExperimentSetup) -> Optional[WorkloadMix]:
    unknown = [name for name in args.programs if name not in setup.suite]
    if unknown:
        print(f"error: unknown benchmarks {unknown}", file=sys.stderr)
        return None
    return WorkloadMix(programs=tuple(args.programs))


def _command_predict(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    mix = _mix_from_args(args, setup)
    if mix is None:
        return 2
    machine = setup.machine(num_cores=mix.num_programs, llc_config=args.llc_config)
    prediction = setup.predict(mix, machine, predictor=args.model)
    print(prediction.describe())
    return 0


def _command_compare(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    mix = _mix_from_args(args, setup)
    if mix is None:
        return 2
    models = _selected_models(args)
    machine = setup.machine(num_cores=mix.num_programs, llc_config=args.llc_config)
    predictions = {spec: setup.predict(mix, machine, predictor=spec) for spec in models}
    measurement = setup.simulate(mix, machine)
    rows = []
    for spec, prediction in predictions.items():
        for predicted, measured in zip(prediction.programs, measurement.programs):
            rows.append(
                {
                    "model": spec,
                    "core": predicted.core,
                    "program": predicted.name,
                    "CPI_SC": predicted.single_core_cpi,
                    "CPI_MC_measured": measured.cpi,
                    "CPI_MC_predicted": predicted.predicted_cpi,
                    "slowdown_measured": measured.slowdown,
                    "slowdown_predicted": predicted.slowdown,
                }
            )
    print(
        format_table(
            rows, title=f"{', '.join(models)} vs detailed simulation for {mix.label()}:"
        )
    )
    for spec, prediction in predictions.items():
        stp_error = abs(prediction.system_throughput - measurement.system_throughput)
        stp_error /= measurement.system_throughput
        antt_error = abs(
            prediction.average_normalized_turnaround_time
            - measurement.average_normalized_turnaround_time
        ) / measurement.average_normalized_turnaround_time
        print(
            f"\n[{spec}] STP : measured {measurement.system_throughput:.3f}, "
            f"predicted {prediction.system_throughput:.3f} ({stp_error:.1%} error)"
        )
        print(
            f"[{spec}] ANTT: measured {measurement.average_normalized_turnaround_time:.3f}, "
            f"predicted {prediction.average_normalized_turnaround_time:.3f} "
            f"({antt_error:.1%} error)"
        )
    return 0


def _command_rank(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    mixes = setup.mixes(args.cores, args.mixes, seed=args.seed)
    machines = setup.design_space(num_cores=args.cores)
    models = _selected_models(args)
    # One engine sweep covering every requested model over the whole
    # design space, so heterogeneous rankings parallelise together.
    predictions = setup.predictor_batch(
        [
            (spec, mix, machine)
            for spec in models
            for machine in machines
            for mix in mixes
        ]
    )
    offset = 0
    for spec in models:
        rows = []
        for machine in machines:
            machine_predictions = predictions[offset : offset + len(mixes)]
            offset += len(mixes)
            rows.append(
                {
                    "LLC": machine.name,
                    "avg_STP": float(
                        np.mean([p.system_throughput for p in machine_predictions])
                    ),
                    "avg_ANTT": float(
                        np.mean(
                            [p.average_normalized_turnaround_time for p in machine_predictions]
                        )
                    ),
                }
            )
        rows.sort(key=lambda row: row["avg_STP"], reverse=True)
        print(
            format_table(
                rows,
                title=(
                    f"LLC design space ranked by {spec} over {len(mixes)} "
                    f"{args.cores}-program mixes (best first):"
                ),
            )
        )
    return 0


def _command_stress(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    machine = setup.machine(num_cores=args.cores, llc_config=args.llc_config)
    mixes = setup.mixes(args.cores, args.mixes, seed=args.seed)
    scored = list(zip(setup.predict_many(mixes, machine, predictor=args.model), mixes))
    scored.sort(key=lambda pair: pair[0].system_throughput)
    rows = []
    for prediction, mix in scored[: args.worst]:
        worst_program = max(prediction.programs, key=lambda program: program.slowdown)
        rows.append(
            {
                "mix": mix.label(),
                "STP": prediction.system_throughput,
                "ANTT": prediction.average_normalized_turnaround_time,
                "worst_program": worst_program.name,
                "worst_slowdown": worst_program.slowdown,
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.worst} worst mixes (by {args.model} STP) out of {len(mixes)} scanned:",
        )
    )
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    """Run a fleet worker agent until ``POST /shutdown`` or Ctrl-C."""
    from repro.engine.remote import run_worker

    return run_worker(
        host=args.host, port=args.port, cache_dir=args.cache_dir, tag=args.tag
    )


def _command_serve(args: argparse.Namespace) -> int:
    """Run the prediction service until Ctrl-C or ``POST /shutdown``."""
    from repro.service import ServiceConfig, serve_blocking

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.fleet if args.fleet is not None else args.jobs,
        cache_dir=args.cache_dir,
        workload=args.suite if args.suite is not None else DEFAULT_WORKLOAD,
        window=args.window,
        max_batch=args.max_batch,
        instructions=args.instructions,
        scale=args.scale,
        seed=args.seed,
        preload=not args.no_preload,
    )
    return serve_blocking(config)


#: Experiments the unified pipeline knows how to run, in run order.
RUN_EXPERIMENTS = ("space", "variability", "accuracy", "ranking", "agreement", "stress")


def _command_run(args: argparse.Namespace, setup: ExperimentSetup) -> int:
    """The unified pipeline: paper experiments through the engine."""
    from repro.experiments.accuracy import accuracy_experiment
    from repro.experiments.agreement import agreement_experiment
    from repro.experiments.ranking import ranking_experiment
    from repro.experiments.stress import stress_experiment
    from repro.experiments.variability import variability_experiment
    from repro.experiments.workload_space import workload_space_report

    try:
        core_counts = [int(part) for part in args.cores.split(",") if part]
    except ValueError:
        core_counts = []
    if not core_counts or any(cores <= 0 for cores in core_counts):
        print(
            f"error: --cores must be comma-separated positive integers, got {args.cores!r}",
            file=sys.stderr,
        )
        return 2
    mixes = args.mixes
    trials = max(2, mixes // 4)
    models = _selected_models(args)

    def run_experiment(name: str):
        if name == "space":
            return workload_space_report(setup, measure_costs=True)
        if name == "variability":
            # Variability evaluates with a single estimator: the first
            # requested model, or the paper's detailed simulation.
            return variability_experiment(
                setup,
                num_cores=core_counts[-1],
                max_mixes=mixes,
                source=models[0] if args.models else "simulation",
                seed=args.seed + 11,
            )
        if name == "accuracy":
            return accuracy_experiment(
                setup,
                core_counts=core_counts,
                mixes_per_core_count=mixes,
                predictors=models,
                seed=args.seed + 23,
            )
        if name == "ranking":
            return ranking_experiment(
                setup,
                num_cores=core_counts[-1],
                num_trials=trials,
                mixes_per_trial=max(3, mixes // 4),
                reference_mixes=mixes,
                mppm_mixes=4 * mixes,
                predictors=models,
                seed=args.seed + 41,
            )
        if name == "agreement":
            return agreement_experiment(
                setup,
                num_cores=core_counts[-1],
                num_trials=trials,
                mixes_per_trial=max(3, mixes // 4),
                reference_mixes=mixes,
                mppm_mixes=4 * mixes,
                predictors=models,
                seed=args.seed + 53,
            )
        return stress_experiment(
            setup,
            num_cores=core_counts[-1],
            num_mixes=2 * mixes,
            worst_k=max(3, mixes // 4),
            predictors=models,
            seed=args.seed + 61,
        )

    if not args.experiments or "all" in args.experiments:
        selected = RUN_EXPERIMENTS
    else:
        selected = tuple(args.experiments)
    engine_label = (
        f"--fleet {args.fleet}" if getattr(args, "fleet", None) else f"--jobs {args.jobs}"
    )
    for name in selected:
        start = time.perf_counter()
        result = run_experiment(name)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{name}] finished in {elapsed:.1f}s with {engine_label}\n")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import FitOptions, write_bundle
    from repro.ingest.workload import ingest_to_bundle
    from repro.workloads.benchmark import WorkloadError

    options = FitOptions(
        num_instructions=args.instructions,
        max_phases=args.max_phases,
        rounds=args.rounds,
        seed=args.seed,
    )
    try:
        workload, stream = ingest_to_bundle(
            args.samples, machine_path=args.machine, options=options
        )
    except WorkloadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    bundle_path = write_bundle(workload, args.out)
    spec = canonical_workload_spec(f"perf:{args.out}")
    if args.json:
        print(
            json.dumps(
                {
                    "bundle": str(bundle_path),
                    "workload_spec": spec,
                    "report": [
                        {
                            "core": fit.core,
                            "benchmark": fit.spec.name,
                            "samples": fit.num_samples,
                            "coverage": fit.coverage,
                            "phases": len(fit.phases),
                            "max_miss_rate_error": fit.max_miss_rate_error,
                            "max_access_rate_error": fit.max_access_rate_error,
                            "max_cpi_error": fit.max_cpi_error,
                        }
                        for fit in workload.fits
                    ],
                },
                indent=2,
            )
        )
        return 0
    rows = [
        {
            "core": fit.core,
            "benchmark": fit.spec.name,
            "samples": fit.num_samples,
            "coverage": fit.coverage,
            "phases": len(fit.phases),
            "miss_err": fit.max_miss_rate_error,
            "acc_err": fit.max_access_rate_error,
            "cpi_err": fit.max_cpi_error,
        }
        for fit in workload.fits
    ]
    print(
        format_table(
            rows,
            title=(
                f"Fitted {len(workload.fits)} cores from "
                f"{sum(len(core.timestamps) for core in stream.cores)} samples "
                f"on {workload.machine.name}:"
            ),
        )
    )
    print(f"\nbundle: {bundle_path}")
    print(f"workload spec: {spec}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mppm",
        description="Multi-Program Performance Model (IISWC 2011) reproduction CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    suite_parser = subparsers.add_parser("suite", help="list the benchmark suite")
    _add_common_arguments(suite_parser)
    suite_parser.set_defaults(handler=_with_setup(_command_suite))

    models_parser = subparsers.add_parser(
        "models", help="list the registered predictor specs"
    )
    models_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (the same payload as GET /models)",
    )
    models_parser.set_defaults(handler=_command_models)

    workloads_parser = subparsers.add_parser(
        "workloads", help="list the registered workload specs"
    )
    workloads_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (the same payload as GET /workloads)",
    )
    workloads_parser.set_defaults(handler=_command_workloads)

    profile_parser = subparsers.add_parser("profile", help="print single-core profiles")
    _add_common_arguments(profile_parser)
    profile_parser.add_argument("names", nargs="*", help="benchmarks to profile (default: all)")
    profile_parser.set_defaults(handler=_with_setup(_command_profile))

    predict_parser = subparsers.add_parser(
        "predict", help="run one predictor on one workload mix"
    )
    _add_common_arguments(predict_parser)
    _add_model_argument(predict_parser, repeatable=False)
    predict_parser.add_argument("programs", nargs="+", help="benchmark names, one per core")
    predict_parser.set_defaults(handler=_with_setup(_command_predict))

    compare_parser = subparsers.add_parser(
        "compare", help="run predictors and the detailed reference on one mix"
    )
    _add_common_arguments(compare_parser)
    _add_model_argument(compare_parser, repeatable=True)
    compare_parser.add_argument("programs", nargs="+", help="benchmark names, one per core")
    compare_parser.set_defaults(handler=_with_setup(_command_compare))

    rank_parser = subparsers.add_parser("rank", help="rank the Table 2 LLC configurations")
    _add_common_arguments(rank_parser)
    _add_model_argument(rank_parser, repeatable=True)
    rank_parser.add_argument("--cores", type=int, default=4, help="programs per mix (default: 4)")
    rank_parser.add_argument(
        "--mixes", type=int, default=100, help="number of mixes each model evaluates (default: 100)"
    )
    rank_parser.set_defaults(handler=_with_setup(_command_rank))

    stress_parser = subparsers.add_parser("stress", help="find worst-case (stress) workload mixes")
    _add_common_arguments(stress_parser)
    _add_model_argument(stress_parser, repeatable=False)
    stress_parser.add_argument("--cores", type=int, default=4, help="programs per mix (default: 4)")
    stress_parser.add_argument(
        "--mixes", type=int, default=200, help="number of mixes to scan (default: 200)"
    )
    stress_parser.add_argument(
        "--worst", type=int, default=10, help="how many worst mixes to report (default: 10)"
    )
    stress_parser.set_defaults(handler=_with_setup(_command_stress))

    run_parser = subparsers.add_parser(
        "run", help="run whole paper experiments through the parallel engine"
    )
    _add_common_arguments(run_parser)
    _add_model_argument(run_parser, repeatable=True)
    run_parser.add_argument(
        "--experiment",
        dest="experiments",
        action="append",
        choices=RUN_EXPERIMENTS + ("all",),
        default=None,
        help="experiment to run; repeatable (default: all)",
    )
    run_parser.add_argument(
        "--mixes",
        type=_positive_int,
        default=12,
        help="base mix-sample size each experiment is scaled from (default: 12)",
    )
    run_parser.add_argument(
        "--cores",
        default="2,4",
        help="comma-separated core counts for the accuracy sweep (default: 2,4)",
    )
    run_parser.add_argument(
        "--progress", action="store_true", help="print a live engine job counter to stderr"
    )
    run_parser.set_defaults(handler=_with_setup(_command_run), experiments=None)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="fit a PMU sample stream into a reusable perf: workload bundle",
    )
    ingest_parser.add_argument(
        "samples", help="PMU sample stream (CSV or JSONL; see src/repro/ingest/)"
    )
    ingest_parser.add_argument(
        "--out",
        required=True,
        help="directory to write the fitted bundle (usable as perf:<dir>)",
    )
    ingest_parser.add_argument(
        "--machine",
        default=None,
        help=(
            "machine descriptor JSON (default: <samples-stem>.machine.json "
            "next to the samples, then machine.json)"
        ),
    )
    ingest_parser.add_argument(
        "--instructions",
        type=_positive_int,
        default=120_000,
        help="replay trace length per fitted core (default: 120000)",
    )
    ingest_parser.add_argument(
        "--max-phases",
        type=_positive_int,
        default=6,
        help="phase-segmentation budget per core (default: 6)",
    )
    ingest_parser.add_argument(
        "--rounds",
        type=_positive_int,
        default=4,
        help="fit refinement rounds (default: 4)",
    )
    ingest_parser.add_argument(
        "--seed", type=int, default=0, help="fitted-workload seed (default: 0)"
    )
    ingest_parser.add_argument(
        "--json", action="store_true", help="emit the fit report as JSON"
    )
    ingest_parser.set_defaults(handler=_command_ingest)

    serve_parser = subparsers.add_parser(
        "serve", help="run the prediction service (HTTP/JSON over the registries)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8181,
        help="port to bind; 0 picks an ephemeral port (default: 8181)",
    )
    serve_parser.add_argument(
        "--suite",
        type=_workload_spec,
        default=None,
        help=(
            "workload preloaded at startup and used when a request names "
            f"none (default: {DEFAULT_WORKLOAD})"
        ),
    )
    serve_engine_group = serve_parser.add_mutually_exclusive_group()
    serve_engine_group.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="engine worker processes; 1 runs everything in-process (default: 1)",
    )
    serve_engine_group.add_argument(
        "--fleet",
        type=_fleet_spec,
        default=None,
        help=(
            "back the service's engine with a worker fleet: localhost:N, "
            "ssh=host1,host2, or attach=host:port+host:port"
        ),
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent cache directory for profiles and results (default: memory only)",
    )
    serve_parser.add_argument(
        "--window",
        type=float,
        default=0.005,
        help="micro-batch window in seconds (default: 0.005)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=_positive_int,
        default=64,
        help="flush a batch once this many requests are pending (default: 64)",
    )
    serve_parser.add_argument(
        "--instructions",
        type=int,
        default=200_000,
        help="trace length per benchmark (default: 200000, matching `repro predict`)",
    )
    serve_parser.add_argument(
        "--scale", type=int, default=16, help="cache capacity scaling divisor (default: 16)"
    )
    serve_parser.add_argument("--seed", type=int, default=0, help="global seed (default: 0)")
    serve_parser.add_argument(
        "--no-preload",
        action="store_true",
        help="skip the startup profile preload (profiles are computed on first use)",
    )
    serve_parser.set_defaults(handler=_command_serve)

    worker_parser = subparsers.add_parser(
        "worker",
        help="run a fleet worker agent (jobs in, registry result envelopes out)",
    )
    worker_parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: 127.0.0.1)"
    )
    worker_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind; 0 picks an ephemeral port and announces it (default: 0)",
    )
    worker_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent cache directory for this worker's results (default: memory only)",
    )
    worker_parser.add_argument(
        "--tag", default=None, help="worker name in announcements and /stats (default: pid)"
    )
    worker_parser.set_defaults(handler=_command_worker)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
