"""Command-line interface to the MPPM reproduction.

The CLI wraps the most common workflows behind one executable
(``repro-mppm`` after installation, or ``python -m repro.cli``):

``suite``
    List the synthetic benchmark suite and the MEM/COMP/MIX classes.
``profile``
    Print the single-core profile summary of one or more benchmarks.
``predict``
    Run MPPM on one workload mix (benchmark names, one per core).
``compare``
    Run both MPPM and the detailed reference simulation on one mix and
    report the prediction errors.
``rank``
    Rank the six Table 2 LLC configurations with MPPM over a sample of
    workload mixes.
``stress``
    Scan a sample of mixes with MPPM and report the worst-STP ones.

All commands accept ``--benchmarks``, ``--instructions``, ``--scale``
and ``--seed`` to control the experiment setup; the defaults match the
benchmark suite in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments import ExperimentConfig, ExperimentSetup
from repro.experiments.reporting import format_table
from repro.workloads import WorkloadMix, sample_mixes, small_suite, spec_cpu2006_like_suite
from repro.workloads.classification import classify_suite


def _build_setup(args: argparse.Namespace) -> ExperimentSetup:
    """Construct the experiment setup shared by all commands."""
    if args.benchmarks is None or args.benchmarks >= 29:
        suite = spec_cpu2006_like_suite()
    else:
        suite = small_suite(args.benchmarks)
    config = ExperimentConfig(
        scale=args.scale,
        num_instructions=args.instructions,
        interval_instructions=max(1, args.instructions // 50),
        seed=args.seed,
    )
    return ExperimentSetup(config=config, suite=suite)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks",
        type=int,
        default=None,
        help="restrict the suite to its first N benchmarks (default: all 29)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=200_000,
        help="trace length per benchmark (default: 200000)",
    )
    parser.add_argument(
        "--scale", type=int, default=16, help="cache capacity scaling divisor (default: 16)"
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed (default: 0)")
    parser.add_argument(
        "--llc-config",
        type=int,
        default=1,
        choices=range(1, 7),
        help="Table 2 LLC configuration number (default: 1)",
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _command_suite(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    classes = classify_suite(setup.suite)
    rows = [
        {
            "benchmark": spec.name,
            "class": classes[spec.name].value,
            "base_CPI": spec.base_cpi,
            "mem_refs": spec.mem_ref_fraction,
            "working_set_lines": spec.working_set_lines,
            "phases": spec.num_phases,
        }
        for spec in setup.suite
    ]
    print(format_table(rows, title=f"Benchmark suite ({len(rows)} benchmarks):"))
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    machine = setup.machine(num_cores=1, llc_config=args.llc_config)
    names = args.names or setup.benchmark_names
    unknown = [name for name in names if name not in setup.suite]
    if unknown:
        print(f"error: unknown benchmarks {unknown}", file=sys.stderr)
        return 2
    rows = []
    for name in names:
        profile = setup.store.get_profile(setup.suite[name], machine)
        rows.append(
            {
                "benchmark": name,
                "CPI_SC": profile.cpi,
                "memory_CPI": profile.memory_cpi,
                "memory_fraction": profile.memory_cpi_fraction,
                "LLC_MPKI": profile.llc_misses_per_kilo_instruction,
                "intervals": profile.num_intervals,
            }
        )
    print(format_table(rows, title=f"Single-core profiles on {machine.name}:"))
    return 0


def _mix_from_args(args: argparse.Namespace, setup: ExperimentSetup) -> Optional[WorkloadMix]:
    unknown = [name for name in args.programs if name not in setup.suite]
    if unknown:
        print(f"error: unknown benchmarks {unknown}", file=sys.stderr)
        return None
    return WorkloadMix(programs=tuple(args.programs))


def _command_predict(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    mix = _mix_from_args(args, setup)
    if mix is None:
        return 2
    machine = setup.machine(num_cores=mix.num_programs, llc_config=args.llc_config)
    prediction = setup.predict(mix, machine)
    print(prediction.describe())
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    mix = _mix_from_args(args, setup)
    if mix is None:
        return 2
    machine = setup.machine(num_cores=mix.num_programs, llc_config=args.llc_config)
    prediction = setup.predict(mix, machine)
    measurement = setup.simulate(mix, machine)
    rows = []
    for predicted, measured in zip(prediction.programs, measurement.programs):
        rows.append(
            {
                "core": predicted.core,
                "program": predicted.name,
                "CPI_SC": predicted.single_core_cpi,
                "CPI_MC_measured": measured.cpi,
                "CPI_MC_predicted": predicted.predicted_cpi,
                "slowdown_measured": measured.slowdown,
                "slowdown_predicted": predicted.slowdown,
            }
        )
    print(format_table(rows, title=f"MPPM vs detailed simulation for {mix.label()}:"))
    stp_error = abs(prediction.system_throughput - measurement.system_throughput)
    stp_error /= measurement.system_throughput
    antt_error = abs(
        prediction.average_normalized_turnaround_time
        - measurement.average_normalized_turnaround_time
    ) / measurement.average_normalized_turnaround_time
    print(
        f"\nSTP : measured {measurement.system_throughput:.3f}, "
        f"predicted {prediction.system_throughput:.3f} ({stp_error:.1%} error)"
    )
    print(
        f"ANTT: measured {measurement.average_normalized_turnaround_time:.3f}, "
        f"predicted {prediction.average_normalized_turnaround_time:.3f} ({antt_error:.1%} error)"
    )
    return 0


def _command_rank(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    mixes = sample_mixes(setup.benchmark_names, args.cores, args.mixes, seed=args.seed)
    rows = []
    for machine in setup.design_space(num_cores=args.cores):
        predictions = [setup.predict(mix, machine) for mix in mixes]
        rows.append(
            {
                "LLC": machine.name,
                "avg_STP": float(np.mean([p.system_throughput for p in predictions])),
                "avg_ANTT": float(
                    np.mean([p.average_normalized_turnaround_time for p in predictions])
                ),
            }
        )
    rows.sort(key=lambda row: row["avg_STP"], reverse=True)
    print(
        format_table(
            rows,
            title=(
                f"LLC design space ranked by MPPM over {len(mixes)} "
                f"{args.cores}-program mixes (best first):"
            ),
        )
    )
    return 0


def _command_stress(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    machine = setup.machine(num_cores=args.cores, llc_config=args.llc_config)
    mixes = sample_mixes(setup.benchmark_names, args.cores, args.mixes, seed=args.seed)
    scored = [(setup.predict(mix, machine), mix) for mix in mixes]
    scored.sort(key=lambda pair: pair[0].system_throughput)
    rows = []
    for prediction, mix in scored[: args.worst]:
        worst_program = max(prediction.programs, key=lambda program: program.slowdown)
        rows.append(
            {
                "mix": mix.label(),
                "STP": prediction.system_throughput,
                "ANTT": prediction.average_normalized_turnaround_time,
                "worst_program": worst_program.name,
                "worst_slowdown": worst_program.slowdown,
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.worst} worst mixes (by MPPM STP) out of {len(mixes)} scanned:",
        )
    )
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mppm",
        description="Multi-Program Performance Model (IISWC 2011) reproduction CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    suite_parser = subparsers.add_parser("suite", help="list the benchmark suite")
    _add_common_arguments(suite_parser)
    suite_parser.set_defaults(handler=_command_suite)

    profile_parser = subparsers.add_parser("profile", help="print single-core profiles")
    _add_common_arguments(profile_parser)
    profile_parser.add_argument("names", nargs="*", help="benchmarks to profile (default: all)")
    profile_parser.set_defaults(handler=_command_profile)

    predict_parser = subparsers.add_parser("predict", help="run MPPM on one workload mix")
    _add_common_arguments(predict_parser)
    predict_parser.add_argument("programs", nargs="+", help="benchmark names, one per core")
    predict_parser.set_defaults(handler=_command_predict)

    compare_parser = subparsers.add_parser(
        "compare", help="run MPPM and the detailed reference on one mix"
    )
    _add_common_arguments(compare_parser)
    compare_parser.add_argument("programs", nargs="+", help="benchmark names, one per core")
    compare_parser.set_defaults(handler=_command_compare)

    rank_parser = subparsers.add_parser("rank", help="rank the Table 2 LLC configurations")
    _add_common_arguments(rank_parser)
    rank_parser.add_argument("--cores", type=int, default=4, help="programs per mix (default: 4)")
    rank_parser.add_argument(
        "--mixes", type=int, default=100, help="number of mixes MPPM evaluates (default: 100)"
    )
    rank_parser.set_defaults(handler=_command_rank)

    stress_parser = subparsers.add_parser("stress", help="find worst-case (stress) workload mixes")
    _add_common_arguments(stress_parser)
    stress_parser.add_argument("--cores", type=int, default=4, help="programs per mix (default: 4)")
    stress_parser.add_argument(
        "--mixes", type=int, default=200, help="number of mixes to scan (default: 200)"
    )
    stress_parser.add_argument(
        "--worst", type=int, default=10, help="how many worst mixes to report (default: 10)"
    )
    stress_parser.set_defaults(handler=_command_stress)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
