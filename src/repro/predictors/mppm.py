"""MPPM as a registry predictor (``mppm:<contention-model>`` and variants).

One registry entry per cache-contention model: ``mppm:foa`` (the
paper's choice and the package default), ``mppm:sdc`` and
``mppm:prob`` — plus one per model *variant* used by the ablations:
``mppm:windowed`` (windowed per-interval CPI progress) and
``mppm:figure2`` (the paper's literal Figure 2 slowdown update), both
over the FOA contention model.  The predictor draws single-core
profiles through the setup's
:class:`~repro.profiling.store.ProfileStore` — exactly the code path
the pre-registry ``ExperimentSetup.predict`` used, so predictions are
bit-identical to it by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.contention import make_contention_model
from repro.core import MPPM, MPPMConfig
from repro.core.result import MixPrediction
from repro.predictors.base import tag_prediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.workloads.mixes import WorkloadMix


class MPPMPredictor:
    """The iterative Multi-Program Performance Model behind the Predictor API."""

    def __init__(
        self,
        setup: "ExperimentSetup",
        contention: str = "foa",
        mppm_config: Optional[MPPMConfig] = None,
        spec: Optional[str] = None,
    ) -> None:
        self.setup = setup
        self.contention = contention
        self.mppm_config = mppm_config
        # Variant entries (mppm:windowed, mppm:figure2) override the
        # spec: they are named after their MPPMConfig, not the
        # contention model they run on.
        self.spec = spec if spec is not None else f"mppm:{contention}"

    def _model(self, machine: "MachineConfig") -> MPPM:
        return MPPM(
            machine,
            contention_model=make_contention_model(self.contention),
            config=self.mppm_config,
            kernel=self.setup.config.mppm_kernel,
        )

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        """Run the iterative model on the mix's single-core profiles."""
        profiles = self.setup.mix_profiles(mix, machine)
        return tag_prediction(self._model(machine).predict_mix(mix, profiles), self.spec)

    def predict_batch(
        self, items: Sequence[Tuple["WorkloadMix", "MachineConfig"]]
    ) -> List[MixPrediction]:
        """Solve many (mix, machine) pairs in one batched fixed-point pass.

        Pairs are grouped by machine (one :class:`MPPM` instance per
        distinct machine) and each group is handed to
        :meth:`MPPM.predict_batch` as a single mix-major batch, so a
        homogeneous sweep over thousands of mixes costs one numpy pass
        instead of thousands of Python loops.  Results come back in
        input order, bit-identical to per-pair :meth:`predict` calls.
        """
        predictions: List[Optional[MixPrediction]] = [None] * len(items)
        groups: Dict[Tuple[str, int], List[int]] = {}
        machines: Dict[Tuple[str, int], "MachineConfig"] = {}
        for index, (_, machine) in enumerate(items):
            group_key = (machine.profile_key(), machine.num_cores)
            groups.setdefault(group_key, []).append(index)
            machines.setdefault(group_key, machine)
        for group_key, indices in groups.items():
            machine = machines[group_key]
            model = self._model(machine)
            batches = []
            for index in indices:
                mix = items[index][0]
                profiles = self.setup.mix_profiles(mix, machine)
                batches.append([profiles[name] for name in mix.programs])
            for index, prediction in zip(indices, model.predict_batch(batches)):
                predictions[index] = tag_prediction(prediction, self.spec)
        return predictions

    def describe(self) -> str:
        return (
            f"iterative MPPM with the {self.contention.upper()} cache-contention model "
            "(single-core profiles only)"
        )
