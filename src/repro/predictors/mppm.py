"""MPPM as a registry predictor (``mppm:<contention-model>`` and variants).

One registry entry per cache-contention model: ``mppm:foa`` (the
paper's choice and the package default), ``mppm:sdc`` and
``mppm:prob`` — plus one per model *variant* used by the ablations:
``mppm:windowed`` (windowed per-interval CPI progress) and
``mppm:figure2`` (the paper's literal Figure 2 slowdown update), both
over the FOA contention model.  The predictor draws single-core
profiles through the setup's
:class:`~repro.profiling.store.ProfileStore` — exactly the code path
the pre-registry ``ExperimentSetup.predict`` used, so predictions are
bit-identical to it by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.contention import make_contention_model
from repro.core import MPPM, MPPMConfig
from repro.core.result import MixPrediction
from repro.predictors.base import tag_prediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.workloads.mixes import WorkloadMix


class MPPMPredictor:
    """The iterative Multi-Program Performance Model behind the Predictor API."""

    def __init__(
        self,
        setup: "ExperimentSetup",
        contention: str = "foa",
        mppm_config: Optional[MPPMConfig] = None,
        spec: Optional[str] = None,
    ) -> None:
        self.setup = setup
        self.contention = contention
        self.mppm_config = mppm_config
        # Variant entries (mppm:windowed, mppm:figure2) override the
        # spec: they are named after their MPPMConfig, not the
        # contention model they run on.
        self.spec = spec if spec is not None else f"mppm:{contention}"

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        """Run the iterative model on the mix's single-core profiles."""
        model = MPPM(
            machine,
            contention_model=make_contention_model(self.contention),
            config=self.mppm_config,
        )
        profiles = self.setup.mix_profiles(mix, machine)
        return tag_prediction(model.predict_mix(mix, profiles), self.spec)

    def describe(self) -> str:
        return (
            f"iterative MPPM with the {self.contention.upper()} cache-contention model "
            "(single-core profiles only)"
        )
