"""Detailed reference simulation as just another predictor (``detailed``).

Runs the shared-LLC :class:`~repro.simulators.MultiCoreSimulator`
through the setup's memoised ``simulate`` path and repackages the
result as a :class:`~repro.core.result.MixPrediction`, so experiments
can treat the reference like any other estimator.  The per-program
CPIs are copied verbatim (``isolated_cpi`` → ``single_core_cpi``,
``cpi`` → ``predicted_cpi``), which makes the wrapped prediction's STP
and ANTT bit-identical to the simulator's own — both compute the same
divisions over the same per-program CPI floats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.result import MixPrediction, ProgramPrediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.simulators.multi_core import MultiCoreRunResult
    from repro.workloads.mixes import WorkloadMix


def prediction_from_run(
    result: "MultiCoreRunResult", kernel: Optional[str] = None
) -> MixPrediction:
    """Package a finished reference simulation as a ``detailed`` prediction.

    Pure transformation (no simulation): callers that already hold the
    :class:`MultiCoreRunResult` — e.g. an evaluation sweep whose
    reference jobs just ran — reuse it instead of simulating again.
    ``kernel`` records which interleaving kernel produced the run (see
    :data:`~repro.simulators.MULTI_CORE_KERNELS`); the kernels are
    bit-identical, so the field is provenance, not semantics.
    """
    programs = tuple(
        ProgramPrediction(
            name=stats.name,
            core=stats.core,
            single_core_cpi=stats.isolated_cpi,
            predicted_cpi=stats.cpi,
        )
        for stats in result.programs
    )
    return MixPrediction(
        machine_name=result.machine_name,
        programs=programs,
        iterations=0,
        converged=True,
        predictor=DetailedSimulationPredictor.spec,
        kernel=kernel,
    )


class DetailedSimulationPredictor:
    """The detailed multi-core reference simulation behind the Predictor API."""

    spec = "detailed"

    def __init__(self, setup: "ExperimentSetup") -> None:
        self.setup = setup

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        """Reference-simulate the mix and package the outcome as a prediction."""
        return prediction_from_run(
            self.setup.simulate(mix, machine),
            kernel=self.setup.config.multicore_kernel,
        )

    def describe(self) -> str:
        return "detailed shared-LLC multi-core simulation (the reference, not a model)"
