"""Design-space interpolation: predict config #k from two detailed anchors.

``interp:anchors=A+B`` answers the paper's design-space-exploration
question — "how does this mix behave across the six Table 2 LLC
configurations?" — with detailed simulation at only two *anchor*
configurations (the default pair ``1+6`` brackets the space: smallest
and largest LLC).  Any other configuration's per-program CPI is
linearly interpolated between the two anchor runs, positioned by
``log2`` of the LLC capacity — cache miss curves are closer to linear
in log-capacity than in raw bytes, and equal-capacity steps in Table 2
are equal log-steps.

The target machine must be one of the setup's design-space machines
(:meth:`~repro.experiments.setup.ExperimentSetup.design_space`); asking
for an arbitrary machine is a :class:`PredictorError`, not a silent
extrapolation.  At an anchor configuration the answer *is* the
detailed run, re-tagged — so anchors are exact, interior
configurations approximate, and a sweep over the whole space costs two
reference simulations per mix instead of six.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Tuple

from repro.core.result import MixPrediction, ProgramPrediction
from repro.predictors.base import PredictorError, tag_prediction
from repro.predictors.detailed import prediction_from_run

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.workloads.mixes import WorkloadMix


class InterpolatedPredictor:
    """``interp:anchors=A+B`` — design-space interpolation (module docstring)."""

    def __init__(
        self, setup: "ExperimentSetup", anchors: Tuple[int, int], spec: str
    ) -> None:
        self.setup = setup
        self.anchors = anchors
        self.spec = spec

    def _locate(self, machine: "MachineConfig"):
        """(1-based design-space index, the full space) for ``machine``."""
        space = self.setup.design_space(machine.num_cores)
        for index, candidate in enumerate(space):
            if candidate.llc == machine.llc:
                return index + 1, space
        raise PredictorError(
            f"{self.spec}: machine {machine.name!r} is not in the LLC design "
            f"space; interp predicts Table 2 configurations #1..#{len(space)} only"
        )

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        if machine.num_cores != mix.num_programs:
            machine = machine.with_num_cores(mix.num_programs)
        index, space = self._locate(machine)
        kernel = self.setup.config.multicore_kernel
        if index in self.anchors:
            # Anchors are exact: the detailed run re-tagged as interp.
            run = self.setup.simulate(mix, machine)
            return tag_prediction(prediction_from_run(run, kernel=kernel), self.spec)
        low, high = self.anchors
        low_machine, high_machine = space[low - 1], space[high - 1]
        low_run = self.setup.simulate(mix, low_machine)
        high_run = self.setup.simulate(mix, high_machine)
        low_size = low_machine.llc.size_bytes
        high_size = high_machine.llc.size_bytes
        if high_size != low_size:
            position = (
                math.log2(machine.llc.size_bytes) - math.log2(low_size)
            ) / (math.log2(high_size) - math.log2(low_size))
        else:
            # Equal-capacity anchors (associativity-only step): fall
            # back to the configuration index as the axis.
            position = (index - low) / (high - low)
        position = min(1.0, max(0.0, position))
        low_by_core = {stats.core: stats for stats in low_run.programs}
        high_by_core = {stats.core: stats for stats in high_run.programs}
        profiles = self.setup.mix_profiles(mix, machine)
        programs = []
        for core, name in enumerate(mix.programs):
            low_cpi = low_by_core[core].cpi
            high_cpi = high_by_core[core].cpi
            predicted = (1.0 - position) * low_cpi + position * high_cpi
            # CPI_SC comes from the *target* machine's own profile, so
            # slowdown/STP are measured against the right baseline.
            single_core_cpi = profiles[name].cpi
            programs.append(
                ProgramPrediction(
                    name=name,
                    core=core,
                    single_core_cpi=single_core_cpi,
                    # Contention never makes a program faster than its
                    # own isolated run on the same machine.
                    predicted_cpi=max(predicted, single_core_cpi),
                )
            )
        return MixPrediction(
            machine_name=machine.name,
            programs=tuple(programs),
            iterations=0,
            converged=True,
            predictor=self.spec,
            kernel=kernel,
        )

    def describe(self) -> str:
        low, high = self.anchors
        return (
            f"per-program CPI interpolated across the LLC design space from "
            f"detailed runs at anchor configurations #{low} and #{high}"
        )
