"""The Predictor protocol: one interface for every performance estimator.

The paper's whole argument is a comparison between *estimators* of
multi-program performance — the iterative MPPM against one-shot and
no-contention baselines and against detailed simulation.  Everything
that can answer "how will this mix perform on this machine?" therefore
implements one small protocol:

* ``spec`` — the canonical registry spec string (``"mppm:foa"``,
  ``"detailed"``, …), used for display and for content-hash cache keys;
* ``predict(mix, machine)`` — return a
  :class:`~repro.core.result.MixPrediction` whose ``predictor`` field
  carries ``spec``, so results are self-describing wherever they end up
  (exports, persistent caches, reports);
* ``describe()`` — a one-line human-readable description.

Concrete predictors are constructed by
:func:`repro.predictors.make_predictor` and are bound to an
:class:`~repro.experiments.setup.ExperimentSetup`, which supplies the
single-core profiles (and, for the detailed adapter, the LLC access
traces) they consume.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.result import MixPrediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.workloads.mixes import WorkloadMix


class PredictorError(ValueError):
    """Raised for unknown or malformed predictor specs."""


@runtime_checkable
class Predictor(Protocol):
    """Anything that predicts a workload mix's multi-core performance."""

    #: Canonical spec string (registry name), e.g. ``"mppm:foa"``.
    spec: str

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        """Estimate ``mix``'s performance on ``machine``."""
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """One-line human-readable description of the estimator."""
        ...  # pragma: no cover - protocol


def tag_prediction(prediction: MixPrediction, spec: str) -> MixPrediction:
    """Attach the predictor spec to a prediction (self-describing results).

    Only the metadata field changes; every numeric field is carried
    over untouched, so tagged predictions stay bit-identical to the
    underlying estimator's output.
    """
    if prediction.predictor == spec:
        return prediction
    return replace(prediction, predictor=spec)
