"""The hybrid predictor: MPPM for the bulk, detailed spot-checks for the tail.

The paper's own workflow packaged as one registry spec: rank a whole
pool of mixes with the fast iterative model, then re-run only the
predicted worst-``K`` mixes (lowest predicted system throughput)
through the detailed reference simulator.  ``hybrid:k=K`` predictions
are therefore MPPM predictions for most of the pool and
detailed-simulation results for its predicted tail — each tagged with
the hybrid spec so results stay self-describing.

The pool-level logic lives in
:meth:`repro.experiments.setup.ExperimentSetup._run_ops`, which expands
hybrid ops inside the one sweep graph: the MPPM stage batches like any
``mppm:*`` sweep, and the spot-check stage submits plain ``detailed``
ops — sharing job *and* cache entries with every other detailed run of
the same (mix, machine) pair.  This class is the single-mix adapter
behind ``make_predictor``: a pool of one mix is its own worst-K, so
``predict`` is a detailed simulation re-tagged as hybrid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.result import MixPrediction
from repro.predictors.base import tag_prediction
from repro.predictors.detailed import prediction_from_run

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.workloads.mixes import WorkloadMix


class HybridPredictor:
    """Single-mix adapter for ``hybrid:k=K`` (see module docstring)."""

    def __init__(self, setup: "ExperimentSetup", worst_k: int, spec: str) -> None:
        self.setup = setup
        self.worst_k = worst_k
        self.spec = spec

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        # A pool of one mix IS its own predicted worst-K (K >= 1), so the
        # single-mix answer is always the detailed spot-check.
        run = self.setup.simulate(mix, machine)
        prediction = prediction_from_run(
            run, kernel=self.setup.config.multicore_kernel
        )
        return tag_prediction(prediction, self.spec)

    def describe(self) -> str:
        return (
            f"MPPM for the bulk, detailed spot-checks for the predicted "
            f"worst-{self.worst_k} mixes of each pool"
        )
