"""A learned predictor: ridge regression over single-core profile features.

``learned:n=N,seed=S`` estimates each program's multi-core slowdown
from its own single-core profile plus aggregate features of its
co-runners, with weights fitted against detailed reference simulations.
The training set is ``N`` mixes sampled from the setup's workload
source (seed ``S``, repetition allowed so small suites still yield
``N`` rows per program slot); each training mix's detailed run is
pulled from the engine's persistent :class:`~repro.engine.cache.ResultCache`
when present — warm sweeps train for free — and stored back under the
shared simulate content key when it had to be computed, so the next
consumer (a ``detailed`` sweep, another learned model) finds it.

Per-program features capture the paper's intuition about LLC
contention: a program suffers in proportion to how memory-bound it is
(its memory-CPI fraction) and to how much cache pressure its
co-runners generate (their aggregate miss rate).  The fitted model is
a deterministic pure function of (suite, machine, N, S): the sampler
is seeded, the detailed reference is deterministic, and the
least-squares solve has a unique ridge-regularised solution — so
predictions are stable across runs, hosts and cache states.

Fitted weights are memoised per (setup, spec, machine, mix size):
``make_predictor`` constructs a fresh adapter per call, so the memo
lives in a module-level :class:`weakref.WeakKeyDictionary` keyed by
the setup rather than on the instance.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.result import MixPrediction, ProgramPrediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.profiling.profile import SingleCoreProfile
    from repro.simulators.multi_core import MultiCoreRunResult
    from repro.workloads.mixes import WorkloadMix

#: Ridge (L2) penalty on the least-squares fit.  Small enough not to
#: bias the fit, large enough to pin down a unique solution when the
#: feature matrix is rank-deficient (tiny suites, duplicated mixes).
RIDGE_LAMBDA = 1e-3

#: Fitted weight vectors, keyed by setup (weakly) then by
#: (spec, machine profile key, num_programs).
_MODEL_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _features(
    own: "SingleCoreProfile", co_runners: Sequence["SingleCoreProfile"]
) -> List[float]:
    """Feature vector for one program slot of a mix.

    Own-behaviour terms (CPI, memory-boundedness, miss rate) plus
    co-runner pressure aggregates and one interaction term: memory-bound
    programs are the ones hurt by co-runner cache pressure.
    """
    co_mpki = sum(p.llc_misses_per_kilo_instruction for p in co_runners)
    co_mem_fraction = (
        sum(p.memory_cpi_fraction for p in co_runners) / len(co_runners)
        if co_runners
        else 0.0
    )
    return [
        1.0,
        own.cpi,
        own.memory_cpi_fraction,
        own.llc_misses_per_kilo_instruction,
        co_mpki,
        co_mem_fraction,
        own.memory_cpi_fraction * co_mpki,
    ]


class LearnedPredictor:
    """``learned:n=N,seed=S`` — regression predictor (see module docstring)."""

    def __init__(
        self, setup: "ExperimentSetup", num_mixes: int, seed: int, spec: str
    ) -> None:
        self.setup = setup
        self.num_mixes = num_mixes
        self.seed = seed
        self.spec = spec

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _detailed_run(
        self, mix: "WorkloadMix", machine: "MachineConfig"
    ) -> "MultiCoreRunResult":
        """One training run, pulled from the engine's ResultCache when warm.

        Cache-first keeps training free on a warm cache (e.g. after a
        ``detailed`` sweep over the same mixes); on a miss the run is
        computed through the setup's memoised ``simulate`` path and
        stored back under the shared simulate content key.
        """
        # Imported lazily: repro.engine.tasks reaches back into the
        # predictor registry for cache-key canonicalisation.
        from repro.engine.cache import MISS
        from repro.engine.tasks import simulate_cache_key

        key = simulate_cache_key(self.setup, mix, machine)
        engine = self.setup.engine
        if engine.cache is not None:
            cached = engine.cache.get(key)
            if cached is not MISS:
                return cached
        run = self.setup.simulate(mix, machine)
        engine.store(key, run)
        return run

    def _fit(self, machine: "MachineConfig", num_programs: int) -> np.ndarray:
        """Fit the ridge model for one (machine, mix size) pair."""
        mixes = self.setup.mixes(
            num_programs, self.num_mixes, seed=self.seed, unique=False
        )
        rows: List[List[float]] = []
        targets: List[float] = []
        for mix in mixes:
            run = self._detailed_run(mix, machine)
            profiles = self.setup.mix_profiles(mix, machine)
            stats_by_core = {stats.core: stats for stats in run.programs}
            for core, name in enumerate(mix.programs):
                own = profiles[name]
                co = [
                    profiles[other]
                    for index, other in enumerate(mix.programs)
                    if index != core
                ]
                rows.append(_features(own, co))
                stats = stats_by_core[core]
                targets.append(stats.cpi / stats.isolated_cpi)
        matrix = np.asarray(rows, dtype=np.float64)
        observed = np.asarray(targets, dtype=np.float64)
        # Ridge via an augmented least-squares system: unique solution,
        # deterministic across numpy versions and BLAS backends.
        num_features = matrix.shape[1]
        augmented = np.vstack([matrix, np.sqrt(RIDGE_LAMBDA) * np.eye(num_features)])
        padded = np.concatenate([observed, np.zeros(num_features)])
        weights, _, _, _ = np.linalg.lstsq(augmented, padded, rcond=None)
        return weights

    def _weights(self, machine: "MachineConfig", num_programs: int) -> np.ndarray:
        models: Dict[Tuple[str, str, int], np.ndarray] = _MODEL_CACHE.setdefault(
            self.setup, {}
        )
        key = (self.spec, machine.profile_key(), num_programs)
        if key not in models:
            models[key] = self._fit(machine, num_programs)
        return models[key]

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        if machine.num_cores != mix.num_programs:
            machine = machine.with_num_cores(mix.num_programs)
        weights = self._weights(machine, mix.num_programs)
        profiles = self.setup.mix_profiles(mix, machine)
        programs = []
        for core, name in enumerate(mix.programs):
            own = profiles[name]
            co = [
                profiles[other]
                for index, other in enumerate(mix.programs)
                if index != core
            ]
            # Sharing a cache never speeds a program up in this model:
            # clip the predicted slowdown at no-contention (1.0).
            slowdown = max(1.0, float(np.dot(_features(own, co), weights)))
            programs.append(
                ProgramPrediction(
                    name=name,
                    core=core,
                    single_core_cpi=own.cpi,
                    predicted_cpi=slowdown * own.cpi,
                )
            )
        return MixPrediction(
            machine_name=machine.name,
            programs=tuple(programs),
            iterations=0,
            converged=True,
            predictor=self.spec,
        )

    def describe(self) -> str:
        return (
            f"ridge regression over single-core profile features, trained on "
            f"{self.num_mixes} detailed runs (seed {self.seed}) pulled from the "
            f"result cache"
        )
