"""Unified Predictor API: one registry for every performance estimator.

The paper compares *estimators* of multi-program performance — the
iterative MPPM, two degenerate baselines and detailed simulation.  This
package gives all of them one first-class abstraction (the
:class:`Predictor` protocol) and one spec-string registry, mirroring
:func:`repro.contention.make_contention_model`:

======================== ==================================================
Spec                     Estimator
======================== ==================================================
``mppm:foa``             iterative MPPM, FOA contention model (the default)
``mppm:sdc``             iterative MPPM, stack-distance-competition model
``mppm:prob``            iterative MPPM, inductive-probability model
``mppm:windowed``        MPPM (FOA) with windowed per-interval CPI progress
``mppm:figure2``         MPPM (FOA) with the literal Figure 2 update rule
``baseline:no-contention`` cache sharing assumed free (single-core CPIs)
``baseline:one-shot``    one contention pass, no iterative entanglement
``hybrid:k=K``           MPPM bulk + detailed spot-checks for the worst K
``learned:n=N,seed=S``   ridge regression trained on cached detailed runs
``interp:anchors=A+B``   design-space interpolation from two detailed anchors
``detailed``             the detailed shared-LLC reference simulation
======================== ==================================================

``make_predictor(spec, setup)`` constructs a predictor bound to an
:class:`~repro.experiments.setup.ExperimentSetup` (its profile store
and, for ``detailed``, its memoised reference simulations).  Every
experiment and CLI command accepts these specs, and
:mod:`repro.engine.tasks` caches and parallelises them keyed by
``(spec, mix, machine)`` — so any new estimator (a learned model, a
hybrid scheme, a new contention model) becomes available to the whole
stack through a single registry entry here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple

from repro.contention import available_contention_models
from repro.core.mppm import MPPMConfig
from repro.predictors.base import Predictor, PredictorError, tag_prediction
from repro.predictors.baseline import VARIANTS as _BASELINE_VARIANTS, BaselinePredictor
from repro.predictors.detailed import DetailedSimulationPredictor, prediction_from_run
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.interp import InterpolatedPredictor
from repro.predictors.learned import LearnedPredictor
from repro.predictors.mppm import MPPMPredictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.setup import ExperimentSetup

__all__ = [
    "Predictor",
    "PredictorError",
    "MPPMPredictor",
    "BaselinePredictor",
    "DetailedSimulationPredictor",
    "HybridPredictor",
    "InterpolatedPredictor",
    "LearnedPredictor",
    "DEFAULT_PREDICTOR",
    "DEFAULT_HYBRID_K",
    "DEFAULT_LEARNED_MIXES",
    "DEFAULT_LEARNED_SEED",
    "DEFAULT_INTERP_ANCHORS",
    "hybrid_worst_k",
    "learned_params",
    "interp_anchors",
    "available_predictors",
    "canonical_spec",
    "describe_predictors",
    "lookup_spec",
    "make_predictor",
    "prediction_from_run",
    "predictor_requires_traces",
    "tag_prediction",
]

#: The spec every experiment and CLI command defaults to (the paper's model).
DEFAULT_PREDICTOR = "mppm:foa"

#: Spot-check budget of the bare ``hybrid`` shorthand.
DEFAULT_HYBRID_K = 4

#: Training-set size and sampling seed of the bare ``learned`` shorthand.
DEFAULT_LEARNED_MIXES = 24
DEFAULT_LEARNED_SEED = 0

#: Anchor configurations of the bare ``interp`` shorthand: the Table 2
#: design-space extremes (smallest and largest LLC).
DEFAULT_INTERP_ANCHORS = (1, 6)

#: Size of the Table 2 LLC design space (valid interp anchor range).
_DESIGN_SPACE_SIZE = 6

#: MPPM model variants exposed as their own specs (ablation entries):
#: variant name -> (MPPMConfig, one-line description).  Both run over
#: the default FOA contention model.
_MPPM_VARIANTS: Mapping[str, Tuple[MPPMConfig, str]] = {
    "windowed": (
        MPPMConfig(use_windowed_cpi=True),
        "iterative MPPM (FOA) using windowed per-interval CPI for progress",
    ),
    "figure2": (
        MPPMConfig(literal_figure2_update=True),
        "iterative MPPM (FOA) with the paper's literal Figure 2 slowdown update",
    ),
}


def _spec_table() -> Mapping[str, str]:
    """spec -> one-line description, in canonical listing order."""
    table = {
        f"mppm:{name}": f"iterative MPPM with the {name.upper()} cache-contention model"
        for name in available_contention_models()
    }
    for variant, (_, description) in _MPPM_VARIANTS.items():
        table[f"mppm:{variant}"] = description
    for variant, (_, description) in _BASELINE_VARIANTS.items():
        table[f"baseline:{variant}"] = description
    table[f"hybrid:k={DEFAULT_HYBRID_K}"] = (
        "MPPM for the bulk, detailed spot-checks for each pool's predicted worst-K mixes"
    )
    table[f"learned:n={DEFAULT_LEARNED_MIXES},seed={DEFAULT_LEARNED_SEED}"] = (
        "ridge regression over single-core profile features, trained on cached detailed runs"
    )
    low, high = DEFAULT_INTERP_ANCHORS
    table[f"interp:anchors={low}+{high}"] = (
        "per-program CPI interpolated across the LLC design space from two detailed anchors"
    )
    table["detailed"] = "detailed shared-LLC multi-core simulation (the reference)"
    return table


def _canonical_hybrid(spec: str, normalised: str) -> str:
    """Canonicalise ``hybrid`` / ``hybrid:k=N`` (parametric, not table-bound)."""
    _, sep, rest = normalised.partition(":")
    if not sep or not rest:
        return f"hybrid:k={DEFAULT_HYBRID_K}"
    key, eq, value = rest.partition("=")
    if key.strip() != "k" or not eq:
        raise PredictorError(
            f"unknown predictor spec {spec!r}; the hybrid family takes "
            "hybrid:k=N (detailed spot-checks for each pool's predicted worst-N mixes)"
        )
    try:
        k = int(value)
    except ValueError:
        raise PredictorError(
            f"{spec!r}: the hybrid k parameter must be an integer, got {value.strip()!r}"
        ) from None
    if k < 1:
        raise PredictorError(f"{spec!r}: the hybrid k parameter must be >= 1, got {k}")
    return f"hybrid:k={k}"


def _canonical_learned(spec: str, normalised: str) -> str:
    """Canonicalise ``learned`` / ``learned:n=N,seed=S`` (parametric)."""
    _, sep, rest = normalised.partition(":")
    params = {"n": DEFAULT_LEARNED_MIXES, "seed": DEFAULT_LEARNED_SEED}
    if sep and rest:
        seen = set()
        for part in rest.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            if key not in params or not eq or key in seen:
                raise PredictorError(
                    f"unknown predictor spec {spec!r}; the learned family takes "
                    "learned:n=N,seed=S (N training mixes sampled with seed S)"
                )
            seen.add(key)
            try:
                params[key] = int(value)
            except ValueError:
                raise PredictorError(
                    f"{spec!r}: the learned {key} parameter must be an integer, "
                    f"got {value.strip()!r}"
                ) from None
    if params["n"] < 2:
        raise PredictorError(
            f"{spec!r}: the learned n parameter must be >= 2 training mixes, "
            f"got {params['n']}"
        )
    if params["seed"] < 0:
        raise PredictorError(
            f"{spec!r}: the learned seed must be >= 0, got {params['seed']}"
        )
    return f"learned:n={params['n']},seed={params['seed']}"


def _canonical_interp(spec: str, normalised: str) -> str:
    """Canonicalise ``interp`` / ``interp:anchors=A+B`` (parametric)."""
    _, sep, rest = normalised.partition(":")
    if not sep or not rest:
        low, high = DEFAULT_INTERP_ANCHORS
        return f"interp:anchors={low}+{high}"
    key, eq, value = rest.partition("=")
    pieces = value.split("+") if eq else []
    if key.strip() != "anchors" or len(pieces) != 2:
        raise PredictorError(
            f"unknown predictor spec {spec!r}; the interp family takes "
            "interp:anchors=A+B (two distinct Table 2 configuration numbers)"
        )
    try:
        anchors = sorted(int(piece) for piece in pieces)
    except ValueError:
        raise PredictorError(
            f"{spec!r}: interp anchors must be integers, got {value.strip()!r}"
        ) from None
    low, high = anchors
    if not (1 <= low <= _DESIGN_SPACE_SIZE and 1 <= high <= _DESIGN_SPACE_SIZE):
        raise PredictorError(
            f"{spec!r}: interp anchors must be Table 2 configuration numbers "
            f"in 1..{_DESIGN_SPACE_SIZE}, got {low} and {high}"
        )
    if low == high:
        raise PredictorError(
            f"{spec!r}: interp needs two distinct anchor configurations, "
            f"got #{low} twice"
        )
    return f"interp:anchors={low}+{high}"


def learned_params(spec: str) -> Tuple[int, int]:
    """(training mixes, seed) of a canonical ``learned:n=N,seed=S`` spec."""
    canonical = canonical_spec(spec)
    if not canonical.startswith("learned:"):
        raise PredictorError(f"{spec!r} is not a learned predictor spec")
    pairs = dict(part.split("=") for part in canonical.partition(":")[2].split(","))
    return int(pairs["n"]), int(pairs["seed"])


def interp_anchors(spec: str) -> Tuple[int, int]:
    """The (low, high) anchor pair of a canonical ``interp:anchors=A+B`` spec."""
    canonical = canonical_spec(spec)
    if not canonical.startswith("interp:"):
        raise PredictorError(f"{spec!r} is not an interp predictor spec")
    low, _, high = canonical.partition("=")[2].partition("+")
    return int(low), int(high)


def hybrid_worst_k(spec: str) -> int:
    """The spot-check budget ``K`` of a canonical ``hybrid:k=K`` spec."""
    canonical = canonical_spec(spec)
    if not canonical.startswith("hybrid:"):
        raise PredictorError(f"{spec!r} is not a hybrid predictor spec")
    return int(canonical.partition("=")[2])


def available_predictors() -> List[str]:
    """All registered predictor specs, in canonical listing order."""
    return list(_spec_table())


def canonical_spec(spec: str) -> str:
    """Normalise and validate a predictor spec string.

    ``"mppm"`` is shorthand for the default ``"mppm:foa"``.  Raises
    :class:`PredictorError` (a ``ValueError``) listing the available
    specs for anything the registry does not know.
    """
    normalised = spec.strip().lower()
    if normalised == "mppm":
        normalised = DEFAULT_PREDICTOR
    if normalised == "hybrid" or normalised.startswith("hybrid:"):
        # Parametric family: any k >= 1 is valid, not just the listed exemplar.
        return _canonical_hybrid(spec, normalised)
    if normalised == "learned" or normalised.startswith("learned:"):
        return _canonical_learned(spec, normalised)
    if normalised == "interp" or normalised.startswith("interp:"):
        return _canonical_interp(spec, normalised)
    if normalised not in _spec_table():
        raise PredictorError(
            f"unknown predictor spec {spec!r}; available predictors: "
            + ", ".join(available_predictors())
        )
    return normalised


def make_predictor(
    spec: str,
    setup: "ExperimentSetup",
    mppm_config: Optional[MPPMConfig] = None,
) -> Predictor:
    """Construct a predictor by spec, bound to an experiment setup.

    ``mppm_config`` tunes the iterative model and is only meaningful
    for ``mppm:<contention>`` specs; passing it with any other spec —
    including the ``mppm:windowed`` / ``mppm:figure2`` variants, whose
    configuration *is* their identity — is an error.
    """
    canonical = canonical_spec(spec)
    family, _, variant = canonical.partition(":")
    if family == "mppm" and variant in _MPPM_VARIANTS:
        if mppm_config is not None:
            raise PredictorError(
                f"{canonical!r} carries its own MPPMConfig; pass a plain "
                "mppm:<contention> spec to tune the model explicitly"
            )
        variant_config, _ = _MPPM_VARIANTS[variant]
        return MPPMPredictor(
            setup, contention="foa", mppm_config=variant_config, spec=canonical
        )
    if family != "mppm" and mppm_config is not None:
        raise PredictorError(
            f"mppm_config only applies to mppm:* predictors, not {canonical!r}"
        )
    if family == "mppm":
        return MPPMPredictor(setup, contention=variant, mppm_config=mppm_config)
    if family == "baseline":
        return BaselinePredictor(setup, variant=variant)
    if family == "hybrid":
        return HybridPredictor(setup, worst_k=hybrid_worst_k(canonical), spec=canonical)
    if family == "learned":
        num_mixes, seed = learned_params(canonical)
        return LearnedPredictor(setup, num_mixes=num_mixes, seed=seed, spec=canonical)
    if family == "interp":
        return InterpolatedPredictor(
            setup, anchors=interp_anchors(canonical), spec=canonical
        )
    return DetailedSimulationPredictor(setup)


def lookup_spec(spec: str) -> str:
    """Best-effort canonicalisation for result lookups.

    Result accessors key by canonical spec; this lets them accept the
    same shorthand the experiments accept (``"mppm"``, mixed case)
    while passing unknown strings through unchanged so the accessor
    raises its own KeyError rather than a registry error.
    """
    try:
        return canonical_spec(spec)
    except PredictorError:
        return spec


def predictor_requires_traces(spec: str) -> bool:
    """Whether the predictor replays LLC access traces (vs. profiles only).

    The engine's parallel warm-up phase uses this to decide whether a
    disk-cached profile is enough or the full (profile, trace) bundle
    must be simulated before mix jobs fan out.  ``hybrid:*``,
    ``learned:*`` and ``interp:*`` need traces too: their spot-check /
    training / anchor stages all run the detailed simulator.
    """
    canonical = canonical_spec(spec)
    return canonical == "detailed" or canonical.startswith(
        ("hybrid:", "learned:", "interp:")
    )


def describe_predictors() -> List[Tuple[str, str]]:
    """(spec, description) rows for every registered predictor."""
    return list(_spec_table().items())
