"""Unified Predictor API: one registry for every performance estimator.

The paper compares *estimators* of multi-program performance — the
iterative MPPM, two degenerate baselines and detailed simulation.  This
package gives all of them one first-class abstraction (the
:class:`Predictor` protocol) and one spec-string registry, mirroring
:func:`repro.contention.make_contention_model`:

======================== ==================================================
Spec                     Estimator
======================== ==================================================
``mppm:foa``             iterative MPPM, FOA contention model (the default)
``mppm:sdc``             iterative MPPM, stack-distance-competition model
``mppm:prob``            iterative MPPM, inductive-probability model
``mppm:windowed``        MPPM (FOA) with windowed per-interval CPI progress
``mppm:figure2``         MPPM (FOA) with the literal Figure 2 update rule
``baseline:no-contention`` cache sharing assumed free (single-core CPIs)
``baseline:one-shot``    one contention pass, no iterative entanglement
``detailed``             the detailed shared-LLC reference simulation
======================== ==================================================

``make_predictor(spec, setup)`` constructs a predictor bound to an
:class:`~repro.experiments.setup.ExperimentSetup` (its profile store
and, for ``detailed``, its memoised reference simulations).  Every
experiment and CLI command accepts these specs, and
:mod:`repro.engine.tasks` caches and parallelises them keyed by
``(spec, mix, machine)`` — so any new estimator (a learned model, a
hybrid scheme, a new contention model) becomes available to the whole
stack through a single registry entry here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple

from repro.contention import available_contention_models
from repro.core.mppm import MPPMConfig
from repro.predictors.base import Predictor, PredictorError, tag_prediction
from repro.predictors.baseline import VARIANTS as _BASELINE_VARIANTS, BaselinePredictor
from repro.predictors.detailed import DetailedSimulationPredictor, prediction_from_run
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.mppm import MPPMPredictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.setup import ExperimentSetup

__all__ = [
    "Predictor",
    "PredictorError",
    "MPPMPredictor",
    "BaselinePredictor",
    "DetailedSimulationPredictor",
    "HybridPredictor",
    "DEFAULT_PREDICTOR",
    "DEFAULT_HYBRID_K",
    "hybrid_worst_k",
    "available_predictors",
    "canonical_spec",
    "describe_predictors",
    "lookup_spec",
    "make_predictor",
    "prediction_from_run",
    "predictor_requires_traces",
    "tag_prediction",
]

#: The spec every experiment and CLI command defaults to (the paper's model).
DEFAULT_PREDICTOR = "mppm:foa"

#: Spot-check budget of the bare ``hybrid`` shorthand.
DEFAULT_HYBRID_K = 4

#: MPPM model variants exposed as their own specs (ablation entries):
#: variant name -> (MPPMConfig, one-line description).  Both run over
#: the default FOA contention model.
_MPPM_VARIANTS: Mapping[str, Tuple[MPPMConfig, str]] = {
    "windowed": (
        MPPMConfig(use_windowed_cpi=True),
        "iterative MPPM (FOA) using windowed per-interval CPI for progress",
    ),
    "figure2": (
        MPPMConfig(literal_figure2_update=True),
        "iterative MPPM (FOA) with the paper's literal Figure 2 slowdown update",
    ),
}


def _spec_table() -> Mapping[str, str]:
    """spec -> one-line description, in canonical listing order."""
    table = {
        f"mppm:{name}": f"iterative MPPM with the {name.upper()} cache-contention model"
        for name in available_contention_models()
    }
    for variant, (_, description) in _MPPM_VARIANTS.items():
        table[f"mppm:{variant}"] = description
    for variant, (_, description) in _BASELINE_VARIANTS.items():
        table[f"baseline:{variant}"] = description
    table[f"hybrid:k={DEFAULT_HYBRID_K}"] = (
        "MPPM for the bulk, detailed spot-checks for each pool's predicted worst-K mixes"
    )
    table["detailed"] = "detailed shared-LLC multi-core simulation (the reference)"
    return table


def _canonical_hybrid(spec: str, normalised: str) -> str:
    """Canonicalise ``hybrid`` / ``hybrid:k=N`` (parametric, not table-bound)."""
    _, sep, rest = normalised.partition(":")
    if not sep or not rest:
        return f"hybrid:k={DEFAULT_HYBRID_K}"
    key, eq, value = rest.partition("=")
    if key.strip() != "k" or not eq:
        raise PredictorError(
            f"unknown predictor spec {spec!r}; the hybrid family takes "
            "hybrid:k=N (detailed spot-checks for each pool's predicted worst-N mixes)"
        )
    try:
        k = int(value)
    except ValueError:
        raise PredictorError(
            f"{spec!r}: the hybrid k parameter must be an integer, got {value.strip()!r}"
        ) from None
    if k < 1:
        raise PredictorError(f"{spec!r}: the hybrid k parameter must be >= 1, got {k}")
    return f"hybrid:k={k}"


def hybrid_worst_k(spec: str) -> int:
    """The spot-check budget ``K`` of a canonical ``hybrid:k=K`` spec."""
    canonical = canonical_spec(spec)
    if not canonical.startswith("hybrid:"):
        raise PredictorError(f"{spec!r} is not a hybrid predictor spec")
    return int(canonical.partition("=")[2])


def available_predictors() -> List[str]:
    """All registered predictor specs, in canonical listing order."""
    return list(_spec_table())


def canonical_spec(spec: str) -> str:
    """Normalise and validate a predictor spec string.

    ``"mppm"`` is shorthand for the default ``"mppm:foa"``.  Raises
    :class:`PredictorError` (a ``ValueError``) listing the available
    specs for anything the registry does not know.
    """
    normalised = spec.strip().lower()
    if normalised == "mppm":
        normalised = DEFAULT_PREDICTOR
    if normalised == "hybrid" or normalised.startswith("hybrid:"):
        # Parametric family: any k >= 1 is valid, not just the listed exemplar.
        return _canonical_hybrid(spec, normalised)
    if normalised not in _spec_table():
        raise PredictorError(
            f"unknown predictor spec {spec!r}; available predictors: "
            + ", ".join(available_predictors())
        )
    return normalised


def make_predictor(
    spec: str,
    setup: "ExperimentSetup",
    mppm_config: Optional[MPPMConfig] = None,
) -> Predictor:
    """Construct a predictor by spec, bound to an experiment setup.

    ``mppm_config`` tunes the iterative model and is only meaningful
    for ``mppm:<contention>`` specs; passing it with any other spec —
    including the ``mppm:windowed`` / ``mppm:figure2`` variants, whose
    configuration *is* their identity — is an error.
    """
    canonical = canonical_spec(spec)
    family, _, variant = canonical.partition(":")
    if family == "mppm" and variant in _MPPM_VARIANTS:
        if mppm_config is not None:
            raise PredictorError(
                f"{canonical!r} carries its own MPPMConfig; pass a plain "
                "mppm:<contention> spec to tune the model explicitly"
            )
        variant_config, _ = _MPPM_VARIANTS[variant]
        return MPPMPredictor(
            setup, contention="foa", mppm_config=variant_config, spec=canonical
        )
    if family != "mppm" and mppm_config is not None:
        raise PredictorError(
            f"mppm_config only applies to mppm:* predictors, not {canonical!r}"
        )
    if family == "mppm":
        return MPPMPredictor(setup, contention=variant, mppm_config=mppm_config)
    if family == "baseline":
        return BaselinePredictor(setup, variant=variant)
    if family == "hybrid":
        return HybridPredictor(setup, worst_k=hybrid_worst_k(canonical), spec=canonical)
    return DetailedSimulationPredictor(setup)


def lookup_spec(spec: str) -> str:
    """Best-effort canonicalisation for result lookups.

    Result accessors key by canonical spec; this lets them accept the
    same shorthand the experiments accept (``"mppm"``, mixed case)
    while passing unknown strings through unchanged so the accessor
    raises its own KeyError rather than a registry error.
    """
    try:
        return canonical_spec(spec)
    except PredictorError:
        return spec


def predictor_requires_traces(spec: str) -> bool:
    """Whether the predictor replays LLC access traces (vs. profiles only).

    The engine's parallel warm-up phase uses this to decide whether a
    disk-cached profile is enough or the full (profile, trace) bundle
    must be simulated before mix jobs fan out.  ``hybrid:*`` needs
    traces too: its spot-check stage runs the detailed simulator.
    """
    canonical = canonical_spec(spec)
    return canonical == "detailed" or canonical.startswith("hybrid:")


def describe_predictors() -> List[Tuple[str, str]]:
    """(spec, description) rows for every registered predictor."""
    return list(_spec_table().items())
