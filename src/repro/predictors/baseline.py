"""The paper's baselines behind the Predictor API (``baseline:*``).

``baseline:no-contention`` assumes cache sharing is free (every program
keeps its single-core CPI); ``baseline:one-shot`` applies the
cache-contention model exactly once, without the iterative
entanglement.  Both delegate to the classes in
:mod:`repro.core.baselines`, so registry predictions are bit-identical
to calling those classes directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.baselines import NoContentionPredictor, OneShotContentionPredictor
from repro.core.result import MixPrediction
from repro.predictors.base import tag_prediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.machine import MachineConfig
    from repro.experiments.setup import ExperimentSetup
    from repro.workloads.mixes import WorkloadMix

#: variant name -> (wrapped baseline class, one-line description)
VARIANTS = {
    "no-contention": (
        NoContentionPredictor,
        "assumes cache sharing is free: every program keeps its single-core CPI",
    ),
    "one-shot": (
        OneShotContentionPredictor,
        "one pass of the FOA contention model, no iterative entanglement",
    ),
}


class BaselinePredictor:
    """No-contention and one-shot baselines behind the Predictor API."""

    def __init__(self, setup: "ExperimentSetup", variant: str) -> None:
        self.setup = setup
        self.variant = variant
        self._cls, self._description = VARIANTS[variant]
        self.spec = f"baseline:{variant}"

    def predict(self, mix: "WorkloadMix", machine: "MachineConfig") -> MixPrediction:
        """Run the wrapped baseline on the mix's single-core profiles."""
        profiles = self.setup.mix_profiles(mix, machine)
        return tag_prediction(self._cls(machine).predict_mix(mix, profiles), self.spec)

    def describe(self) -> str:
        return self._description
