"""A tiny asyncio JSON/HTTP client for the prediction service.

Stdlib-only counterpart of :mod:`repro.service.http`: one keep-alive
connection per :class:`ServiceClient`, requests serialised on it (open
several clients for concurrency — that is exactly what the load
generator does).  Used by the tests, the CI smoke script and
``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union


class ServiceClientError(RuntimeError):
    """A non-2xx response; carries the status and the server's payload."""

    def __init__(self, status: int, payload: Dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """``async with ServiceClient(host, port) as client: ...``"""

    def __init__(self, host: str = "127.0.0.1", port: int = 8181) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------
    # Raw requests
    # ------------------------------------------------------------------

    async def request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        """One request/response cycle; returns ``(status, json_payload)``."""
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        async with self._lock:
            self._writer.write(head.encode("latin-1") + body)
            await self._writer.drain()
            return await self._read_response()

    async def _read_response(self) -> Tuple[int, Dict]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("the service closed the connection")
        parts = status_line.decode("latin-1").split()
        status = int(parts[1])
        content_length = 0
        close_after = False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                close_after = True
        body = await self._reader.readexactly(content_length) if content_length else b"{}"
        if close_after:
            await self.close()
        return status, json.loads(body.decode("utf-8"))

    async def _json(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        status, body = await self.request(method, path, payload)
        if status != 200:
            raise ServiceClientError(status, body)
        return body

    # ------------------------------------------------------------------
    # Endpoint conveniences
    # ------------------------------------------------------------------

    async def healthz(self) -> Dict:
        return await self._json("GET", "/healthz")

    async def models(self) -> Dict:
        return await self._json("GET", "/models")

    async def workloads(self) -> Dict:
        return await self._json("GET", "/workloads")

    async def stats(self) -> Dict:
        return await self._json("GET", "/stats")

    async def shutdown(self) -> Dict:
        return await self._json("POST", "/shutdown")

    async def predict(
        self,
        mix: Optional[Sequence[str]] = None,
        mixes: Optional[Sequence[Sequence[str]]] = None,
        sample: Optional[Dict] = None,
        predictor: Optional[str] = None,
        workload: Optional[str] = None,
        machine: Optional[Union[int, str, Dict]] = None,
    ) -> Dict:
        """``POST /predict`` with the same fields the wire format takes."""
        payload: Dict = {}
        if mix is not None:
            payload["mix"] = list(mix)
        if mixes is not None:
            payload["mixes"] = [list(row) for row in mixes]
        if sample is not None:
            payload["sample"] = sample
        if predictor is not None:
            payload["predictor"] = predictor
        if workload is not None:
            payload["workload"] = workload
        if machine is not None:
            payload["machine"] = machine
        return await self._json("POST", "/predict", payload)


async def predict_once(
    host: str, port: int, mix: Sequence[str], **kwargs: object
) -> Dict:
    """One-shot convenience: connect, predict one mix, disconnect."""
    async with ServiceClient(host, port) as client:
        return await client.predict(mix=list(mix), **kwargs)  # type: ignore[arg-type]


__all__: List[str] = ["ServiceClient", "ServiceClientError", "predict_once"]
