"""Live service counters: requests, batching, dedup and latency percentiles.

Everything ``GET /stats`` reports that the engine does not already
count lives here.  The counters are plain ints mutated from the event
loop and (for compute accounting) the single batch-worker thread —
int increments are atomic under the GIL, and the service only ever
runs one worker, so no locking is needed.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, List


class LatencyTracker:
    """A bounded reservoir of request latencies with percentile summaries."""

    def __init__(self, maxlen: int = 8192) -> None:
        self._seconds: Deque[float] = deque(maxlen=maxlen)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._seconds.append(seconds)
        self.count += 1

    @staticmethod
    def _percentile(sorted_ms: List[float], percentile: float) -> float:
        # Nearest-rank: the smallest value with at least `percentile`
        # per cent of the sample at or below it.
        rank = max(1, math.ceil(percentile / 100.0 * len(sorted_ms)))
        return sorted_ms[rank - 1]

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99, in milliseconds."""
        if not self._seconds:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        sorted_ms = sorted(value * 1000.0 for value in self._seconds)
        return {
            "count": self.count,
            "mean": sum(sorted_ms) / len(sorted_ms),
            "p50": self._percentile(sorted_ms, 50),
            "p95": self._percentile(sorted_ms, 95),
            "p99": self._percentile(sorted_ms, 99),
        }


class ServiceStats:
    """Counters behind ``GET /stats``."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors = 0
        #: Predictions returned to clients (cache hits included).
        self.predictions_served = 0
        #: Predictions actually computed (engine result-cache stores) —
        #: a warm server answers with this number standing still.
        self.predictions_computed = 0
        #: Concurrent identical requests folded onto an in-flight future.
        self.inflight_deduped = 0
        self.batches = 0
        self.batch_items = 0
        self.max_batch_size = 0
        #: Per-predictor solve counters: spec -> batches/items/max_size
        #: and cumulative solve time (seconds, wall clock of the engine
        #: run for that predictor's slice of each coalesced batch).
        self.predictor_batches: Dict[str, Dict[str, float]] = {}
        self.latency = LatencyTracker()

    def record_request(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_items += size
        self.max_batch_size = max(self.max_batch_size, size)

    def record_predictor_batch(self, predictor: str, size: int, seconds: float) -> None:
        entry = self.predictor_batches.setdefault(
            predictor, {"batches": 0, "items": 0, "max_size": 0, "solve_seconds": 0.0}
        )
        entry["batches"] += 1
        entry["items"] += size
        entry["max_size"] = max(entry["max_size"], size)
        entry["solve_seconds"] += seconds

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started

    def snapshot(self) -> Dict:
        """The stats payload (engine cache counters are merged in by the app)."""
        return {
            "uptime_seconds": self.uptime_seconds(),
            "requests": {"total": sum(self.requests.values()), "errors": self.errors, **self.requests},
            "predictions": {
                "served": self.predictions_served,
                "computed": self.predictions_computed,
                "inflight_deduped": self.inflight_deduped,
            },
            "batches": {
                "count": self.batches,
                "items": self.batch_items,
                "max_size": self.max_batch_size,
                "mean_size": self.batch_items / self.batches if self.batches else 0.0,
            },
            "predictors": {
                spec: {
                    "batches": entry["batches"],
                    "items": entry["items"],
                    "max_size": entry["max_size"],
                    "mean_size": entry["items"] / entry["batches"]
                    if entry["batches"]
                    else 0.0,
                    "solve_time_ms": entry["solve_seconds"] * 1000.0,
                }
                for spec, entry in sorted(self.predictor_batches.items())
            },
            "latency_ms": self.latency.summary(),
        }
