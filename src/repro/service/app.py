"""The prediction service: registry-backed HTTP endpoints over the engine.

:class:`PredictionService` owns one shared, memoising engine and a lazy
family of :class:`~repro.experiments.setup.ExperimentSetup` objects (one
per workload spec requested), and serves:

* ``POST /predict`` — MPPM (or baseline / detailed) predictions for an
  explicit mix, a list of mixes, or a sampled batch; body fields are
  the same spec strings the CLI takes (``predictor``, ``workload``,
  ``machine``).
* ``GET /models`` / ``GET /workloads`` — the registries, exactly the
  payloads of ``repro models --json`` / ``repro workloads --json``.
* ``GET /healthz`` — liveness (and readiness: the server only starts
  listening after the profile preload finished).
* ``GET /stats`` — live counters: requests, batching, in-flight dedup,
  engine cache hits, latency percentiles.
* ``POST /shutdown`` — clean shutdown (used by the CI smoke test).

Single-core profiles are bundled into the shared
:class:`~repro.profiling.ProfileStore` once at startup
(:meth:`PredictionService.start` preloads the configured workload) and
then read concurrently; predictions are computed through the batching
layer and remembered by the engine's content-hash result cache, so a
warm server recomputes nothing.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import MachineConfig
from repro.engine import create_engine
from repro.experiments.setup import ExperimentConfig, ExperimentSetup
from repro.predictors import DEFAULT_PREDICTOR, PredictorError, canonical_spec
from repro.service.batching import PredictionBatcher, PredictOp
from repro.service.http import HttpError, HttpServer, Request, Response
from repro.service.payloads import models_payload, prediction_payload, workloads_payload
from repro.service.stats import ServiceStats
from repro.workloads import DEFAULT_WORKLOAD, WorkloadMix, canonical_workload_spec
from repro.workloads.benchmark import WorkloadError


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can turn into a running service."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Engine worker count (1 → serial; the batcher still coalesces) or
    #: a ``fleet:`` spec string for a multi-host worker fleet
    #: (``repro serve --fleet``; see :mod:`repro.engine.remote`).
    jobs: Union[int, str] = 1
    #: Campaign cache directory; ``None`` keeps memoisation in memory.
    cache_dir: Optional[Union[str, Path]] = None
    #: The workload preloaded at startup and used when a request names none.
    workload: str = DEFAULT_WORKLOAD
    #: Micro-batch window (seconds) and size cap.
    window: float = 0.005
    max_batch: int = 64
    #: Experiment knobs — must match the CLI defaults so served
    #: predictions are bit-identical to ``repro predict``.
    instructions: int = 200_000
    scale: int = 16
    seed: int = 0
    #: Skip the startup profile preload (tests; cold-start benchmarks).
    preload: bool = True

    def experiment_config(self) -> ExperimentConfig:
        # Mirrors the CLI's `_build_setup`: 50 intervals per trace.
        return ExperimentConfig(
            scale=self.scale,
            num_instructions=self.instructions,
            interval_instructions=max(1, self.instructions // 50),
            seed=self.seed,
        )


class PredictionService:
    """The handler behind the HTTP server (usable without it, too)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.stats = ServiceStats()
        self.engine = create_engine(
            jobs=self.config.jobs, cache_dir=self.config.cache_dir, memory_cache=True
        )
        self._experiment_config = self.config.experiment_config()
        self._setups: Dict[str, ExperimentSetup] = {}
        self._worker = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-serve")
        self.batcher = PredictionBatcher(
            self._run_batch,
            self._worker,
            window=self.config.window,
            max_batch=self.config.max_batch,
            stats=self.stats,
        )
        self.server = HttpServer(self.handle, host=self.config.host, port=self.config.port)
        self.shutdown_event = asyncio.Event()
        self.preloaded_profiles = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "PredictionService":
        """Preload profiles, then start listening (ready when returning)."""
        if self.config.preload:
            setup = self._setup_for(self.config.workload)
            loop = asyncio.get_running_loop()
            self.preloaded_profiles = await loop.run_in_executor(
                self._worker, setup.store.preload, setup.suite, setup.machine()
            )
        await self.server.start()
        return self

    async def close(self) -> None:
        await self.batcher.close()
        await self.server.close()
        self._worker.shutdown(wait=True)
        for setup in self._setups.values():
            setup.close()

    @property
    def port(self) -> int:
        return self.server.port

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        endpoint = f"{request.method} {request.path}"
        self.stats.record_request(endpoint)
        try:
            return await self._route(request)
        except HttpError:
            self.stats.errors += 1
            raise

    async def _route(self, request: Request) -> Response:
        path, method = request.path.rstrip("/") or "/", request.method
        if path == "/predict":
            if method != "POST":
                raise HttpError(405, "use POST /predict")
            return await self._handle_predict(request)
        if path == "/shutdown":
            if method != "POST":
                raise HttpError(405, "use POST /shutdown")
            self.shutdown_event.set()
            return Response({"status": "shutting down"})
        if method != "GET":
            raise HttpError(405, f"{method} is not supported on {path}")
        if path == "/":
            return Response(
                {
                    "service": "repro prediction service",
                    "endpoints": [
                        "POST /predict",
                        "GET /models",
                        "GET /workloads",
                        "GET /healthz",
                        "GET /stats",
                        "POST /shutdown",
                    ],
                }
            )
        if path == "/healthz":
            return Response(
                {
                    "status": "ok",
                    "uptime_seconds": self.stats.uptime_seconds(),
                    "preloaded_profiles": self.preloaded_profiles,
                }
            )
        if path == "/models":
            return Response(models_payload())
        if path == "/workloads":
            return Response(workloads_payload())
        if path == "/stats":
            return Response(self.stats_payload())
        raise HttpError(404, f"unknown path {request.path}")

    def stats_payload(self) -> Dict:
        payload = self.stats.snapshot()
        payload["engine_cache"] = self.engine.cache_stats()
        backend = self.engine.backend
        if hasattr(backend, "stats"):
            # Fleet backends expose per-worker dispatch/cache counters.
            payload["fleet"] = backend.stats()
        payload["profiles"] = {
            spec: setup.store.cached_pairs() for spec, setup in sorted(self._setups.items())
        }
        payload["config"] = {
            "workload": canonical_workload_spec(self.config.workload),
            "jobs": self.config.jobs,
            "window": self.config.window,
            "max_batch": self.config.max_batch,
        }
        return payload

    # ------------------------------------------------------------------
    # /predict
    # ------------------------------------------------------------------

    async def _handle_predict(self, request: Request) -> Response:
        started = time.monotonic()
        payload = request.json()
        predictor, setup, mixes, machines, single, llc_config = self._parse_predict(payload)
        ops = [
            PredictOp(setup=setup, predictor=predictor, mix=mix, machine=machine)
            for mix, machine in zip(mixes, machines)
        ]
        predictions = await asyncio.gather(*(self.batcher.submit(op) for op in ops))
        self.stats.predictions_served += len(predictions)
        self.stats.latency.record(time.monotonic() - started)
        body: Dict = {
            "predictor": predictor,
            "workload": setup.workload_spec,
            "machine": {
                "llc_config": llc_config,
                "cores": [machine.num_cores for machine in machines],
            },
            "mixes": [list(mix.programs) for mix in mixes],
            "count": len(predictions),
            "predictions": [prediction_payload(prediction) for prediction in predictions],
        }
        if single:
            body["prediction"] = body["predictions"][0]
        return Response(body)

    def _parse_predict(
        self, payload: Dict
    ) -> Tuple[str, ExperimentSetup, List[WorkloadMix], List[MachineConfig], bool, int]:
        known = {"predictor", "workload", "mix", "mixes", "sample", "machine"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise HttpError(
                400, f"unknown field(s) {', '.join(unknown)}; expected {', '.join(sorted(known))}"
            )
        try:
            predictor = canonical_spec(str(payload.get("predictor", DEFAULT_PREDICTOR)))
        except PredictorError as error:
            raise HttpError(400, str(error)) from None
        try:
            setup = self._setup_for(str(payload.get("workload", self.config.workload)))
        except WorkloadError as error:
            raise HttpError(400, str(error)) from None
        mixes, single = self._parse_mixes(payload, setup)
        llc_config, cores = self._parse_machine(payload.get("machine"))
        machines = []
        for mix in mixes:
            if cores is not None and cores != mix.num_programs:
                raise HttpError(
                    400,
                    f"machine cores ({cores}) must match the mix size "
                    f"({mix.num_programs}) — each program runs on its own core",
                )
            try:
                machines.append(setup.machine(num_cores=mix.num_programs, llc_config=llc_config))
            except KeyError as error:
                raise HttpError(400, str(error).strip('"')) from None
        return predictor, setup, mixes, machines, single, llc_config

    def _parse_mixes(
        self, payload: Dict, setup: ExperimentSetup
    ) -> Tuple[List[WorkloadMix], bool]:
        given = [field for field in ("mix", "mixes", "sample") if field in payload]
        if len(given) != 1:
            raise HttpError(400, "provide exactly one of 'mix', 'mixes' or 'sample'")
        field = given[0]
        if field == "sample":
            return self._sample_mixes(payload["sample"], setup), False
        raw = payload[field]
        rows = [raw] if field == "mix" else raw
        if not isinstance(rows, list) or not rows:
            raise HttpError(400, f"'{field}' must be a non-empty list")
        mixes = [self._mix_from(row, setup) for row in rows]
        return mixes, field == "mix"

    def _mix_from(self, row: object, setup: ExperimentSetup) -> WorkloadMix:
        if (
            not isinstance(row, list)
            or not row
            or not all(isinstance(name, str) for name in row)
        ):
            raise HttpError(400, "a mix must be a non-empty list of benchmark names")
        names = setup.benchmark_names
        unknown = sorted(set(row) - set(names))
        if unknown:
            raise HttpError(
                400,
                f"unknown benchmark(s) {', '.join(unknown)} in workload "
                f"{setup.workload_spec}; valid names: {', '.join(names)}",
            )
        return WorkloadMix(programs=tuple(row))

    def _sample_mixes(self, spec: object, setup: ExperimentSetup) -> List[WorkloadMix]:
        if not isinstance(spec, dict):
            raise HttpError(
                400, "'sample' must be an object like {'programs': 4, 'count': 3, 'seed': 0}"
            )
        try:
            programs = int(spec.get("programs", 4))
            count = int(spec.get("count", 1))
            seed = int(spec.get("seed", 0))
        except (TypeError, ValueError):
            raise HttpError(400, "'programs', 'count' and 'seed' must be integers") from None
        unique = bool(spec.get("unique", True))
        category = spec.get("category")
        if programs < 1 or count < 1:
            raise HttpError(400, "'programs' and 'count' must be positive")
        try:
            return setup.mixes(programs, count, seed=seed, unique=unique, category=category)
        except WorkloadError as error:
            raise HttpError(400, str(error)) from None

    @staticmethod
    def _parse_machine(value: object) -> Tuple[int, Optional[int]]:
        """``machine`` field → (llc_config, explicit cores or None).

        Accepts nothing (LLC #1), an int, ``"llcN"``/``"N"`` strings, or
        ``{"llc_config": N, "cores": M}``.
        """
        cores: Optional[int] = None
        if value is None:
            return 1, None
        if isinstance(value, bool):
            raise HttpError(400, "'machine' must be an LLC configuration number or object")
        if isinstance(value, int):
            return value, None
        if isinstance(value, str):
            text = value.strip().lower()
            if text.startswith("llc"):
                text = text[3:]
            try:
                return int(text), None
            except ValueError:
                raise HttpError(
                    400, f"unknown machine spec {value!r}; use an LLC number like 1 or 'llc3'"
                ) from None
        if isinstance(value, dict):
            unknown = sorted(set(value) - {"llc_config", "cores"})
            if unknown:
                raise HttpError(
                    400,
                    f"unknown machine field(s) {', '.join(unknown)}; "
                    "expected llc_config, cores",
                )
            try:
                llc_config = int(value.get("llc_config", 1))
                cores = int(value["cores"]) if "cores" in value else None
            except (TypeError, ValueError):
                raise HttpError(400, "'llc_config' and 'cores' must be integers") from None
            return llc_config, cores
        raise HttpError(400, "'machine' must be an LLC configuration number or object")

    # ------------------------------------------------------------------
    # Worker-thread side
    # ------------------------------------------------------------------

    def _setup_for(self, workload: str) -> ExperimentSetup:
        spec = canonical_workload_spec(workload)
        setup = self._setups.get(spec)
        if setup is None:
            setup = ExperimentSetup(
                config=self._experiment_config,
                workload=spec,
                engine=self.engine,
                cache_dir=self.config.cache_dir,
            )
            self._setups[spec] = setup
        return setup

    def _run_batch(self, ops: Sequence[PredictOp]) -> List:
        """Execute one coalesced batch (runs on the single worker thread).

        Ops are grouped by (workload setup, predictor) — each group
        becomes one engine job graph via ``predictor_batch``, so a
        homogeneous ``mppm:*`` group rides the batched solver as one
        mix-major pass — and results are reassembled in submission
        order.  Each group's size and wall-clock solve time feed the
        per-predictor ``/stats`` counters.  Compute accounting is by
        result-cache store delta: entries the engine had to create
        during this batch are computed work, everything else was
        memoised.
        """
        stores_before = self.engine.cache_stats()["stores"]
        groups: Dict[Tuple[str, str], List[int]] = {}
        for index, op in enumerate(ops):
            groups.setdefault((op.setup.workload_spec, op.predictor), []).append(index)
        results: List = [None] * len(ops)
        for (_, predictor), indices in groups.items():
            setup = ops[indices[0]].setup
            started = time.perf_counter()
            predictions = setup.predictor_batch(
                [(predictor, ops[i].mix, ops[i].machine) for i in indices]
            )
            self.stats.record_predictor_batch(
                predictor, len(indices), time.perf_counter() - started
            )
            for index, prediction in zip(indices, predictions):
                results[index] = prediction
        self.stats.predictions_computed += (
            self.engine.cache_stats()["stores"] - stores_before
        )
        return results
