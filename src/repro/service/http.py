"""A minimal asyncio HTTP/1.1 server — stdlib only, JSON in, JSON out.

The prediction service deliberately avoids third-party web frameworks
(the whole repo runs on the baked-in python toolchain), so this module
implements just enough of HTTP/1.1 on top of ``asyncio`` streams for a
local JSON API: request-line + header parsing, ``Content-Length``
bodies, keep-alive connections, and JSON responses.  Handlers receive
a :class:`Request` and return a :class:`Response`; anything they raise
as :class:`HttpError` becomes a structured ``{"error": ...}`` payload
with that status, and any other exception becomes a 500.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Request bodies above this are rejected with 413 (a predict request
#: is a few hundred bytes; this is a local capacity-planning tool, not
#: an upload endpoint).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Header-count bound (anything real uses a handful).
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An error with an HTTP status; the handler's structured failure path."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict:
        """The body as a JSON object, or a structured 400."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


@dataclass
class Response:
    """A JSON response (the payload is serialised by the server)."""

    payload: Dict
    status: int = 200


Handler = Callable[[Request], Awaitable[Response]]


class HttpServer:
    """Serve a single async JSON handler over HTTP/1.1.

    ``port=0`` binds an ephemeral port; the bound port is available as
    ``self.port`` after :meth:`start`.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "HttpServer":
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HttpError as error:
                    await self._write_response(
                        writer, Response({"error": error.message}, status=error.status), False
                    )
                    break
                if request is None:
                    break
                keep_alive = request.headers.get("connection", "keep-alive").lower() != "close"
                try:
                    response = await self.handler(request)
                except HttpError as error:
                    response = Response({"error": error.message}, status=error.status)
                except Exception as error:  # noqa: BLE001 - a handler bug must not kill the server
                    response = Response(
                        {"error": f"internal error: {type(error).__name__}: {error}"}, status=500
                    )
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise HttpError(400, "malformed request line")
        method, target, version = parts
        split = urlsplit(target)
        headers: Dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise HttpError(400, "too many headers")
            name, separator, value = header_line.decode("latin-1").partition(":")
            if not separator:
                raise HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        if version.upper() == "HTTP/1.0" and "connection" not in headers:
            headers["connection"] = "close"
        raw_length = headers.get("content-length", "0")
        # Bare int() accepts surrounding whitespace, an optional sign
        # and non-ASCII digits — all of which clients encode (and
        # intermediaries interpret) inconsistently; RFC 9110 allows
        # ASCII digits only, so anything else is a malformed header.
        if not (raw_length.isascii() and raw_length.isdigit()):
            raise HttpError(400, "malformed Content-Length header")
        content_length = int(raw_length)
        if content_length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(content_length) if content_length else b""
        return Request(
            method=method.upper(),
            path=split.path,
            query=dict(parse_qsl(split.query)),
            headers=headers,
            body=body,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        body = json.dumps(response.payload).encode("utf-8")
        reason = _REASONS.get(response.status, "Unknown")
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
