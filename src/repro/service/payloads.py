"""JSON payloads shared by the service endpoints and the CLI.

``GET /models`` and ``repro models --json`` (likewise ``/workloads``
and ``repro workloads --json``) return exactly these payloads, so load
generators and scripts consume one machine-readable registry format no
matter which surface they talk to.  :func:`prediction_payload` is the
wire form of a :class:`~repro.core.result.MixPrediction` — its
``to_dict`` serialisation (the same bytes the engine's result cache
persists) plus the derived STP/ANTT metrics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import MPPM_KERNELS
from repro.core.result import MixPrediction
from repro.predictors import DEFAULT_PREDICTOR, describe_predictors
from repro.simulators import MULTI_CORE_KERNELS
from repro.workloads import (
    DEFAULT_WORKLOAD,
    available_workloads,
    describe_workloads,
)


def models_payload() -> Dict:
    """The predictor registry: ``{"default": ..., "predictors": [...]}``.

    ``mppm_kernels`` names the solver kernels every ``mppm:*`` entry can
    run on; the default is the batched mix-major kernel, and each served
    prediction's ``kernel`` field records which one produced it.
    ``multicore_kernels`` does the same for the ``detailed`` entry's
    interleaving walk (chunked speculative merge vs the per-access
    reference loops); all kernels are bit-identical.
    """
    return {
        "default": DEFAULT_PREDICTOR,
        "mppm_kernels": {"default": "batched", "available": list(MPPM_KERNELS)},
        "multicore_kernels": {
            "default": "chunked",
            "available": list(MULTI_CORE_KERNELS),
        },
        "predictors": [
            {"spec": spec, "description": description}
            for spec, description in describe_predictors()
        ],
    }


def workloads_payload() -> Dict:
    """The workload registry: ``{"default": ..., "workloads": [...]}``.

    Each row carries the family's spec *pattern* plus a constructible
    ``example`` spec (patterns like ``random:n=N,seed=S`` are grammar,
    not valid input).
    """
    rows: List[Dict] = [
        {"spec": pattern, "example": example, "description": description}
        for example, (pattern, description) in zip(
            available_workloads(), describe_workloads()
        )
    ]
    return {"default": DEFAULT_WORKLOAD, "workloads": rows}


def prediction_payload(prediction: MixPrediction) -> Dict:
    """One prediction as served by ``POST /predict``.

    The ``to_dict`` form plus the two headline metrics; bit-identical
    to what the batch CLI computes for the same specs because the
    underlying prediction object is the same.
    """
    payload = prediction.to_dict()
    payload["stp"] = prediction.system_throughput
    payload["antt"] = prediction.average_normalized_turnaround_time
    return payload
