"""Run the prediction service: blocking (CLI), async, or on a thread.

Three entry points for three callers:

* :func:`serve` — the async core: start, announce, wait for
  ``POST /shutdown`` (or cancellation), tear down.
* :func:`serve_blocking` — what ``repro serve`` calls; wraps
  :func:`serve` in ``asyncio.run`` and turns Ctrl-C into a clean exit.
* :class:`ServiceThread` — a context manager hosting the service on a
  background thread with its own event loop, for tests and the load
  generator (which need a live server *and* a foreground to drive it
  from).

The announce line (``repro-serve listening on http://HOST:PORT``) is
part of the interface: with ``--port 0`` it is how scripts discover the
bound port.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Optional

from repro.service.app import PredictionService, ServiceConfig

ANNOUNCE_PREFIX = "repro-serve listening on "


def _announce(service: PredictionService, printer: Callable[[str], None]) -> None:
    printer(f"{ANNOUNCE_PREFIX}http://{service.config.host}:{service.port}")


async def serve(
    config: Optional[ServiceConfig] = None,
    printer: Callable[[str], None] = print,
    ready: Optional[Callable[[PredictionService], None]] = None,
) -> PredictionService:
    """Start the service and run until shutdown is requested."""
    service = PredictionService(config)
    await service.start()
    _announce(service, printer)
    if ready is not None:
        ready(service)
    try:
        await service.shutdown_event.wait()
    finally:
        await service.close()
    return service


def serve_blocking(
    config: Optional[ServiceConfig] = None, printer: Callable[[str], None] = print
) -> int:
    """The ``repro serve`` entry point; returns a process exit code."""
    try:
        asyncio.run(serve(config, printer=printer))
    except KeyboardInterrupt:
        printer("repro-serve: interrupted, shutting down")
    return 0


class ServiceThread:
    """A live service on a background thread (context manager).

    ``with ServiceThread(config) as live:`` yields an object with
    ``host``/``port``/``base_url`` and a handle on the underlying
    :class:`PredictionService` (for asserting on its stats and caches).
    Startup errors surface in the entering thread.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.service: Optional[PredictionService] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------

    def start(self, timeout: float = 120.0) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("the prediction service did not start in time")
        if self._error is not None:
            raise RuntimeError(f"the prediction service failed to start: {self._error}")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.service is not None:
            self._loop.call_soon_threadsafe(self.service.shutdown_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- conveniences ---------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self.service is None:
            raise RuntimeError("the prediction service is not running")
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- internals ------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - reported to the entering thread
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()

        def on_ready(service: PredictionService) -> None:
            self.service = service
            self._ready.set()

        await serve(self.config, printer=lambda _line: None, ready=on_ready)
