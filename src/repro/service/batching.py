"""Micro-batching and in-flight deduplication for predict requests.

Concurrent ``POST /predict`` calls do not each walk into the engine on
their own: the :class:`PredictionBatcher` gathers everything submitted
within a short window (``window`` seconds, flushed early at
``max_batch`` items) into ONE heterogeneous op list and hands it to the
app's batch runner, which turns it into a single engine
:class:`~repro.engine.job.JobGraph` (``ExperimentSetup.predictor_batch``)
on a dedicated worker thread — so the event loop keeps accepting
requests while the engine computes, and N concurrent clients asking
for N different mixes cost one graph, not N.

Identical ``(workload, predictor, mix, machine)`` keys submitted while
a result is still being computed share that computation's future
instead of resubmitting (*in-flight dedup*); once the result lands,
repeats are served by the engine's content-hash
:class:`~repro.engine.cache.ResultCache`, so a warm server recomputes
nothing either way.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor as ThreadExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.config.machine import MachineConfig
from repro.core.result import MixPrediction
from repro.service.stats import ServiceStats
from repro.workloads.mixes import WorkloadMix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.setup import ExperimentSetup


@dataclass(frozen=True)
class PredictOp:
    """One unit of prediction work: which setup, estimator, mix, machine."""

    setup: "ExperimentSetup"
    predictor: str
    mix: WorkloadMix
    machine: MachineConfig

    def key(self) -> Tuple:
        """The in-flight dedup identity (mirrors the engine's cache key)."""
        return (
            self.setup.workload_spec,
            self.predictor,
            self.mix.programs,
            self.machine.profile_key(),
            self.machine.num_cores,
        )


#: The app-side runner: ops in, predictions in the same order out.
BatchRunner = Callable[[Sequence[PredictOp]], List[MixPrediction]]


class BatcherClosed(RuntimeError):
    """Raised into waiters when the service shuts down mid-request."""


class PredictionBatcher:
    """Coalesce concurrent predict submissions into engine batches.

    Parameters
    ----------
    runner:
        Synchronous callable executing one op batch (runs on ``executor``).
    executor:
        A single-thread executor; one batch runs at a time, so the
        engine (which is not thread-safe) is never entered concurrently.
    window:
        Seconds to wait after the first submission before flushing.
    max_batch:
        Flush immediately once this many distinct ops are pending.
    stats:
        Counters to update (batch sizes, dedup hits).
    """

    def __init__(
        self,
        runner: BatchRunner,
        executor: ThreadExecutor,
        window: float = 0.005,
        max_batch: int = 64,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        if window < 0:
            raise ValueError("window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._runner = runner
        self._executor = executor
        self.window = window
        self.max_batch = max_batch
        self.stats = stats if stats is not None else ServiceStats()
        self._pending: List[Tuple[PredictOp, asyncio.Future]] = []
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._flush_task: Optional[asyncio.Task] = None
        self._closed = False

    async def submit(self, op: PredictOp) -> MixPrediction:
        """One prediction; shares work with concurrent identical requests."""
        if self._closed:
            raise BatcherClosed("the prediction service is shutting down")
        key = op.key()
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.inflight_deduped += 1
            return await asyncio.shield(existing)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._pending.append((op, future))
        if len(self._pending) >= self.max_batch:
            # The window timer (if any) will find nothing left to flush.
            asyncio.get_running_loop().create_task(self._flush())
        elif self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.get_running_loop().create_task(self._delayed_flush())
        return await asyncio.shield(future)

    async def close(self) -> None:
        """Stop accepting work and fail anything still queued."""
        self._closed = True
        if self._flush_task is not None and not self._flush_task.done():
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
        batch, self._pending = self._pending, []
        for op, future in batch:
            self._inflight.pop(op.key(), None)
            if not future.done():
                future.set_exception(BatcherClosed("the prediction service is shutting down"))

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    async def _delayed_flush(self) -> None:
        await asyncio.sleep(self.window)
        await self._flush()

    async def _flush(self) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            return
        ops = [op for op, _ in batch]
        self.stats.record_batch(len(ops))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(self._executor, self._runner, ops)
        except Exception as error:  # noqa: BLE001 - fan the failure out to every waiter
            for op, future in batch:
                self._inflight.pop(op.key(), None)
                if not future.done():
                    future.set_exception(error)
            return
        for (op, future), prediction in zip(batch, results):
            self._inflight.pop(op.key(), None)
            if not future.done():
                future.set_result(prediction)
