"""Prediction-as-a-service: an asyncio HTTP/JSON layer over the registries.

The paper's workflow is batch-shaped — sweep, evaluate, plot — but the
artefact it produces (a fast, profile-driven performance predictor) is
exactly the kind of thing a scheduler or a capacity-planning tool wants
to *query*.  This package serves the predictor/workload registries over
HTTP with request batching, in-flight deduplication and shared-cache
memoisation, all on the stdlib (asyncio) — no web framework.

* :mod:`repro.service.http` — minimal HTTP/1.1 server on asyncio streams
* :mod:`repro.service.app` — the endpoints, spec parsing and setups
* :mod:`repro.service.batching` — micro-batching + in-flight dedup
* :mod:`repro.service.stats` — live counters behind ``GET /stats``
* :mod:`repro.service.runner` — blocking / threaded entry points
* :mod:`repro.service.client` — stdlib asyncio client (tests, bench, CI)
* :mod:`repro.service.payloads` — JSON payloads shared with the CLI
"""

from repro.service.app import PredictionService, ServiceConfig
from repro.service.batching import BatcherClosed, PredictionBatcher, PredictOp
from repro.service.client import ServiceClient, ServiceClientError, predict_once
from repro.service.http import HttpError, HttpServer, Request, Response
from repro.service.payloads import models_payload, prediction_payload, workloads_payload
from repro.service.runner import ANNOUNCE_PREFIX, ServiceThread, serve, serve_blocking
from repro.service.stats import LatencyTracker, ServiceStats

__all__ = [
    "PredictionService",
    "ServiceConfig",
    "PredictionBatcher",
    "PredictOp",
    "BatcherClosed",
    "ServiceClient",
    "ServiceClientError",
    "predict_once",
    "HttpServer",
    "HttpError",
    "Request",
    "Response",
    "models_payload",
    "workloads_payload",
    "prediction_payload",
    "ServiceThread",
    "serve",
    "serve_blocking",
    "ANNOUNCE_PREFIX",
    "LatencyTracker",
    "ServiceStats",
]
