"""Multi-program performance metrics and supporting statistics.

The paper quantifies multi-core performance with two system-level
metrics (Eyerman & Eeckhout, IEEE Micro 2008):

* **STP** (system throughput, a.k.a. weighted speedup) — the summed
  per-program progress ``sum_p CPI_SC,p / CPI_MC,p``; higher is better.
* **ANTT** (average normalized turnaround time) — the average
  per-program slowdown ``mean_p CPI_MC,p / CPI_SC,p``; lower is better.

The statistics module provides the 95% confidence intervals used in the
variability study (Figure 3), the Spearman rank correlation used to
compare design-space rankings (Figure 7), and the prediction-error
metrics used throughout Section 4.
"""

from repro.metrics.throughput import (
    MixPerformance,
    antt,
    per_program_slowdowns,
    stp,
    mix_performance_from_cpis,
)
from repro.metrics.errors import (
    absolute_relative_error,
    mean_absolute_relative_error,
    prediction_errors,
)
from repro.metrics.statistics import (
    ConfidenceInterval,
    confidence_interval,
    mean_confidence_halfwidth_pct,
    spearman_rank_correlation,
    rank_of,
    bootstrap_confidence_interval,
)

__all__ = [
    "MixPerformance",
    "stp",
    "antt",
    "per_program_slowdowns",
    "mix_performance_from_cpis",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "prediction_errors",
    "ConfidenceInterval",
    "confidence_interval",
    "mean_confidence_halfwidth_pct",
    "spearman_rank_correlation",
    "rank_of",
    "bootstrap_confidence_interval",
]
