"""STP, ANTT and per-program slowdowns.

These are the two metrics of the paper's Section 3:

.. math::

    STP  = \\sum_{p=1}^{n} \\frac{CPI_{SC,p}}{CPI_{MC,p}}
    \\qquad
    ANTT = \\frac{1}{n} \\sum_{p=1}^{n} \\frac{CPI_{MC,p}}{CPI_{SC,p}}

STP equals the weighted speedup of Snavely & Tullsen and is
higher-is-better; ANTT is the reciprocal of Luo et al.'s hmean metric
and is lower-is-better.  Both are computed from per-program single-core
and multi-core CPIs, regardless of whether the multi-core CPIs come
from detailed simulation or from MPPM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class MetricError(ValueError):
    """Raised for invalid metric inputs."""


def _validate(single_core_cpis: Sequence[float], multi_core_cpis: Sequence[float]) -> None:
    if len(single_core_cpis) != len(multi_core_cpis):
        raise MetricError(
            f"got {len(single_core_cpis)} single-core CPIs but "
            f"{len(multi_core_cpis)} multi-core CPIs"
        )
    if not single_core_cpis:
        raise MetricError("at least one program is required")
    for value in list(single_core_cpis) + list(multi_core_cpis):
        if value <= 0:
            raise MetricError(f"CPIs must be positive, got {value}")


def stp(single_core_cpis: Sequence[float], multi_core_cpis: Sequence[float]) -> float:
    """System throughput (weighted speedup); higher is better."""
    _validate(single_core_cpis, multi_core_cpis)
    return sum(sc / mc for sc, mc in zip(single_core_cpis, multi_core_cpis))


def antt(single_core_cpis: Sequence[float], multi_core_cpis: Sequence[float]) -> float:
    """Average normalized turnaround time; lower is better."""
    _validate(single_core_cpis, multi_core_cpis)
    n = len(single_core_cpis)
    return sum(mc / sc for sc, mc in zip(single_core_cpis, multi_core_cpis)) / n


def per_program_slowdowns(
    single_core_cpis: Sequence[float], multi_core_cpis: Sequence[float]
) -> List[float]:
    """Per-program slowdowns ``CPI_MC / CPI_SC`` (1.0 means unaffected)."""
    _validate(single_core_cpis, multi_core_cpis)
    return [mc / sc for sc, mc in zip(single_core_cpis, multi_core_cpis)]


@dataclass(frozen=True)
class MixPerformance:
    """STP, ANTT and slowdowns of one workload mix, with program labels."""

    programs: Tuple[str, ...]
    single_core_cpis: Tuple[float, ...]
    multi_core_cpis: Tuple[float, ...]

    def __post_init__(self) -> None:
        _validate(self.single_core_cpis, self.multi_core_cpis)
        if len(self.programs) != len(self.single_core_cpis):
            raise MetricError("program labels and CPI vectors must have the same length")

    @property
    def stp(self) -> float:
        return stp(self.single_core_cpis, self.multi_core_cpis)

    @property
    def antt(self) -> float:
        return antt(self.single_core_cpis, self.multi_core_cpis)

    @property
    def slowdowns(self) -> List[float]:
        return per_program_slowdowns(self.single_core_cpis, self.multi_core_cpis)

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    def worst_program(self) -> Tuple[str, float]:
        """The program with the largest slowdown, and that slowdown."""
        slowdowns = self.slowdowns
        index = max(range(len(slowdowns)), key=slowdowns.__getitem__)
        return self.programs[index], slowdowns[index]


def mix_performance_from_cpis(
    programs: Sequence[str],
    single_core_cpis: Sequence[float],
    multi_core_cpis: Sequence[float],
) -> MixPerformance:
    """Build a :class:`MixPerformance` from raw CPI vectors."""
    return MixPerformance(
        programs=tuple(programs),
        single_core_cpis=tuple(single_core_cpis),
        multi_core_cpis=tuple(multi_core_cpis),
    )
