"""Statistics used by the paper's evaluation.

* 95% confidence intervals on the mean STP/ANTT across random workload
  mixes (Figure 3: how the interval shrinks as more mixes are added),
* Spearman rank correlation between design-space rankings (Figure 7:
  does a small random sample rank the six LLC configurations the same
  way as the reference?), and
* a bootstrap confidence interval helper used by the stress-workload
  analysis.

Only :mod:`scipy.stats` quantiles are used when available; a normal
approximation keeps the package functional without SciPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly depending on environment
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


class StatisticsError(ValueError):
    """Raised for invalid statistical inputs."""


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a sample mean."""

    mean: float
    lower: float
    upper: float
    confidence: float
    num_samples: int

    @property
    def halfwidth(self) -> float:
        return (self.upper - self.lower) / 2.0

    @property
    def halfwidth_pct_of_mean(self) -> float:
        """Half-width as a fraction of the mean (the paper's '10% interval')."""
        if self.mean == 0:
            return float("inf")
        return self.halfwidth / abs(self.mean)

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def _critical_value(confidence: float, dof: int) -> float:
    """Student-t critical value (normal approximation without SciPy)."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    # Normal approximation; adequate for the sample sizes used here.
    return float(
        np.sqrt(2.0) * _erfinv(confidence)
    )


def _erfinv(value: float) -> float:
    """Inverse error function (used only when SciPy is unavailable)."""
    # Winitzki's approximation.
    a = 0.147
    ln_term = np.log(1.0 - value * value)
    first = 2.0 / (np.pi * a) + ln_term / 2.0
    return float(np.sign(value) * np.sqrt(np.sqrt(first * first - ln_term / a) - first))


def confidence_interval(samples: Sequence[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``samples``."""
    if not 0 < confidence < 1:
        raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size < 2:
        raise StatisticsError("at least two samples are needed for a confidence interval")
    mean = float(values.mean())
    stderr = float(values.std(ddof=1) / np.sqrt(values.size))
    critical = _critical_value(confidence, values.size - 1)
    halfwidth = critical * stderr
    return ConfidenceInterval(
        mean=mean,
        lower=mean - halfwidth,
        upper=mean + halfwidth,
        confidence=confidence,
        num_samples=int(values.size),
    )


def mean_confidence_halfwidth_pct(
    samples: Sequence[float], confidence: float = 0.95
) -> float:
    """Confidence-interval half-width as a percentage of the mean."""
    return 100.0 * confidence_interval(samples, confidence).halfwidth_pct_of_mean


def rank_of(values: Sequence[float], higher_is_better: bool = True) -> List[int]:
    """Rank positions of ``values`` (0 = best).

    Ties are broken by original order, which is adequate for the small
    design spaces ranked here.
    """
    if not values:
        raise StatisticsError("cannot rank an empty sequence")
    order = sorted(range(len(values)), key=lambda i: values[i], reverse=higher_is_better)
    ranks = [0] * len(values)
    for position, index in enumerate(order):
        ranks[index] = position
    return ranks


def spearman_rank_correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Spearman rank correlation coefficient between two value series.

    The coefficient is 1.0 when both series rank the items identically
    and -1.0 when they rank them in exactly opposite order (the paper's
    Figure 7 uses it to compare design-space rankings).
    """
    if len(first) != len(second):
        raise StatisticsError("both series must have the same length")
    n = len(first)
    if n < 2:
        raise StatisticsError("at least two items are needed for a rank correlation")
    ranks_first = np.asarray(_average_ranks(first), dtype=np.float64)
    ranks_second = np.asarray(_average_ranks(second), dtype=np.float64)
    first_centered = ranks_first - ranks_first.mean()
    second_centered = ranks_second - ranks_second.mean()
    denominator = float(
        np.sqrt((first_centered**2).sum()) * np.sqrt((second_centered**2).sum())
    )
    if denominator == 0:
        # One of the series is constant; correlation is undefined, treat as perfect
        # agreement only if both are constant.
        return 1.0 if np.allclose(ranks_first, ranks_second) else 0.0
    return float((first_centered * second_centered).sum() / denominator)


def _average_ranks(values: Sequence[float]) -> List[float]:
    """Fractional (average) ranks, handling ties the standard way."""
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(indexed):
        j = i
        while j + 1 < len(indexed) and values[indexed[j + 1]] == values[indexed[i]]:
            j += 1
        average_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[indexed[k]] = average_rank
        i = j + 1
    return ranks


def bootstrap_confidence_interval(
    samples: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2_000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap percentile confidence interval for the sample mean."""
    if not 0 < confidence < 1:
        raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size < 2:
        raise StatisticsError("at least two samples are needed for a bootstrap interval")
    rng = np.random.default_rng(seed)
    resample_means = np.array(
        [
            values[rng.integers(0, values.size, size=values.size)].mean()
            for _ in range(num_resamples)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        mean=float(values.mean()),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        num_samples=int(values.size),
    )
