"""Prediction-error metrics.

Section 4.2 of the paper reports MPPM's accuracy as the average
absolute relative error between the predicted and the measured metric
(STP, ANTT or per-program slowdown) across workload mixes.
"""

from __future__ import annotations

from typing import List, Sequence


class ErrorMetricError(ValueError):
    """Raised for invalid error-metric inputs."""


def absolute_relative_error(predicted: float, measured: float) -> float:
    """``|predicted - measured| / measured``."""
    if measured == 0:
        raise ErrorMetricError("measured value must be non-zero")
    return abs(predicted - measured) / abs(measured)


def prediction_errors(predicted: Sequence[float], measured: Sequence[float]) -> List[float]:
    """Element-wise absolute relative errors of two equal-length series."""
    if len(predicted) != len(measured):
        raise ErrorMetricError(
            f"predicted and measured series have different lengths "
            f"({len(predicted)} vs {len(measured)})"
        )
    if not predicted:
        raise ErrorMetricError("at least one prediction is required")
    return [absolute_relative_error(p, m) for p, m in zip(predicted, measured)]


def mean_absolute_relative_error(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """The paper's 'average error': mean of the absolute relative errors."""
    errors = prediction_errors(predicted, measured)
    return sum(errors) / len(errors)
