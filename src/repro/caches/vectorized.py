"""Vectorized trace-replay kernel: batch per-set LRU stack distances.

The single-core profiler historically walked every memory access through
a stateful :class:`~repro.caches.set_associative.SetAssociativeCache`
chain in a Python loop.  For LRU caches that is unnecessary: by the
classic stack-inclusion property (Mattson et al., 1970), an access hits
an A-way set-associative LRU cache iff its *per-set stack distance* —
the 1-based position of its line in the accessed set's recency stack —
is at most A.  Hit/miss outcomes for every cache level, the filtered
LLC stream and the stack-distance counters are therefore all pure
functions of stack distances, and stack distances for a whole access
stream can be computed with a handful of O(n log n) array passes.

The distance computation works in *set-grouped* coordinates (a stable
argsort by set index makes every set's accesses contiguous, in program
order) and has three stages:

1. **MRU prefilter.**  An access whose predecessor in its set touched
   the same line has stack distance 1 and is an LRU no-op: removing it
   changes nobody else's distance.  These accesses — a sizeable slice
   of any cache-friendly stream — are answered with one comparison and
   dropped before the expensive stages.
2. **Coverage.**  For each surviving access ``q`` let ``next(q)`` be
   the next occurrence of the same line (none for last occurrences)
   and ``prev(q)`` the previous one.  ``cov(q)`` — the accessed set's
   stack depth just before ``q`` — counts the earlier positions whose
   line is still live at ``q``: all of them, minus re-used positions
   already past their next use (a ``bincount``/``cumsum`` over next
   indices), minus earlier groups' last occurrences (a per-group
   prefix count).
3. **Containment.**  ``G(p)``, the number of reuse intervals
   ``(j, next(j))`` strictly containing the interval ``(p, q)`` of the
   queried access, splits by interval kind: every same-group last
   occurrence before ``p`` contains it outright (closed-form prefix
   count), and among re-used positions it is a preceding-greater count
   over the ``next`` sequence, computed for all positions at once by
   top-down radix partitioning (:func:`_count_preceding_greater`).
   The distance of a non-cold access is then ``cov(q) - G(prev(q))``:
   stack depth minus the lines buried deeper than the reused one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config.machine import MachineConfig


def _count_preceding_greater(values: np.ndarray) -> np.ndarray:
    """For each element, count the earlier elements that are strictly greater.

    Top-down radix partitioning: a pair ``t < k`` with ``v[t] > v[k]``
    is counted exactly once — at the highest bit where the two values
    differ.  Sweeping bits from most to least significant while keeping
    elements grouped by their value prefix (in original order within
    each group), the bit-``b`` contribution for an element whose bit is
    0 is the number of earlier same-group elements whose bit is 1 — one
    ``cumsum`` — after which each group is stably split by the bit.
    O(n log(max value)) array work, no sorts and no per-access Python.

    Group bounds live in compact per-group arrays (broadcast to elements
    with ``repeat``), each element's original position rides in the high
    bits of its value word, and the running counts travel with the
    elements, so a level costs one ``cumsum`` and two scatters.

    ``values`` must be non-negative and below 2^31, as must ``len(values)``.
    """
    values = np.asarray(values)
    n = len(values)
    if n >= 2**31:  # pragma: no cover - int32 coordinate space exhausted
        raise ValueError("streams beyond 2^31 accesses are not supported")
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    vmax = int(values.max())
    if vmax == 0:
        return np.zeros(n, dtype=np.int64)
    if vmax >= 2**31:  # pragma: no cover - callers pass coordinates < 2n
        raise ValueError("values beyond 2^31 are not supported")

    position = np.arange(n, dtype=np.int32)
    # Value in bits 0..30, original position above: bit tests need no
    # unpacking, and one scatter moves both fields.
    packed = (position.astype(np.int64) << 31) | values.astype(np.int64)
    counts = np.zeros(n, dtype=np.int32)
    group_start = np.zeros(1, dtype=np.int32)
    group_size = np.array([n], dtype=np.int32)
    ones_cum = np.empty(n + 1, dtype=np.int32)  # padded cumsum scratch
    ones_cum[0] = 0
    for bit in range(vmax.bit_length() - 1, -1, -1):
        bit_set = ((packed >> bit) & 1).astype(np.int32)
        np.cumsum(bit_set, out=ones_cum[1:])
        total_ones = int(ones_cum[n])
        if total_ones == 0 or total_ones == n:
            continue  # constant bit: nothing to count, nothing to split
        start_ones = ones_cum[group_start]  # per group, not per element
        ones_before = ones_cum[:n] - np.repeat(start_ones, group_size)
        zero_mask = bit_set == 0
        # Earlier same-prefix elements with the bit set are strictly
        # greater than a bit-0 element, whatever the lower bits say.
        counts += np.where(zero_mask, ones_before, 0)
        if bit == 0:
            break
        # Stable partition of every group by the bit: zeros first.  A
        # bit-0 element keeps its rank among zeros, so its destination
        # collapses to position - ones_before.
        ones_total = ones_cum[group_start + group_size] - start_ones
        zeros_total = group_size - ones_total
        zeros_boundary = group_start + zeros_total
        destination = np.where(
            zero_mask,
            position - ones_before,
            np.repeat(zeros_boundary, group_size) + ones_before,
        )
        new_packed = np.empty_like(packed)
        new_counts = np.empty_like(counts)
        new_packed[destination] = packed
        new_counts[destination] = counts
        packed, counts = new_packed, new_counts
        # Interleave the zero/one subgroups, dropping the empty ones.
        split_starts = np.empty(2 * len(group_start), dtype=np.int32)
        split_sizes = np.empty_like(split_starts)
        split_starts[0::2] = group_start
        split_starts[1::2] = zeros_boundary
        split_sizes[0::2] = zeros_total
        split_sizes[1::2] = ones_total
        occupied = split_sizes > 0
        group_start = split_starts[occupied]
        group_size = split_sizes[occupied]
        if int(group_size.max()) <= 1:
            break  # every group is a singleton: no pair left to count
    out = np.empty(n, dtype=np.int64)
    out[packed >> 31] = counts
    return out


def _stable_argsort(values: np.ndarray) -> np.ndarray:
    """Stable argsort of an int64 array, via the faster default sort when safe.

    Stability is bought by sorting the collision-free combined key
    ``(value - min) * n + position`` with numpy's default introsort,
    which is noticeably faster than ``kind="stable"`` on int64; inputs
    whose value span would overflow the key fall back to the stable sort.
    """
    n = len(values)
    if n <= 1:
        return np.arange(n, dtype=np.int64)
    low = int(values.min())
    span = int(values.max()) - low
    if span <= (2**62 - n) // n:
        return np.argsort((values - low) * n + np.arange(n, dtype=np.int64))
    return np.argsort(values, kind="stable")


def stack_distances(lines: np.ndarray, num_sets: int) -> np.ndarray:
    """Per-set LRU stack distance of every access of a stream.

    Returns an ``int64`` array aligned with ``lines``: the 1-based
    position of each access's line in the recency stack of its set
    (``line % num_sets``) just before the access, or 0 for a line never
    seen before.  Equivalent to feeding the stream through
    :class:`~repro.caches.stack_distance.StackDistanceProfiler` and
    collecting the per-access return values, but computed with array
    passes only.
    """
    if num_sets <= 0:
        raise ValueError(f"num_sets must be positive, got {num_sets}")
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    # Previous occurrence of the same line, in grouped coordinates
    # (contiguous per set, program order inside).  A line always maps to
    # one set, so occurrences keep their relative order under the
    # grouping permutation: chain them up in original coordinates and
    # translate.  Single-set caches skip the grouping entirely.
    occ_original = _stable_argsort(lines)
    if num_sets == 1:
        grouped = False
        order = inverse_order = None
        sizes = np.array([n], dtype=np.int64)
        occ = occ_original
    else:
        grouped = True
        if num_sets & (num_sets - 1) == 0:
            sets = lines & (num_sets - 1)
        else:
            sets = lines % num_sets
        order = _stable_argsort(sets)  # grouped coords -> original
        inverse_order = np.empty(n, dtype=np.int64)
        inverse_order[order] = np.arange(n, dtype=np.int64)
        # Group sizes (groups appear in ascending set order; one
        # bincount instead of a boundary scan).
        sizes = np.bincount(sets, minlength=num_sets)
        sizes = sizes[sizes > 0].astype(np.int64)
        occ = inverse_order[occ_original]
    same_line = lines[occ_original[1:]] == lines[occ_original[:-1]]
    prev = np.full(n, -1, dtype=np.int64)
    prev[occ[1:][same_line]] = occ[:-1][same_line]

    # MRU prefilter: distance-1 accesses (same line as the set's
    # previous access) are LRU no-ops — record them and drop them; the
    # expensive stages run on the compacted survivors only.
    position = np.arange(n, dtype=np.int64)
    mru_repeat = prev == position - 1
    mru_repeat[0] = False  # a cold first access has prev == -1 == 0 - 1
    kept = ~mru_repeat
    kept_cum = np.empty(n + 1, dtype=np.int64)  # kept positions before q
    kept_cum[0] = 0
    np.cumsum(kept, out=kept_cum[1:])
    m = int(kept_cum[n])

    if m == n:
        prev_c = prev
        group_sizes_c = sizes
    else:
        # Translate the survivors' reuse chains: a dropped run collapses
        # onto its (kept) head, which holds the same line.
        head = np.maximum.accumulate(np.where(kept, position, -1))
        prev_kept = prev[kept]
        warm_kept = prev_kept >= 0
        prev_c = np.full(m, -1, dtype=np.int64)
        prev_c[warm_kept] = kept_cum[head[prev_kept[warm_kept]]]
        group_sizes_c = np.diff(kept_cum[np.concatenate(([0], np.cumsum(sizes)))])

    # Next occurrence is the inverse relation of previous occurrence.
    # Positions with none (each set-line's last occurrence) keep their
    # line in the stack until the end of the trace.
    nxt_c = np.full(m, -1, dtype=np.int64)
    warm_c = np.flatnonzero(prev_c >= 0)
    nxt_c[prev_c[warm_c]] = warm_c
    is_real = nxt_c >= 0  # re-used positions
    real_cum = np.empty(m + 1, dtype=np.int64)  # re-used positions before q
    real_cum[0] = 0
    np.cumsum(is_real, out=real_cum[1:])
    real_nxt = nxt_c[is_real]

    # Per position: last occurrences in *earlier* groups (their lines
    # are dead for q — a set only sees its own group).
    group_starts = np.cumsum(group_sizes_c) - group_sizes_c
    earlier_lasts = np.repeat(group_starts - real_cum[group_starts], group_sizes_c)

    # cov(q) — the stack depth of q's set — counts the accesses before q
    # whose line is still live at q: all of them, minus re-used
    # positions already past their next use, minus earlier groups' last
    # occurrences.
    dead_reused = np.empty(m + 1, dtype=np.int64)
    dead_reused[0] = 0
    np.cumsum(np.bincount(real_nxt, minlength=m), out=dead_reused[1:])
    position_c = np.arange(m, dtype=np.int64)
    cov = position_c - dead_reused[:m] - earlier_lasts

    # G(p) = number of reuse intervals strictly containing interval p,
    # split by interval kind.  Every same-group *last occurrence* before
    # p contains p's interval outright (its line stays in the stack to
    # the group's end), which is a closed-form prefix count; only the
    # re-used positions need the pairwise counter — a much smaller
    # problem, over plain next-occurrence indices (queried positions
    # always have a next occurrence, namely the query's access).
    containing_real = _count_preceding_greater(real_nxt)
    queried = prev_c[warm_c]
    lasts_before = (queried - real_cum[queried]) - earlier_lasts[queried]
    distances_c = np.zeros(m, dtype=np.int64)
    distances_c[warm_c] = cov[warm_c] - (
        containing_real[real_cum[queried]] + lasts_before
    )

    if m == n:
        grouped_distances = distances_c
    else:
        grouped_distances = np.ones(n, dtype=np.int64)  # dropped accesses: distance 1
        grouped_distances[kept] = distances_c
    if not grouped:
        return grouped_distances
    out = np.empty(n, dtype=np.int64)
    out[order] = grouped_distances
    return out


def lru_hit_mask(distances: np.ndarray, associativity: int) -> np.ndarray:
    """Which accesses hit an ``associativity``-way LRU cache, by distance."""
    return (distances > 0) & (distances <= associativity)


def replay_hierarchy(
    lines: np.ndarray, machine: MachineConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay an access stream through the machine's cache hierarchy.

    Filters the stream level by level exactly as the stateful
    :class:`~repro.caches.hierarchy.CacheHierarchy` does — each level
    only sees the accesses that missed every level above it — but
    resolves each level with one batched stack-distance computation.

    Returns
    -------
    served_level:
        ``int64`` array aligned with ``lines``; ``0..P-1`` for a hit in
        that private level, ``P`` for an LLC hit and ``P+1`` for an LLC
        miss (memory), where ``P = len(machine.private_levels)``.
    llc_index:
        Indices (into ``lines``) of the accesses that reached the LLC,
        ascending — the filtered LLC stream.
    llc_distances:
        Per-set LLC stack distance of each filtered access (0 = cold),
        aligned with ``llc_index``.
    """
    served_level, surviving, stream = replay_private_levels(lines, machine)
    num_private = len(machine.private_levels)
    llc_distances = stack_distances(stream, machine.llc.num_sets)
    llc_hits = lru_hit_mask(llc_distances, machine.llc.associativity)
    served_level[surviving[llc_hits]] = num_private
    return served_level, surviving, llc_distances


def replay_private_levels(
    lines: np.ndarray, machine: MachineConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Filter an access stream through the private cache levels only.

    Returns ``(served_level, surviving, stream)``: the served-level
    array with every access that missed all private levels still marked
    ``P + 1``, the indices of those surviving accesses, and their line
    addresses.  :func:`replay_hierarchy` resolves the LLC on top; the
    perfect-LLC run stops here (it never needs LLC stack distances —
    every surviving access hits by definition).
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    num_private = len(machine.private_levels)
    served_level = np.full(n, num_private + 1, dtype=np.int64)
    surviving = np.arange(n, dtype=np.int64)
    stream = lines
    for level_index, level in enumerate(machine.private_levels):
        distances = stack_distances(stream, level.num_sets)
        hits = lru_hit_mask(distances, level.associativity)
        served_level[surviving[hits]] = level_index
        surviving = surviving[~hits]
        stream = stream[~hits]
    return served_level, surviving, stream
