"""Cache replacement policies.

The paper's machines use LRU everywhere (Table 1), and MPPM's
contention model assumes LRU stack behaviour, but the simulator keeps
the policy pluggable: the paper notes in §2.3 that MPPM is independent
of the replacement/partitioning strategy as long as the contention
model supports it, and the ablation benchmarks exercise that claim.

A policy operates on one cache set.  The set's resident tags are kept
by the cache itself; the policy maintains whatever per-set ordering
metadata it needs and answers "which way should be evicted?".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional


class ReplacementError(ValueError):
    """Raised for invalid replacement-policy operations."""


class ReplacementPolicy(ABC):
    """Interface of a per-set replacement policy.

    The cache calls :meth:`new_set_state` once per set, then
    :meth:`on_hit` / :meth:`on_fill` on every access and
    :meth:`victim` when an eviction is needed.  ``state`` is the
    per-set object returned by :meth:`new_set_state`; ``way`` indexes
    the set's ways.
    """

    name: str = "base"

    @abstractmethod
    def new_set_state(self, associativity: int) -> object:
        """Create the per-set metadata object."""

    @abstractmethod
    def on_hit(self, state: object, way: int) -> None:
        """Update metadata after a hit in ``way``."""

    @abstractmethod
    def on_fill(self, state: object, way: int) -> None:
        """Update metadata after filling ``way`` with a new line."""

    @abstractmethod
    def victim(self, state: object, occupied_ways: List[int]) -> int:
        """Pick the way to evict; every way is occupied when this is called."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement (the paper's policy)."""

    name = "lru"

    def new_set_state(self, associativity: int) -> List[int]:
        # Recency order: most recently used first.
        return []

    def on_hit(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def on_fill(self, state: List[int], way: int) -> None:
        if way in state:
            state.remove(way)
        state.insert(0, way)

    def victim(self, state: List[int], occupied_ways: List[int]) -> int:
        if not state:
            raise ReplacementError("LRU state is empty but an eviction was requested")
        return state[-1]


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement (insertion order, hits do not promote)."""

    name = "fifo"

    def new_set_state(self, associativity: int) -> List[int]:
        return []

    def on_hit(self, state: List[int], way: int) -> None:
        # FIFO ignores hits.
        return None

    def on_fill(self, state: List[int], way: int) -> None:
        if way in state:
            state.remove(way)
        state.insert(0, way)

    def victim(self, state: List[int], occupied_ways: List[int]) -> int:
        if not state:
            raise ReplacementError("FIFO state is empty but an eviction was requested")
        return state[-1]


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a deterministic per-cache seed."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def new_set_state(self, associativity: int) -> None:
        return None

    def on_hit(self, state: None, way: int) -> None:
        return None

    def on_fill(self, state: None, way: int) -> None:
        return None

    def victim(self, state: None, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ReplacementError("no occupied ways to evict from")
        return occupied_ways[self._rng.randrange(len(occupied_ways))]


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Construct a replacement policy by name (``"lru"``, ``"fifo"``, ``"random"``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ReplacementError(
            f"unknown replacement policy {name!r}; choices are {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed=seed if seed is not None else 0)
    return cls()
