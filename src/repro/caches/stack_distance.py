"""Stack-distance counters (SDCs) and profiling.

The paper's single-core profile contains, per 20M-instruction interval,
the stack-distance counters of the program's accesses to the last-level
cache: for an A-way set-associative cache, A+1 counters ``C1 .. CA,
C>A`` where ``Ci`` counts accesses that found their line at LRU
position ``i`` of the accessed set, and ``C>A`` counts accesses whose
line was deeper than the associativity (i.e. misses).  This follows
Mattson et al.'s classic stack algorithm evaluated per cache set.

:class:`StackDistanceCounters` is the counter vector with the
operations MPPM and the contention models need (merging intervals,
hit/miss counts, miss counts under a reduced or fractional number of
ways).  :class:`StackDistanceProfiler` computes the counters from an
access stream by maintaining an unbounded per-set LRU stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


class StackDistanceError(ValueError):
    """Raised for invalid stack-distance operations."""


def distance_slots(distances: np.ndarray, associativity: int) -> np.ndarray:
    """Map 1-based stack distances to counter slots for an A-way cache.

    Distance ``d`` in ``[1, A]`` lands in slot ``d - 1``; cold accesses
    (``d <= 0``) and distances beyond the associativity land in the
    ``C>A`` slot ``A``.  Shared by
    :meth:`StackDistanceCounters.from_distances` and the simulator's
    per-interval histograms; :meth:`StackDistanceCounters.record`
    applies the same rule inline for scalars (it sits on the reference
    kernel's per-access path), with the unit suite pinning the two
    together.
    """
    if associativity <= 0:
        raise StackDistanceError(f"associativity must be positive, got {associativity}")
    distances = np.asarray(distances, dtype=np.int64)
    return np.where(
        (distances <= 0) | (distances > associativity), associativity, distances - 1
    )


class StackDistanceCounters:
    """The ``C1 .. CA, C>A`` counter vector for an A-way cache.

    ``counts[i]`` for ``i < associativity`` is the number of accesses
    that hit at LRU position ``i + 1``; ``counts[associativity]`` is
    ``C>A``, the number of accesses deeper than the associativity
    (misses, including cold misses).  Omitting ``counts`` starts an
    all-zero vector.
    """

    def __init__(self, associativity: int, counts: Optional[np.ndarray] = None) -> None:
        if associativity <= 0:
            raise StackDistanceError(
                f"associativity must be positive, got {associativity}"
            )
        self.associativity = int(associativity)
        if counts is None:
            self.counts = np.zeros(self.associativity + 1, dtype=np.float64)
        else:
            self.counts = np.asarray(counts, dtype=np.float64)
            if self.counts.shape != (self.associativity + 1,):
                raise StackDistanceError(
                    f"expected {self.associativity + 1} counters, got shape {self.counts.shape}"
                )
            if (self.counts < 0).any():
                raise StackDistanceError("counters must be non-negative")

    @classmethod
    def from_distances(
        cls, distances: np.ndarray, associativity: int
    ) -> "StackDistanceCounters":
        """Build the counter vector from a batch of stack distances.

        ``distances`` holds 1-based LRU stack distances with 0 encoding
        a cold access, exactly as :meth:`record` takes them (and as
        :func:`repro.caches.vectorized.stack_distances` produces them);
        distances of 0 or greater than the associativity land in the
        ``C>A`` counter.  One ``bincount`` replaces a per-access
        recording loop.
        """
        slots = distance_slots(distances, associativity)
        counts = np.bincount(slots, minlength=associativity + 1).astype(np.float64)
        return cls(associativity=associativity, counts=counts)

    # ------------------------------------------------------------------
    # Recording and combining
    # ------------------------------------------------------------------

    def record(self, distance: int) -> None:
        """Record one access at 1-based LRU stack ``distance`` (0 = cold miss).

        Distances of 0 (never seen before) or greater than the
        associativity go to the ``C>A`` counter — the scalar form of
        :func:`distance_slots`.
        """
        if distance <= 0 or distance > self.associativity:
            self.counts[self.associativity] += 1
        else:
            self.counts[distance - 1] += 1

    def add(self, other: "StackDistanceCounters") -> "StackDistanceCounters":
        """Element-wise sum with another counter vector (same associativity)."""
        if other.associativity != self.associativity:
            raise StackDistanceError(
                "cannot add counters with different associativities "
                f"({self.associativity} vs {other.associativity})"
            )
        return StackDistanceCounters(
            associativity=self.associativity, counts=self.counts + other.counts
        )

    def scaled(self, factor: float) -> "StackDistanceCounters":
        """All counters multiplied by ``factor`` (used for partial intervals)."""
        if factor < 0:
            raise StackDistanceError(f"scale factor must be non-negative, got {factor}")
        return StackDistanceCounters(
            associativity=self.associativity, counts=self.counts * factor
        )

    def copy(self) -> "StackDistanceCounters":
        return StackDistanceCounters(associativity=self.associativity, counts=self.counts.copy())

    @classmethod
    def sum(
        cls, counters: Iterable["StackDistanceCounters"], associativity: int
    ) -> "StackDistanceCounters":
        """Sum a collection of counter vectors (empty sum is all zeros)."""
        total = cls(associativity=associativity)
        for counter in counters:
            total = total.add(counter)
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def total_accesses(self) -> float:
        return float(self.counts.sum())

    @property
    def hits(self) -> float:
        """Accesses that hit in the A-way cache (distance <= A)."""
        return float(self.counts[: self.associativity].sum())

    @property
    def misses(self) -> float:
        """The ``C>A`` counter: accesses deeper than the associativity."""
        return float(self.counts[self.associativity])

    @property
    def miss_rate(self) -> float:
        total = self.total_accesses
        return self.misses / total if total else 0.0

    def misses_for_ways(self, ways: int) -> float:
        """Misses if the cache only offered ``ways`` ways per set.

        ``ways`` may not exceed the profiled associativity (the
        counters do not distinguish distances beyond it).
        """
        if ways < 0:
            raise StackDistanceError(f"ways must be non-negative, got {ways}")
        if ways > self.associativity:
            raise StackDistanceError(
                f"cannot evaluate {ways} ways from an {self.associativity}-way profile"
            )
        return float(self.counts[ways:].sum())

    def misses_for_effective_ways(self, effective_ways: float) -> float:
        """Misses for a *fractional* number of ways, by linear interpolation.

        The FOA contention model assigns each program an effective
        cache share proportional to its access frequency, which is not
        an integer number of ways; this interpolates between the two
        neighbouring integer counts.
        """
        if effective_ways < 0:
            effective_ways = 0.0
        if effective_ways >= self.associativity:
            return self.misses
        lower = int(np.floor(effective_ways))
        upper = lower + 1
        fraction = effective_ways - lower
        return (1.0 - fraction) * self.misses_for_ways(lower) + fraction * self.misses_for_ways(
            upper
        )

    def reduced_associativity(self, ways: int) -> "StackDistanceCounters":
        """Derive the counter vector for a cache with fewer ways.

        The paper (§2) notes that single-core profiles collected for a
        16-way LLC can be reused for an 8-way LLC of the same size and
        set count: distances 1..8 keep their counters and everything
        deeper folds into the new ``C>A``.
        """
        if ways <= 0 or ways > self.associativity:
            raise StackDistanceError(
                f"ways must be in [1, {self.associativity}], got {ways}"
            )
        counts = np.zeros(ways + 1, dtype=np.float64)
        counts[:ways] = self.counts[:ways]
        counts[ways] = self.counts[ways:].sum()
        return StackDistanceCounters(associativity=ways, counts=counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackDistanceCounters):
            return NotImplemented
        return self.associativity == other.associativity and np.allclose(
            self.counts, other.counts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StackDistanceCounters(A={self.associativity}, "
            f"hits={self.hits:.0f}, misses={self.misses:.0f})"
        )


class StackDistanceProfiler:
    """Computes per-set LRU stack distances for an access stream.

    The profiler maintains an *unbounded* LRU stack per cache set (the
    Mattson stack algorithm): the recorded distance of an access is the
    1-based position of its line in the stack of the accessed set, or 0
    if the line was never seen before.  Distances greater than the
    associativity, and cold accesses, are misses for the profiled
    cache.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0:
            raise StackDistanceError(f"num_sets must be positive, got {num_sets}")
        self.num_sets = num_sets
        self.associativity = associativity
        self._stacks: List[List[int]] = [[] for _ in range(num_sets)]
        self.counters = StackDistanceCounters(associativity=associativity)

    def reset(self) -> None:
        """Clear the stacks and the counters."""
        self._stacks = [[] for _ in range(self.num_sets)]
        self.counters = StackDistanceCounters(associativity=self.associativity)

    def access(self, line: int) -> int:
        """Record one access; returns its stack distance (0 for cold)."""
        stack = self._stacks[line % self.num_sets]
        try:
            index = stack.index(line)
        except ValueError:
            stack.insert(0, line)
            self.counters.record(0)
            return 0
        distance = index + 1
        if index:
            del stack[index]
            stack.insert(0, line)
        else:
            # Already MRU: nothing to reorder.
            pass
        self.counters.record(distance)
        return distance

    def profile_stream(self, lines: Sequence[int]) -> StackDistanceCounters:
        """Profile a whole access stream and return the resulting counters."""
        for line in lines:
            self.access(line)
        return self.counters.copy()

    def snapshot_and_reset_counters(self) -> StackDistanceCounters:
        """Return the counters accumulated so far and start a fresh vector.

        The per-set stacks are preserved — interval boundaries reset the
        counters, not the cache state, exactly as a real profiling run
        would.  The simulator now derives per-interval counters from
        distance arrays instead; this stays as the ground-truth
        statement of interval semantics, exercised by the unit suite.
        """
        snapshot = self.counters.copy()
        self.counters = StackDistanceCounters(associativity=self.associativity)
        return snapshot
