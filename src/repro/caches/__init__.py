"""Cache substrate: set-associative caches, hierarchies and stack-distance profiling.

This package provides the building blocks that both the detailed
simulators (:mod:`repro.simulators`) and the single-core profiler use:

* :class:`SetAssociativeCache` — a set-associative cache with pluggable
  replacement policy (LRU by default, as in the paper's Table 1),
* :class:`CacheHierarchy` — private L1/L2 plus the last-level cache,
* :class:`StackDistanceCounters` and :class:`StackDistanceProfiler` —
  the per-set LRU stack-distance counters (SDCs) of Mattson et al. that
  the paper collects per 20M-instruction interval and feeds to the
  cache-contention model.
"""

from repro.caches.replacement import (
    ReplacementPolicy,
    LRUPolicy,
    FIFOPolicy,
    RandomPolicy,
    make_policy,
)
from repro.caches.set_associative import AccessOutcome, SetAssociativeCache
from repro.caches.hierarchy import CacheHierarchy, HierarchyAccess
from repro.caches.stack_distance import (
    StackDistanceCounters,
    StackDistanceProfiler,
)
from repro.caches.vectorized import (
    lru_hit_mask,
    replay_hierarchy,
    replay_private_levels,
    stack_distances,
)

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
    "AccessOutcome",
    "SetAssociativeCache",
    "CacheHierarchy",
    "HierarchyAccess",
    "StackDistanceCounters",
    "StackDistanceProfiler",
    "lru_hit_mask",
    "replay_hierarchy",
    "replay_private_levels",
    "stack_distances",
]
