"""A multi-level cache hierarchy for one core.

The hierarchy chains the private cache levels (L1 data cache, L2) and
the last-level cache: an access walks down the levels until it hits,
filling every level it missed in on the way (inclusive behaviour).  The
result records which level served the access, which is all the core
timing model needs.

For multi-core simulation the last level is *shared*: the
:class:`MultiCoreSimulator` owns a single LLC object and each core owns
a private hierarchy that stops above it (``include_llc=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config.machine import MachineConfig
from repro.caches.set_associative import SetAssociativeCache


@dataclass(frozen=True)
class HierarchyAccess:
    """Outcome of one access walked through the hierarchy.

    ``level_name`` is the name of the level that served the access, or
    ``"memory"`` when every level missed.  ``reached_llc`` tells
    whether the access was presented to the last-level cache (i.e.
    missed in all private levels), and ``llc_hit`` whether the LLC
    served it.
    """

    level_name: str
    level_index: int
    reached_llc: bool
    llc_hit: bool

    @property
    def served_by_memory(self) -> bool:
        return self.level_name == "memory"


class CacheHierarchy:
    """The private levels (and optionally the LLC) of one core."""

    def __init__(
        self,
        machine: MachineConfig,
        include_llc: bool = True,
        policy: str = "lru",
    ) -> None:
        self.machine = machine
        self.include_llc = include_llc
        self.levels: List[SetAssociativeCache] = [
            SetAssociativeCache(config, policy=policy) for config in machine.private_levels
        ]
        self.llc: Optional[SetAssociativeCache] = (
            SetAssociativeCache(machine.llc, policy=policy) if include_llc else None
        )

    def reset(self) -> None:
        """Empty all levels."""
        for level in self.levels:
            level.reset()
        if self.llc is not None:
            self.llc.reset()

    @property
    def level_names(self) -> List[str]:
        names = [level.config.name for level in self.levels]
        if self.llc is not None:
            names.append(self.llc.config.name)
        return names

    def access(self, line: int, shared_llc: Optional[SetAssociativeCache] = None) -> HierarchyAccess:
        """Walk one access through the hierarchy.

        ``shared_llc`` supplies the last-level cache when the hierarchy
        was built with ``include_llc=False`` (multi-core simulation
        shares one LLC object between all cores' hierarchies).
        """
        for index, level in enumerate(self.levels):
            if level.access(line).hit:
                return HierarchyAccess(
                    level_name=level.config.name,
                    level_index=index,
                    reached_llc=False,
                    llc_hit=False,
                )
        llc = self.llc if self.llc is not None else shared_llc
        if llc is None:
            raise ValueError(
                "hierarchy has no last-level cache; pass shared_llc for shared-LLC simulation"
            )
        llc_index = len(self.levels)
        if llc.access(line).hit:
            return HierarchyAccess(
                level_name=llc.config.name,
                level_index=llc_index,
                reached_llc=True,
                llc_hit=True,
            )
        return HierarchyAccess(
            level_name="memory",
            level_index=llc_index + 1,
            reached_llc=True,
            llc_hit=False,
        )

    def access_private_only(self, line: int) -> bool:
        """Access only the private levels; returns True if any of them hit.

        Used by the single-core profiler to build the filtered LLC
        access stream without touching the LLC object twice.
        """
        for level in self.levels:
            if level.access(line).hit:
                return True
        return False

    def miss_rates(self) -> dict:
        """Per-level miss rates accumulated so far (by level name)."""
        rates = {level.config.name: level.miss_rate for level in self.levels}
        if self.llc is not None:
            rates[self.llc.config.name] = self.llc.miss_rate
        return rates
