"""A set-associative cache model.

The cache operates on cache-line addresses (the trace generator already
works at line granularity, so there is no offset arithmetic here).  The
set index is the line address modulo the number of sets, and the tag is
the full line address.

Two implementations coexist behind the same interface:

* an LRU fast path that keeps each set as a recency-ordered list of
  tags (the common case — every machine in the paper uses LRU), and
* a generic path driven by a :class:`ReplacementPolicy` object for
  FIFO/random and for future policies.

Both are exact; the fast path only exists because the shared-LLC
simulation of multi-program mixes is the hot loop of the detailed
reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config.cache_config import CacheConfig
from repro.caches.replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class AccessOutcome:
    """Result of a single cache access."""

    hit: bool
    evicted_line: Optional[int] = None

    @property
    def miss(self) -> bool:
        return not self.hit


class SetAssociativeCache:
    """A set-associative cache of cache-line addresses.

    Parameters
    ----------
    config:
        The cache level configuration (size, associativity, line size).
    policy:
        Replacement policy name (``"lru"``, ``"fifo"``, ``"random"``) or
        a :class:`ReplacementPolicy` instance.  Defaults to LRU.
    """

    def __init__(self, config: CacheConfig, policy: object = "lru") -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        if isinstance(policy, str):
            self._policy_name = policy.lower()
            self._policy: Optional[ReplacementPolicy] = (
                None if self._policy_name == "lru" else make_policy(policy)
            )
        else:
            self._policy = policy  # type: ignore[assignment]
            self._policy_name = getattr(policy, "name", policy.__class__.__name__.lower())
        self.reset()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Empty the cache and zero the statistics."""
        if self._policy is None:
            # LRU fast path: each set is a list of tags, MRU first.
            self._lru_sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        else:
            # Generic path: per-set way -> tag maps plus policy state.
            self._ways: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
            self._policy_state = [
                self._policy.new_set_state(self.associativity) for _ in range(self.num_sets)
            ]
        self.hits = 0
        self.misses = 0

    @property
    def policy_name(self) -> str:
        return self._policy_name

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate over all accesses so far (0 when nothing was accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def set_index(self, line: int) -> int:
        """Set index of a cache-line address."""
        return line % self.num_sets

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def access(self, line: int) -> AccessOutcome:
        """Access a line: look it up and fill it on a miss.

        Returns whether the access hit and, on a miss that caused an
        eviction, which line was evicted (so an outer hierarchy could
        model write-back traffic if it ever needs to).
        """
        if self._policy is None:
            return self._access_lru(line)
        return self._access_generic(line)

    def contains(self, line: int) -> bool:
        """Whether the line is currently resident (no state change)."""
        if self._policy is None:
            return line in self._lru_sets[line % self.num_sets]
        return line in self._ways[line % self.num_sets].values()

    def resident_lines(self) -> List[int]:
        """All resident lines (order unspecified); mainly for tests."""
        if self._policy is None:
            return [line for entries in self._lru_sets for line in entries]
        return [line for ways in self._ways for line in ways.values()]

    def occupancy(self) -> int:
        """Number of resident lines."""
        return len(self.resident_lines())

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _access_lru(self, line: int) -> AccessOutcome:
        entries = self._lru_sets[line % self.num_sets]
        try:
            index = entries.index(line)
        except ValueError:
            self.misses += 1
            evicted = None
            if len(entries) >= self.associativity:
                evicted = entries.pop()
            entries.insert(0, line)
            return AccessOutcome(hit=False, evicted_line=evicted)
        self.hits += 1
        if index:
            del entries[index]
            entries.insert(0, line)
        return AccessOutcome(hit=True)

    def _access_generic(self, line: int) -> AccessOutcome:
        assert self._policy is not None
        set_index = line % self.num_sets
        ways = self._ways[set_index]
        state = self._policy_state[set_index]
        for way, tag in ways.items():
            if tag == line:
                self.hits += 1
                self._policy.on_hit(state, way)
                return AccessOutcome(hit=True)
        self.misses += 1
        evicted = None
        if len(ways) < self.associativity:
            way = next(w for w in range(self.associativity) if w not in ways)
        else:
            way = self._policy.victim(state, list(ways.keys()))
            evicted = ways[way]
        ways[way] = line
        self._policy.on_fill(state, way)
        return AccessOutcome(hit=False, evicted_line=evicted)
