"""The Multi-Program Performance Model (MPPM) — the paper's contribution.

Given the single-core profiles of the programs in a multi-program
workload mix, :class:`MPPM` predicts each program's multi-core CPI on a
machine with a shared last-level cache, and from those the mix's system
throughput (STP) and average normalized turnaround time (ANTT) —
without any multi-core simulation.

The model is the iterative process of the paper's Figure 2; see
:mod:`repro.core.mppm` for the step-by-step correspondence.
"""

from repro.core.batched import solve_batch
from repro.core.mppm import MPPM, MPPM_KERNELS, MPPMConfig
from repro.core.result import IterationRecord, MixPrediction, ProgramPrediction
from repro.core.baselines import NoContentionPredictor, OneShotContentionPredictor

__all__ = [
    "MPPM",
    "MPPM_KERNELS",
    "MPPMConfig",
    "solve_batch",
    "MixPrediction",
    "ProgramPrediction",
    "IterationRecord",
    "NoContentionPredictor",
    "OneShotContentionPredictor",
]
