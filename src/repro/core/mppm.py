"""The Multi-Program Performance Model (Figure 2 of the paper).

The model starts from every program's single-core behaviour and
iteratively converges on the performance entanglement between
co-executing programs:

1. Initialise every program's slowdown ``R_p = 1`` and instruction
   pointer ``I_p = 0``.
2. Find the slowest program over the next ``L`` instructions: the one
   with the largest ``C_p = CPI_SC,p * R_p * L``; call that cycle count
   ``C``.
3. Every program executes ``N_p = C / (CPI_SC,p * R_p)`` instructions
   during those ``C`` cycles.
4. Aggregate each program's per-interval stack-distance counters over
   its next ``N_p`` instructions and feed them to the cache-contention
   model, which returns the additional conflict misses due to sharing.
5. Convert the extra misses to lost cycles using the program's average
   LLC-miss penalty over the window
   (``CPI_mem,p * N_p / #LLC misses``).
6. Update the slowdown with an exponential moving average:
   ``R_p = f * R_p + (1 - f) * (1 + miss_cycles_p / C)``.
7. Advance ``I_p`` by ``N_p`` and repeat until the slowest program has
   executed ``target_passes`` times its trace (the paper uses 5 passes
   of 1B-instruction traces with ``L`` = 200M instructions).
8. Report ``CPI_MC,p = CPI_SC,p * R_p``.

The defaults reproduce the paper's parameters at our trace scale:
``L`` is one fifth of the trace and the stop criterion is five full
passes of the slowest program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config.machine import MachineConfig
from repro.contention import FOAModel
from repro.contention.base import ContentionModel, ProgramCacheDemand
from repro.core.batched import solve_batch
from repro.core.result import IterationRecord, MixPrediction, ProgramPrediction
from repro.profiling.profile import SingleCoreProfile
from repro.workloads.mixes import WorkloadMix


class MPPMError(ValueError):
    """Raised for invalid model configurations or inputs."""


#: The available fixed-point solvers.  ``"batched"`` (the default) runs
#: the mix-major numpy kernel in :mod:`repro.core.batched`; it solves a
#: whole batch of mixes in one array pass and a single mix as a batch of
#: one.  ``"reference"`` is the original per-mix Python loop, kept as
#: executable ground truth.  The two produce bit-identical predictions
#: by construction, so the choice is pure performance.
MPPM_KERNELS: Tuple[str, ...] = ("batched", "reference")


@dataclass(frozen=True)
class MPPMConfig:
    """Tunable parameters of the iterative model.

    Parameters
    ----------
    chunk_instructions:
        The paper's ``L``: the number of instructions the slowest
        program executes per iteration (200M for 1B traces).  When
        ``None`` it defaults to one fifth of the (shortest) trace,
        preserving the paper's L/trace ratio at any scale.
    smoothing:
        The exponential-moving-average factor ``f`` in the slowdown
        update.  ``0`` means "use only the current iteration's
        estimate"; values close to one change the slowdown slowly.
        The paper reports that smoothing matters for programs with
        strong phase behaviour but does not publish the value; 0.5 is
        the package default and the ablation benchmark sweeps it.
    target_passes:
        Stop once the slowest program has executed this many times its
        trace length (the paper uses 5).
    max_iterations:
        Hard safety limit on the number of iterations.
    store_history:
        Keep a per-iteration record of slowdowns (useful for
        convergence tests and debugging; off by default).
    use_windowed_cpi:
        Model variant for ablations: use the CPI of the program's
        current profile window instead of its whole-trace CPI when
        computing progress, which tracks phases more aggressively.
    literal_figure2_update:
        The paper's Figure 2 writes the per-iteration slowdown estimate
        as ``1 + miss_cycles_p / C`` where ``C`` is the window length
        in *multi-core* cycles, i.e. it already contains the slowdown.
        Taken literally, the fixed point of that update satisfies
        ``R (R - 1) = miss_cycles / isolated_cycles`` and therefore
        under-estimates large slowdowns.  The default normalises the
        lost cycles by the program's *isolated* cycles over its window
        (``1 + miss_cycles_p / (CPI_SC,p * N_p)``), which converges to
        the self-consistent entanglement fixed point; set this flag to
        reproduce the literal formula (the two are indistinguishable
        for mild slowdowns).
    """

    chunk_instructions: Optional[int] = None
    smoothing: float = 0.5
    target_passes: float = 5.0
    max_iterations: int = 10_000
    store_history: bool = False
    use_windowed_cpi: bool = False
    literal_figure2_update: bool = False

    def __post_init__(self) -> None:
        if self.chunk_instructions is not None and self.chunk_instructions <= 0:
            raise MPPMError("chunk_instructions must be positive (or None for the default)")
        if not 0.0 <= self.smoothing < 1.0:
            raise MPPMError(f"smoothing must be in [0, 1), got {self.smoothing}")
        if self.target_passes <= 0:
            raise MPPMError(f"target_passes must be positive, got {self.target_passes}")
        if self.max_iterations <= 0:
            raise MPPMError("max_iterations must be positive")


@dataclass
class _ProgramState:
    """Mutable per-program state of the iterative process."""

    label: str
    core: int
    profile: SingleCoreProfile
    slowdown: float = 1.0
    position: float = 0.0
    executed: float = 0.0

    @property
    def single_core_cpi(self) -> float:
        return self.profile.cpi

    @property
    def passes(self) -> float:
        return self.executed / self.profile.num_instructions


class MPPM:
    """The Multi-Program Performance Model.

    Parameters
    ----------
    machine:
        The multi-core machine being modelled; only its shared LLC
        configuration is consulted (the core behaviour is already baked
        into the single-core profiles, which must have been collected
        on the same machine).
    contention_model:
        The cache-contention model; FOA by default, as in the paper.
    config:
        Iteration parameters (see :class:`MPPMConfig`).
    kernel:
        Default solver kernel, one of :data:`MPPM_KERNELS`.  Both
        kernels produce bit-identical predictions; ``"batched"`` is an
        order of magnitude faster on bulk sweeps.  Per-call overrides
        are accepted by every predict method.  Configurations with
        ``store_history=True`` always run the reference loop (history
        is per-iteration bookkeeping only the sequential kernel keeps).
    """

    def __init__(
        self,
        machine: MachineConfig,
        contention_model: Optional[ContentionModel] = None,
        config: Optional[MPPMConfig] = None,
        kernel: str = "batched",
    ) -> None:
        self.machine = machine
        self.contention_model = contention_model if contention_model is not None else FOAModel()
        self.config = config if config is not None else MPPMConfig()
        if kernel not in MPPM_KERNELS:
            raise MPPMError(f"unknown MPPM kernel {kernel!r}; choose from {MPPM_KERNELS}")
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def predict(
        self, profiles: Sequence[SingleCoreProfile], kernel: Optional[str] = None
    ) -> MixPrediction:
        """Predict multi-core performance for one mix (one profile per core)."""
        return self.predict_batch([profiles], kernel=kernel)[0]

    def predict_batch(
        self,
        mixes: Sequence[Sequence[SingleCoreProfile]],
        kernel: Optional[str] = None,
    ) -> List[MixPrediction]:
        """Predict every mix (one profile list per mix) in one call.

        With the batched kernel the whole batch is solved by one
        mix-major fixed-point pass (:func:`repro.core.batched.solve_batch`);
        with the reference kernel the mixes are solved one by one.  The
        results are bit-identical either way and are returned in input
        order.
        """
        batches = [list(profiles) for profiles in mixes]
        for profiles in batches:
            if not profiles:
                raise MPPMError("at least one program profile is required")
            self._check_profiles(profiles)
        if self._resolve_kernel(kernel) == "reference":
            return [self._predict_reference(profiles) for profiles in batches]
        return solve_batch(self.machine, self.contention_model, self.config, batches)

    def _resolve_kernel(self, kernel: Optional[str]) -> str:
        resolved = kernel if kernel is not None else self.kernel
        if resolved not in MPPM_KERNELS:
            raise MPPMError(f"unknown MPPM kernel {resolved!r}; choose from {MPPM_KERNELS}")
        if resolved == "batched" and self.config.store_history:
            # Per-iteration history is sequential bookkeeping that only
            # the reference loop records; fall back transparently.
            return "reference"
        return resolved

    def _predict_reference(self, profiles: Sequence[SingleCoreProfile]) -> MixPrediction:
        """The original per-mix Python loop (ground truth for the batched kernel)."""
        states = [
            _ProgramState(
                label=self._label(profile.benchmark, core, profiles),
                core=core,
                profile=profile,
            )
            for core, profile in enumerate(profiles)
        ]

        chunk = self.config.chunk_instructions
        if chunk is None:
            chunk = max(1, min(state.profile.num_instructions for state in states) // 5)

        history: List[IterationRecord] = []
        iterations = 0
        converged = False

        while iterations < self.config.max_iterations:
            iterations += 1
            window_cycles = self._iterate(states, chunk)
            if self.config.store_history:
                history.append(
                    IterationRecord(
                        iteration=iterations,
                        window_cycles=window_cycles,
                        slowdowns=tuple(state.slowdown for state in states),
                        instructions_executed=tuple(state.executed for state in states),
                    )
                )
            # Stop once the slowest program (the one that advanced the
            # least, relative to its trace) has executed target_passes
            # times its trace.
            if min(state.passes for state in states) >= self.config.target_passes:
                converged = True
                break

        programs = tuple(
            ProgramPrediction(
                name=state.profile.benchmark,
                core=state.core,
                single_core_cpi=state.single_core_cpi,
                predicted_cpi=state.single_core_cpi * state.slowdown,
            )
            for state in states
        )
        return MixPrediction(
            machine_name=self.machine.name,
            programs=programs,
            iterations=iterations,
            converged=converged,
            history=tuple(history),
            kernel="reference",
        )

    def predict_mix(
        self,
        mix: WorkloadMix,
        profiles: Mapping[str, SingleCoreProfile],
        kernel: Optional[str] = None,
    ) -> MixPrediction:
        """Predict performance for a :class:`WorkloadMix` given a profile library."""
        return self.predict(self._mix_profiles(mix, profiles), kernel=kernel)

    def predict_many(
        self,
        mixes: Sequence[WorkloadMix],
        profiles: Mapping[str, SingleCoreProfile],
        kernel: Optional[str] = None,
    ) -> List[MixPrediction]:
        """Predict performance for many mixes (the bulk-evaluation use case).

        Identical mixes (same program tuple) within one call are solved
        once and share the same immutable prediction object, so sweeps
        with repeated mixes pay for each distinct mix only.
        """
        unique_index: Dict[Tuple[str, ...], int] = {}
        unique_batches: List[List[SingleCoreProfile]] = []
        order: List[int] = []
        for mix in mixes:
            key = tuple(mix.programs)
            index = unique_index.get(key)
            if index is None:
                index = len(unique_batches)
                unique_index[key] = index
                unique_batches.append(self._mix_profiles(mix, profiles))
            order.append(index)
        solved = self.predict_batch(unique_batches, kernel=kernel)
        return [solved[index] for index in order]

    @staticmethod
    def _mix_profiles(
        mix: WorkloadMix, profiles: Mapping[str, SingleCoreProfile]
    ) -> List[SingleCoreProfile]:
        missing = [name for name in mix.programs if name not in profiles]
        if missing:
            raise MPPMError(f"no profiles for mix programs: {missing}")
        return [profiles[name] for name in mix.programs]

    # ------------------------------------------------------------------
    # One iteration of Figure 2
    # ------------------------------------------------------------------

    def _iterate(self, states: List[_ProgramState], chunk: int) -> float:
        config = self.config

        # Step 2: the slowest program's cycle budget for this iteration.
        cycles_per_program = [
            self._current_cpi(state) * state.slowdown * chunk for state in states
        ]
        window_cycles = max(cycles_per_program)

        # Step 3: instruction progress of every program in that budget.
        progress = [
            window_cycles / (self._current_cpi(state) * state.slowdown) for state in states
        ]

        # Step 4: aggregate SDCs over each program's window and run the
        # cache-contention model.
        windows = [
            state.profile.window(state.position, instructions)
            for state, instructions in zip(states, progress)
        ]
        demands = [
            ProgramCacheDemand(name=state.label, sdc=window.sdc, instructions=window.instructions)
            for state, window in zip(states, windows)
        ]
        estimates = self.contention_model.estimate(demands, self.machine.llc)

        # Steps 5 and 6: extra conflict misses -> lost cycles -> slowdown EMA.
        for state, window, estimate, instructions in zip(states, windows, estimates, progress):
            penalty = window.average_miss_penalty
            if penalty <= 0:
                penalty = self._fallback_miss_penalty(state)
            miss_cycles = estimate.extra_conflict_misses * penalty
            if config.literal_figure2_update:
                # The formula exactly as printed in Figure 2.
                current_slowdown = 1.0 + miss_cycles / window_cycles
            else:
                # Normalise by the program's isolated cycles over its own
                # window, which makes the fixed point self-consistent (see
                # MPPMConfig.literal_figure2_update).
                isolated_cycles = self._current_cpi(state) * instructions
                current_slowdown = 1.0 + miss_cycles / isolated_cycles
            state.slowdown = (
                config.smoothing * state.slowdown + (1.0 - config.smoothing) * current_slowdown
            )

        # Step 7: advance the instruction pointers.
        for state, instructions in zip(states, progress):
            state.position += instructions
            state.executed += instructions

        return window_cycles

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _current_cpi(self, state: _ProgramState) -> float:
        """Single-core CPI used for progress computation."""
        if not self.config.use_windowed_cpi:
            return state.profile.cpi
        # Ablation variant: the CPI of the upcoming profile interval.
        interval_length = state.profile.interval_instructions
        window = state.profile.window(state.position, interval_length)
        return window.cpi if window.cpi > 0 else state.profile.cpi

    def _fallback_miss_penalty(self, state: _ProgramState) -> float:
        """Average miss penalty when the current window has no isolated misses."""
        total_misses = state.profile.total_llc_misses
        if total_misses > 0:
            return (
                state.profile.memory_cpi * state.profile.num_instructions / total_misses
            )
        return float(self.machine.memory.latency)

    @staticmethod
    def _label(benchmark: str, core: int, profiles: Sequence[SingleCoreProfile]) -> str:
        """Unique per-core label (mixes may contain several copies of a benchmark)."""
        duplicates = sum(1 for profile in profiles if profile.benchmark == benchmark)
        return f"{benchmark}#{core}" if duplicates > 1 else benchmark

    def _check_profiles(self, profiles: Sequence[SingleCoreProfile]) -> None:
        expected_key = self.machine.profile_key()
        llc_ways = self.machine.llc.associativity
        for profile in profiles:
            if profile.llc_associativity != llc_ways:
                raise MPPMError(
                    f"{profile.benchmark}: profile was collected for an "
                    f"{profile.llc_associativity}-way LLC but the machine has "
                    f"{llc_ways} ways"
                )
            if profile.machine_key != expected_key:
                raise MPPMError(
                    f"{profile.benchmark}: profile was collected on a different machine "
                    f"({profile.machine_name!r}) than the one being modelled "
                    f"({self.machine.name!r}); re-profile or derive a matching profile"
                )
