"""Result types produced by MPPM."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class MPPMResultError(ValueError):
    """Raised for inconsistent prediction results."""


@dataclass(frozen=True)
class ProgramPrediction:
    """MPPM's prediction for one program of a workload mix."""

    name: str
    core: int
    single_core_cpi: float
    predicted_cpi: float

    def __post_init__(self) -> None:
        if self.single_core_cpi <= 0 or self.predicted_cpi <= 0:
            raise MPPMResultError(f"{self.name}: CPIs must be positive")

    @property
    def slowdown(self) -> float:
        """Predicted slowdown relative to isolated execution (the paper's R_p)."""
        return self.predicted_cpi / self.single_core_cpi

    @property
    def normalized_progress(self) -> float:
        """Predicted per-program progress (CPI_SC / CPI_MC), the STP contribution."""
        return self.single_core_cpi / self.predicted_cpi


@dataclass(frozen=True)
class IterationRecord:
    """State of the iterative process after one iteration (for diagnostics)."""

    iteration: int
    window_cycles: float
    slowdowns: Tuple[float, ...]
    instructions_executed: Tuple[float, ...]


@dataclass(frozen=True)
class MixPrediction:
    """A predictor's estimate for one multi-program workload mix.

    ``predictor`` is the registry spec of the estimator that produced
    the prediction (``"mppm:foa"``, ``"detailed"``, …; see
    :mod:`repro.predictors`).  ``kernel`` names the solver kernel that
    produced it (``"batched"`` / ``"reference"`` for MPPM; ``None`` for
    estimators without kernel variants).  Both round-trip through the
    JSON serialisation, so cached and exported results are
    self-describing; the kernels are bit-identical, so the field is
    pure provenance and never part of a cache key.
    """

    machine_name: str
    programs: Tuple[ProgramPrediction, ...]
    iterations: int
    converged: bool
    history: Tuple[IterationRecord, ...] = field(default=())
    predictor: Optional[str] = None
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.programs:
            raise MPPMResultError("a mix prediction needs at least one program")

    @property
    def num_programs(self) -> int:
        return len(self.programs)

    @property
    def system_throughput(self) -> float:
        """Predicted STP: sum over programs of CPI_SC / CPI_MC (higher is better)."""
        return sum(program.normalized_progress for program in self.programs)

    @property
    def average_normalized_turnaround_time(self) -> float:
        """Predicted ANTT: mean over programs of CPI_MC / CPI_SC (lower is better)."""
        return sum(program.slowdown for program in self.programs) / self.num_programs

    @property
    def slowdowns(self) -> List[float]:
        return [program.slowdown for program in self.programs]

    @property
    def predicted_cpis(self) -> List[float]:
        return [program.predicted_cpi for program in self.programs]

    def program(self, name: str) -> ProgramPrediction:
        """The first program prediction with the given benchmark name."""
        for program in self.programs:
            if program.name == name:
                return program
        raise KeyError(f"no program named {name!r} in this prediction")

    def by_core(self) -> Dict[int, ProgramPrediction]:
        return {program.core: program for program in self.programs}

    # ------------------------------------------------------------------
    # Serialisation (for the engine's persistent result cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-data representation suitable for JSON."""
        return {
            "machine_name": self.machine_name,
            "iterations": self.iterations,
            "converged": self.converged,
            "predictor": self.predictor,
            "kernel": self.kernel,
            "programs": [
                {
                    "name": program.name,
                    "core": program.core,
                    "single_core_cpi": program.single_core_cpi,
                    "predicted_cpi": program.predicted_cpi,
                }
                for program in self.programs
            ],
            "history": [
                {
                    "iteration": record.iteration,
                    "window_cycles": record.window_cycles,
                    "slowdowns": list(record.slowdowns),
                    "instructions_executed": list(record.instructions_executed),
                }
                for record in self.history
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MixPrediction":
        """Inverse of :meth:`to_dict`."""
        programs = tuple(
            ProgramPrediction(
                name=entry["name"],
                core=int(entry["core"]),
                single_core_cpi=float(entry["single_core_cpi"]),
                predicted_cpi=float(entry["predicted_cpi"]),
            )
            for entry in data["programs"]
        )
        history = tuple(
            IterationRecord(
                iteration=int(entry["iteration"]),
                window_cycles=float(entry["window_cycles"]),
                slowdowns=tuple(float(value) for value in entry["slowdowns"]),
                instructions_executed=tuple(
                    float(value) for value in entry["instructions_executed"]
                ),
            )
            for entry in data["history"]
        )
        predictor = data.get("predictor")
        kernel = data.get("kernel")
        return cls(
            machine_name=data["machine_name"],
            programs=programs,
            iterations=int(data["iterations"]),
            converged=bool(data["converged"]),
            history=history,
            predictor=str(predictor) if predictor is not None else None,
            kernel=str(kernel) if kernel is not None else None,
        )

    def describe(self) -> str:
        kernel = f", kernel={self.kernel}" if self.kernel is not None else ""
        lines = [
            f"{self.predictor or 'MPPM'} prediction on {self.machine_name} "
            f"({self.iterations} iterations, converged={self.converged}{kernel}):"
        ]
        for program in self.programs:
            lines.append(
                f"  core {program.core}: {program.name:<12s} "
                f"CPI_SC {program.single_core_cpi:6.3f} -> CPI_MC {program.predicted_cpi:6.3f} "
                f"(slowdown {program.slowdown:4.2f}x)"
            )
        lines.append(
            f"  STP {self.system_throughput:.3f}, "
            f"ANTT {self.average_normalized_turnaround_time:.3f}"
        )
        return "\n".join(lines)
