"""The batched MPPM kernel: one mix-major numpy fixed point over many mixes.

The reference kernel in :mod:`repro.core.mppm` runs one Python loop per
mix; at ``workload_space`` scale that is thousands of interpreter
round-trips over the same handful of float operations.  This module
solves the Figure-2 fixed point for an entire batch of mixes
simultaneously: the per-program state lives in mix-major arrays
(``slowdown[m, c]``, ``position[m, c]``, ``executed[m, c]``) and one
vectorized iteration step

* picks each mix's slowest program (a row-wise max),
* computes every program's instruction budget for the iteration,
* aggregates each program's per-interval stack-distance counters over
  its window through the profile's prefix-sum
  :class:`~repro.profiling.profile.ProfileWindowTable` (grouped by
  unique profile, so a batch touching P distinct benchmarks costs P
  gathers per iteration, not M·C),
* applies the contention model's batched ``estimate_batch``, and
* performs the EMA slowdown update for all still-unconverged mixes.

A convergence mask retires mixes in place, so ragged iteration counts
cost nothing: retired rows simply stop being part of the live slice.

Bit-identity with the reference loop is by construction, not by
accident: within each mix the float operations are the same ops in the
same order (the window table is shared with the scalar
``SingleCoreProfile.window``, the batched contention models replicate
the scalar accumulation order, and numpy elementwise arithmetic is IEEE
double arithmetic), so the batched kernel's outputs match the reference
kernel's bit for bit.  The equivalence matrix in
``tests/test_core_mppm_batched.py`` and the CI guard
``benchmarks/bench_mppm_batch.py`` both assert exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.config.machine import MachineConfig
from repro.contention.base import ContentionModel
from repro.core.result import MixPrediction, ProgramPrediction
from repro.profiling.profile import ProfileWindowTable, SingleCoreProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mppm import MPPMConfig

#: Column indices of window rows (shared with the scalar window path).
_COL_INSTRUCTIONS = ProfileWindowTable.COL_INSTRUCTIONS
_COL_CYCLES = ProfileWindowTable.COL_CYCLES
_COL_MEMORY_CYCLES = ProfileWindowTable.COL_MEMORY_CYCLES
_COL_LLC_MISSES = ProfileWindowTable.COL_LLC_MISSES
_SDC_OFFSET = ProfileWindowTable.SDC_OFFSET


def solve_batch(
    machine: MachineConfig,
    contention_model: ContentionModel,
    config: "MPPMConfig",
    mixes: Sequence[Sequence[SingleCoreProfile]],
) -> List[MixPrediction]:
    """Solve the MPPM fixed point for every mix in ``mixes`` at once.

    ``mixes`` holds one profile list per mix (one profile per core);
    mixes of different core counts are grouped and solved per uniform
    group.  Returns one :class:`MixPrediction` per input mix, in input
    order, tagged ``kernel="batched"``.  Inputs are assumed validated
    (:meth:`repro.core.mppm.MPPM.predict_batch` checks profiles against
    the machine before calling in).
    """
    predictions: List[Optional[MixPrediction]] = [None] * len(mixes)
    groups: Dict[int, List[int]] = {}
    for index, profiles in enumerate(mixes):
        groups.setdefault(len(profiles), []).append(index)
    for _, indices in sorted(groups.items()):
        solved = _solve_uniform(
            machine, contention_model, config, [mixes[index] for index in indices]
        )
        for index, prediction in zip(indices, solved):
            predictions[index] = prediction
    return predictions


def _fallback_miss_penalty(profile: SingleCoreProfile, machine: MachineConfig) -> float:
    """Average miss penalty when a window has no isolated misses.

    The same whole-trace fallback the reference kernel computes
    (``MPPM._fallback_miss_penalty``); it is a constant per profile, so
    the batched kernel precomputes it once per unique profile.
    """
    total_misses = profile.total_llc_misses
    if total_misses > 0:
        return profile.memory_cpi * profile.num_instructions / total_misses
    return float(machine.memory.latency)


def _gather_windows(
    tables: Sequence[ProfileWindowTable],
    profile_ids: np.ndarray,
    positions: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Window rows for every (mix, core) slot, grouped by unique profile."""
    width = tables[0].values.shape[1]
    flat_ids = profile_ids.ravel()
    flat_positions = positions.ravel()
    flat_lengths = lengths.ravel()
    rows = np.empty((flat_ids.shape[0], width), dtype=np.float64)
    for index, table in enumerate(tables):
        mask = flat_ids == index
        if mask.any():
            rows[mask] = table.windows(flat_positions[mask], flat_lengths[mask])
    return rows.reshape(profile_ids.shape + (width,))


def _windowed_cpi(
    tables: Sequence[ProfileWindowTable],
    profile_ids: np.ndarray,
    positions: np.ndarray,
    interval_lengths: np.ndarray,
    base_cpi: np.ndarray,
) -> np.ndarray:
    """The ``use_windowed_cpi`` ablation's per-interval CPI, batched."""
    windows = _gather_windows(tables, profile_ids, positions, interval_lengths)
    instructions = windows[..., _COL_INSTRUCTIONS]
    cycles = windows[..., _COL_CYCLES]
    nonzero = instructions != 0.0
    cpi = np.where(nonzero, cycles / np.where(nonzero, instructions, 1.0), 0.0)
    return np.where(cpi > 0.0, cpi, base_cpi)


def _solve_uniform(
    machine: MachineConfig,
    contention_model: ContentionModel,
    config: "MPPMConfig",
    mixes: Sequence[Sequence[SingleCoreProfile]],
) -> List[MixPrediction]:
    """Solve a batch of mixes that all have the same core count."""
    num_mixes = len(mixes)
    num_cores = len(mixes[0])

    # Unique profiles (the setup's stores hand out shared instances, so
    # identity dedup collapses a batch to its distinct benchmarks) and
    # the per-slot index into them.
    uniques: List[SingleCoreProfile] = []
    by_identity: Dict[int, int] = {}
    profile_ids = np.empty((num_mixes, num_cores), dtype=np.int64)
    for m, profiles in enumerate(mixes):
        for c, profile in enumerate(profiles):
            identity = id(profile)
            if identity not in by_identity:
                by_identity[identity] = len(uniques)
                uniques.append(profile)
            profile_ids[m, c] = by_identity[identity]

    tables = [profile.window_table for profile in uniques]
    unique_cpi = np.array([profile.cpi for profile in uniques], dtype=np.float64)
    unique_trace = np.array(
        [profile.num_instructions for profile in uniques], dtype=np.float64
    )
    unique_interval = np.array(
        [profile.interval_instructions for profile in uniques], dtype=np.float64
    )
    unique_fallback = np.array(
        [_fallback_miss_penalty(profile, machine) for profile in uniques], dtype=np.float64
    )

    base_cpi = unique_cpi[profile_ids]
    trace_lengths = unique_trace[profile_ids]
    interval_lengths = unique_interval[profile_ids]
    fallback_penalty = unique_fallback[profile_ids]

    if config.chunk_instructions is not None:
        chunk = np.full(num_mixes, float(config.chunk_instructions), dtype=np.float64)
    else:
        chunk = np.array(
            [
                float(max(1, min(profile.num_instructions for profile in profiles) // 5))
                for profiles in mixes
            ],
            dtype=np.float64,
        )

    slowdown = np.ones((num_mixes, num_cores), dtype=np.float64)
    position = np.zeros((num_mixes, num_cores), dtype=np.float64)
    executed = np.zeros((num_mixes, num_cores), dtype=np.float64)
    iterations = np.zeros(num_mixes, dtype=np.int64)
    converged = np.zeros(num_mixes, dtype=bool)
    alive = np.ones(num_mixes, dtype=bool)

    smoothing = config.smoothing
    complement = 1.0 - config.smoothing
    llc = machine.llc
    associativity = llc.associativity

    while alive.any():
        rows = np.flatnonzero(alive)
        ids_live = profile_ids[rows]
        position_live = position[rows]
        slowdown_live = slowdown[rows]

        # Step 2/3: the slowest program's cycle budget, then everyone's
        # instruction progress within it.
        current_cpi = base_cpi[rows]
        if config.use_windowed_cpi:
            current_cpi = _windowed_cpi(
                tables, ids_live, position_live, interval_lengths[rows], current_cpi
            )
        denominator = current_cpi * slowdown_live
        cycles = denominator * chunk[rows][:, None]
        window_cycles = cycles.max(axis=1)
        progress = window_cycles[:, None] / denominator

        # Step 4: window aggregation and the batched contention model.
        windows = _gather_windows(tables, ids_live, position_live, progress)
        sdc_counts = windows[..., _SDC_OFFSET:]
        shared = contention_model.estimate_batch(
            sdc_counts, windows[..., _COL_INSTRUCTIONS], llc
        )
        isolated = sdc_counts[..., associativity]
        extra_misses = np.maximum(0.0, shared - isolated)

        # Step 5: extra conflict misses -> lost cycles (window-average
        # miss penalty, whole-trace fallback when the window has none).
        window_misses = windows[..., _COL_LLC_MISSES]
        has_misses = window_misses > 0.0
        penalty = np.where(
            has_misses,
            windows[..., _COL_MEMORY_CYCLES] / np.where(has_misses, window_misses, 1.0),
            0.0,
        )
        penalty = np.where(penalty <= 0.0, fallback_penalty[rows], penalty)
        miss_cycles = extra_misses * penalty

        # Step 6: the EMA slowdown update.
        if config.literal_figure2_update:
            current_slowdown = 1.0 + miss_cycles / window_cycles[:, None]
        else:
            isolated_cycles = current_cpi * progress
            current_slowdown = 1.0 + miss_cycles / isolated_cycles
        slowdown[rows] = smoothing * slowdown_live + complement * current_slowdown

        # Step 7: advance the instruction pointers; retire mixes whose
        # slowest program has executed target_passes traces (or that
        # hit the iteration cap, exactly like the reference loop).
        position[rows] = position_live + progress
        executed[rows] = executed[rows] + progress
        iterations[rows] += 1
        passes = executed[rows] / trace_lengths[rows]
        done = passes.min(axis=1) >= config.target_passes
        capped = iterations[rows] >= config.max_iterations
        converged[rows[done]] = True
        alive[rows[done | capped]] = False

    predictions: List[MixPrediction] = []
    for m, profiles in enumerate(mixes):
        programs = tuple(
            ProgramPrediction(
                name=profile.benchmark,
                core=core,
                single_core_cpi=profile.cpi,
                predicted_cpi=profile.cpi * float(slowdown[m, core]),
            )
            for core, profile in enumerate(profiles)
        )
        predictions.append(
            MixPrediction(
                machine_name=machine.name,
                programs=programs,
                iterations=int(iterations[m]),
                converged=bool(converged[m]),
                kernel="batched",
            )
        )
    return predictions
