"""Baseline predictors that MPPM is compared against.

The paper's central claim is that the *iterative* entanglement between
per-core progress and cache contention must be modelled; these two
baselines remove parts of that machinery so the benefit can be
quantified (the iteration ablation benchmark uses them):

* :class:`NoContentionPredictor` — assumes cache sharing is free: every
  program runs at its single-core CPI.  This is the implicit assumption
  behind evaluating multi-core designs with single-program workloads,
  and it is what MPPM's first iteration starts from.
* :class:`OneShotContentionPredictor` — applies the cache-contention
  model exactly once, using each program's whole-trace stack-distance
  counters and assuming all programs progress at single-core speed.
  This is "MPPM without the iteration and without time-varying
  behaviour": it captures first-order contention but not the
  entanglement (a slowed-down program issues fewer LLC accesses per
  cycle, which changes everyone else's contention) nor phases.

Both return the same :class:`MixPrediction` type as MPPM, so every
metric and experiment works with them unchanged.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.config.machine import MachineConfig
from repro.contention import FOAModel
from repro.contention.base import ContentionModel, ProgramCacheDemand
from repro.core.result import MixPrediction, ProgramPrediction
from repro.profiling.profile import SingleCoreProfile
from repro.workloads.mixes import WorkloadMix


class NoContentionPredictor:
    """Predicts multi-core performance assuming cache sharing is free."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def predict(self, profiles: Sequence[SingleCoreProfile]) -> MixPrediction:
        """Every program keeps its single-core CPI (slowdown 1.0)."""
        if not profiles:
            raise ValueError("at least one program profile is required")
        programs = tuple(
            ProgramPrediction(
                name=profile.benchmark,
                core=core,
                single_core_cpi=profile.cpi,
                predicted_cpi=profile.cpi,
            )
            for core, profile in enumerate(profiles)
        )
        return MixPrediction(
            machine_name=self.machine.name, programs=programs, iterations=0, converged=True
        )

    def predict_mix(
        self, mix: WorkloadMix, profiles: Mapping[str, SingleCoreProfile]
    ) -> MixPrediction:
        return self.predict([profiles[name] for name in mix.programs])


class OneShotContentionPredictor:
    """Applies the contention model once, without the iterative entanglement."""

    def __init__(
        self, machine: MachineConfig, contention_model: Optional[ContentionModel] = None
    ) -> None:
        self.machine = machine
        self.contention_model = contention_model if contention_model is not None else FOAModel()

    def predict(self, profiles: Sequence[SingleCoreProfile]) -> MixPrediction:
        """One pass of the contention model over the whole-trace SDCs."""
        if not profiles:
            raise ValueError("at least one program profile is required")
        demands = [
            ProgramCacheDemand(
                name=f"{profile.benchmark}#{core}",
                sdc=profile.total_sdc(),
                instructions=profile.num_instructions,
            )
            for core, profile in enumerate(profiles)
        ]
        estimates = self.contention_model.estimate(demands, self.machine.llc)

        programs = []
        for core, (profile, estimate) in enumerate(zip(profiles, estimates)):
            if profile.total_llc_misses > 0:
                penalty = (
                    profile.memory_cpi * profile.num_instructions / profile.total_llc_misses
                )
            else:
                penalty = float(self.machine.memory.latency)
            extra_cycles = estimate.extra_conflict_misses * penalty
            slowdown = 1.0 + extra_cycles / profile.total_cycles
            programs.append(
                ProgramPrediction(
                    name=profile.benchmark,
                    core=core,
                    single_core_cpi=profile.cpi,
                    predicted_cpi=profile.cpi * slowdown,
                )
            )
        return MixPrediction(
            machine_name=self.machine.name,
            programs=tuple(programs),
            iterations=1,
            converged=True,
        )

    def predict_mix(
        self, mix: WorkloadMix, profiles: Mapping[str, SingleCoreProfile]
    ) -> MixPrediction:
        return self.predict([profiles[name] for name in mix.programs])
