"""Single-core detailed simulation (the profiling run).

Running a benchmark in isolation on the target machine is the paper's
one-time cost per benchmark: it yields the per-interval single-core
CPI, memory CPI and stack-distance counters that MPPM consumes, plus —
in our trace-driven setup — the filtered LLC access stream that the
multi-core reference simulator replays.

One :class:`SingleCoreSimulator.run` call produces everything at once:
a :class:`SingleCoreRunResult` holding the interval measurements, the
overall CPI stack and the :class:`LLCAccessTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.stack_distance import StackDistanceCounters, StackDistanceProfiler
from repro.config.machine import MachineConfig
from repro.cores.core_model import CoreTimingModel
from repro.cores.cpi_stack import CPIStack
from repro.simulators.llc_trace import LLCAccessTrace
from repro.workloads.trace import MemoryTrace


@dataclass(frozen=True)
class IntervalMeasurement:
    """Measurements for one profiling interval (the paper uses 20M instructions)."""

    index: int
    instructions: int
    cycles: float
    memory_cycles: float
    llc_accesses: int
    llc_hits: int
    llc_misses: int
    sdc: StackDistanceCounters

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def memory_cpi(self) -> float:
        return self.memory_cycles / self.instructions if self.instructions else 0.0


@dataclass(frozen=True)
class SingleCoreRunResult:
    """Everything one isolated profiling run produces."""

    benchmark: str
    machine_name: str
    interval_instructions: int
    intervals: List[IntervalMeasurement]
    cpi_stack: CPIStack
    llc_trace: LLCAccessTrace

    @property
    def num_instructions(self) -> int:
        return self.cpi_stack.instructions

    @property
    def cycles(self) -> float:
        return self.cpi_stack.total_cycles

    @property
    def cpi(self) -> float:
        """Single-core CPI of the whole run (the paper's CPI_SC)."""
        return self.cpi_stack.cpi

    @property
    def memory_cpi(self) -> float:
        """Memory CPI of the whole run (the paper's CPI_mem)."""
        return self.cpi_stack.memory_cpi

    @property
    def llc_miss_rate(self) -> float:
        accesses = sum(interval.llc_accesses for interval in self.intervals)
        misses = sum(interval.llc_misses for interval in self.intervals)
        return misses / accesses if accesses else 0.0


class SingleCoreSimulator:
    """Trace-driven simulation of one benchmark in isolation.

    Parameters
    ----------
    machine:
        The target machine.  Only one core is used; the LLC is present
        but not shared with anyone.
    interval_instructions:
        Profiling interval length in dynamic instructions (the paper
        uses 20M out of 1B; the default of 4,000 out of 200,000 keeps
        the same 50-interval structure at our trace scale).
    """

    def __init__(self, machine: MachineConfig, interval_instructions: int = 4_000) -> None:
        if interval_instructions <= 0:
            raise ValueError("interval_instructions must be positive")
        self.machine = machine
        self.interval_instructions = interval_instructions

    def run(self, trace: MemoryTrace) -> SingleCoreRunResult:
        """Simulate ``trace`` in isolation and collect the profile data."""
        machine = self.machine
        core_model = CoreTimingModel(machine, trace.spec)
        hierarchy = CacheHierarchy(machine, include_llc=True)
        sdc_profiler = StackDistanceProfiler(
            num_sets=machine.llc.num_sets, associativity=machine.llc.associativity
        )

        overall = CPIStack()
        intervals: List[IntervalMeasurement] = []

        llc_lines: List[int] = []
        llc_insns: List[int] = []
        llc_gaps: List[float] = []
        pending_upstream = 0.0

        access_insn = trace.access_insn
        access_line = trace.access_line
        base_gap = trace.base_cycle_gap

        slices = trace.interval_slices(self.interval_instructions)
        previous_boundary_insn = 0

        for interval_index, (start, stop) in enumerate(slices):
            interval_stack = CPIStack()
            interval_llc_accesses = 0
            interval_llc_hits = 0
            interval_llc_misses = 0

            for i in range(start, stop):
                base_cycles = float(base_gap[i])
                interval_stack.add_base(base_cycles)
                pending_upstream += base_cycles
                line = int(access_line[i])

                outcome = hierarchy.access(line)
                if not outcome.reached_llc:
                    penalty = core_model.private_hit_penalty(outcome.level_index)
                    if penalty:
                        interval_stack.add_private_cache(penalty)
                        pending_upstream += penalty
                    continue

                # The access reached the last-level cache: it belongs to
                # the filtered LLC trace and to the SDC profile.
                llc_lines.append(line)
                llc_insns.append(int(access_insn[i]))
                llc_gaps.append(pending_upstream)
                pending_upstream = 0.0
                sdc_profiler.access(line)
                interval_llc_accesses += 1

                if outcome.llc_hit:
                    interval_llc_hits += 1
                    interval_stack.add_llc(core_model.llc_hit_penalty)
                else:
                    interval_llc_misses += 1
                    interval_stack.add_memory(core_model.memory_penalty)

            # Attribute the interval's instruction count and close it out.
            boundary_insn = min(
                (interval_index + 1) * self.interval_instructions, trace.num_instructions
            )
            interval_instructions = boundary_insn - previous_boundary_insn
            previous_boundary_insn = boundary_insn
            if interval_index == len(slices) - 1:
                # Cycles after the last memory access belong to the last interval.
                interval_stack.add_base(trace.tail_base_cycles)
                pending_upstream += trace.tail_base_cycles
            interval_stack.add_instructions(interval_instructions)

            intervals.append(
                IntervalMeasurement(
                    index=interval_index,
                    instructions=interval_instructions,
                    cycles=interval_stack.total_cycles,
                    memory_cycles=interval_stack.memory,
                    llc_accesses=interval_llc_accesses,
                    llc_hits=interval_llc_hits,
                    llc_misses=interval_llc_misses,
                    sdc=sdc_profiler.snapshot_and_reset_counters(),
                )
            )
            overall = overall.merged_with(interval_stack)

        llc_trace = LLCAccessTrace(
            spec=trace.spec,
            num_instructions=trace.num_instructions,
            line=np.asarray(llc_lines, dtype=np.int64),
            insn=np.asarray(llc_insns, dtype=np.int64),
            upstream_cycle_gap=np.asarray(llc_gaps, dtype=np.float64),
            tail_cycles=float(pending_upstream),
            isolated_cycles=overall.total_cycles,
        )

        return SingleCoreRunResult(
            benchmark=trace.name,
            machine_name=machine.name,
            interval_instructions=self.interval_instructions,
            intervals=intervals,
            cpi_stack=overall,
            llc_trace=llc_trace,
        )

    def run_with_perfect_llc(self, trace: MemoryTrace) -> float:
        """CPI of a run where every LLC access hits (the paper's perfect-LLC run).

        The paper describes two ways of obtaining the memory CPI; the
        two-run method subtracts the perfect-LLC CPI from the real CPI.
        Our accounting method gives the same number directly, but this
        run is kept for cross-validation in the test suite.
        """
        machine = self.machine
        core_model = CoreTimingModel(machine, trace.spec)
        hierarchy = CacheHierarchy(machine, include_llc=True)
        cycles = float(trace.base_cycle_gap.sum()) + trace.tail_base_cycles
        for i in range(trace.num_accesses):
            line = int(trace.access_line[i])
            outcome = hierarchy.access(line)
            if not outcome.reached_llc:
                cycles += core_model.private_hit_penalty(outcome.level_index)
            else:
                # Perfect LLC: every access that reaches it is a hit.
                cycles += core_model.llc_hit_penalty
        return cycles / trace.num_instructions
