"""Single-core detailed simulation (the profiling run).

Running a benchmark in isolation on the target machine is the paper's
one-time cost per benchmark: it yields the per-interval single-core
CPI, memory CPI and stack-distance counters that MPPM consumes, plus —
in our trace-driven setup — the filtered LLC access stream that the
multi-core reference simulator replays.

One :class:`SingleCoreSimulator.run` call produces everything at once:
a :class:`SingleCoreRunResult` holding the interval measurements, the
overall CPI stack and the :class:`LLCAccessTrace`.

Two replay kernels produce the per-access outcomes:

* ``"vectorized"`` (the default) resolves every cache level with
  batched per-set stack distances (:mod:`repro.caches.vectorized`) —
  a handful of array passes over the whole trace, exploiting that an
  access hits an A-way LRU cache iff its stack distance is at most A;
* ``"reference"`` walks every access through stateful
  :class:`~repro.caches.hierarchy.CacheHierarchy` /
  :class:`~repro.caches.stack_distance.StackDistanceProfiler` objects,
  one at a time — the direct transcription of what profiling hardware
  would observe, kept as the ground truth the fast kernel is tested
  against.

Both kernels emit the same outcome arrays (which level served each
access, the filtered LLC stream and its stack distances) and share one
assembly routine for all cycle accounting, so their
:class:`SingleCoreRunResult`\\ s are bit-identical — asserted by the
equivalence suite and guarded by ``benchmarks/bench_singlecore_kernel``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.caches.hierarchy import CacheHierarchy
from repro.caches.stack_distance import (
    StackDistanceCounters,
    StackDistanceProfiler,
    distance_slots,
)
from repro.caches.vectorized import replay_hierarchy, replay_private_levels
from repro.config.machine import MachineConfig
from repro.cores.core_model import CoreTimingModel
from repro.cores.cpi_stack import CPIStack
from repro.simulators.llc_trace import LLCAccessTrace
from repro.workloads.trace import MemoryTrace

#: The replay kernels ``SingleCoreSimulator`` can use.
KERNELS = ("vectorized", "reference")


@dataclass(frozen=True)
class IntervalMeasurement:
    """Measurements for one profiling interval (the paper uses 20M instructions)."""

    index: int
    instructions: int
    cycles: float
    memory_cycles: float
    llc_accesses: int
    llc_hits: int
    llc_misses: int
    sdc: StackDistanceCounters

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def memory_cpi(self) -> float:
        return self.memory_cycles / self.instructions if self.instructions else 0.0


@dataclass(frozen=True)
class SingleCoreRunResult:
    """Everything one isolated profiling run produces."""

    benchmark: str
    machine_name: str
    interval_instructions: int
    intervals: List[IntervalMeasurement]
    cpi_stack: CPIStack
    llc_trace: LLCAccessTrace

    @property
    def num_instructions(self) -> int:
        return self.cpi_stack.instructions

    @property
    def cycles(self) -> float:
        return self.cpi_stack.total_cycles

    @property
    def cpi(self) -> float:
        """Single-core CPI of the whole run (the paper's CPI_SC)."""
        return self.cpi_stack.cpi

    @property
    def memory_cpi(self) -> float:
        """Memory CPI of the whole run (the paper's CPI_mem)."""
        return self.cpi_stack.memory_cpi

    @property
    def llc_miss_rate(self) -> float:
        accesses = sum(interval.llc_accesses for interval in self.intervals)
        misses = sum(interval.llc_misses for interval in self.intervals)
        return misses / accesses if accesses else 0.0


class SingleCoreSimulator:
    """Trace-driven simulation of one benchmark in isolation.

    Parameters
    ----------
    machine:
        The target machine.  Only one core is used; the LLC is present
        but not shared with anyone.
    interval_instructions:
        Profiling interval length in dynamic instructions (the paper
        uses 20M out of 1B; the default of 4,000 out of 200,000 keeps
        the same 50-interval structure at our trace scale).
    kernel:
        Replay kernel: ``"vectorized"`` (default, batched stack
        distances) or ``"reference"`` (per-access simulation).  The two
        produce bit-identical results; the reference kernel exists as
        ground truth and for non-LRU what-if studies.
    """

    def __init__(
        self,
        machine: MachineConfig,
        interval_instructions: int = 4_000,
        kernel: str = "vectorized",
    ) -> None:
        if interval_instructions <= 0:
            raise ValueError("interval_instructions must be positive")
        self.machine = machine
        self.interval_instructions = interval_instructions
        self.kernel = self._validate_kernel(kernel)

    @staticmethod
    def _validate_kernel(kernel: str) -> str:
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        return kernel

    def run(self, trace: MemoryTrace, kernel: Optional[str] = None) -> SingleCoreRunResult:
        """Simulate ``trace`` in isolation and collect the profile data.

        ``kernel`` overrides the simulator's default replay kernel for
        this run only.
        """
        kernel = self.kernel if kernel is None else self._validate_kernel(kernel)
        if kernel == "vectorized":
            served_level, llc_index, llc_distances = replay_hierarchy(
                trace.access_line, self.machine
            )
        else:
            served_level, llc_index, llc_distances = self._reference_outcomes(trace)
        return self._assemble_result(trace, served_level, llc_index, llc_distances)

    def run_with_perfect_llc(self, trace: MemoryTrace, kernel: Optional[str] = None) -> float:
        """CPI of a run where every LLC access hits (the paper's perfect-LLC run).

        The paper describes two ways of obtaining the memory CPI; the
        two-run method subtracts the perfect-LLC CPI from the real CPI.
        Our accounting method gives the same number directly, but this
        run is kept for cross-validation in the test suite.
        """
        kernel = self.kernel if kernel is None else self._validate_kernel(kernel)
        num_private = len(self.machine.private_levels)
        if kernel == "vectorized":
            # Private-level filtering only: every access that reaches the
            # perfect LLC hits, so its stack distances are never needed.
            served_level, llc_index, _ = replay_private_levels(
                trace.access_line, self.machine
            )
        else:
            served_level, llc_index, _ = self._reference_outcomes(
                trace, collect_llc_distances=False
            )
        core_model = CoreTimingModel(self.machine, trace.spec)
        # With a perfect LLC every access that reaches it is a hit, so
        # the cycle count is a closed-form weighted sum of the level
        # populations (identical for both kernels by construction).
        cycles = float(trace.base_cycle_gap.sum()) + trace.tail_base_cycles
        for level_index in range(num_private):
            penalty = core_model.private_hit_penalty(level_index)
            if penalty:
                cycles += float(np.count_nonzero(served_level == level_index)) * penalty
        cycles += float(len(llc_index)) * core_model.llc_hit_penalty
        return cycles / trace.num_instructions

    # ------------------------------------------------------------------
    # Reference kernel: per-access stateful cache simulation
    # ------------------------------------------------------------------

    def _reference_outcomes(
        self, trace: MemoryTrace, collect_llc_distances: bool = True
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Walk every access through stateful cache objects, one at a time.

        Produces the same outcome arrays as
        :func:`repro.caches.vectorized.replay_hierarchy`: the level that
        served each access, the filtered LLC stream and the per-set LLC
        stack distance of each filtered access.  The perfect-LLC run
        never consumes the distances and skips their collection.
        """
        machine = self.machine
        hierarchy = CacheHierarchy(machine, include_llc=True)
        sdc_profiler = (
            StackDistanceProfiler(
                num_sets=machine.llc.num_sets, associativity=machine.llc.associativity
            )
            if collect_llc_distances
            else None
        )
        num_private = len(machine.private_levels)
        access_line = trace.access_line
        served_level = np.empty(trace.num_accesses, dtype=np.int64)
        llc_index: List[int] = []
        llc_distances: List[int] = []
        for i in range(trace.num_accesses):
            line = int(access_line[i])
            outcome = hierarchy.access(line)
            if not outcome.reached_llc:
                served_level[i] = outcome.level_index
                continue
            llc_index.append(i)
            if sdc_profiler is not None:
                llc_distances.append(sdc_profiler.access(line))
            served_level[i] = num_private if outcome.llc_hit else num_private + 1
        return (
            served_level,
            np.asarray(llc_index, dtype=np.int64),
            np.asarray(llc_distances, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Shared assembly: outcomes -> SingleCoreRunResult
    # ------------------------------------------------------------------

    def _assemble_result(
        self,
        trace: MemoryTrace,
        served_level: np.ndarray,
        llc_index: np.ndarray,
        llc_distances: np.ndarray,
    ) -> SingleCoreRunResult:
        """Turn per-access outcomes into the run result.

        All cycle accounting happens here, as weighted sums over the
        outcome arrays; both kernels route through this method, which is
        what makes their results bit-identical.
        """
        machine = self.machine
        core_model = CoreTimingModel(machine, trace.spec)
        num_private = len(machine.private_levels)
        associativity = machine.llc.associativity
        penalties = [core_model.private_hit_penalty(level) for level in range(num_private)]

        # Leading-zero cumulative sums: sum over accesses [a, b) is c[b] - c[a].
        # Full per-access cumsums are only needed where windows are cut at
        # arbitrary positions (the LLC gap windows): base cycles, plus the
        # populations of private levels with a non-zero exposed penalty.
        cum_base = np.concatenate(([0.0], np.cumsum(trace.base_cycle_gap)))
        cum_level = {
            level: np.concatenate(([0], np.cumsum(served_level == level)))
            for level in range(num_private)
            if penalties[level]
        }

        # Filtered LLC stream: upstream cycles between consecutive LLC
        # accesses are the base cycles of the window ending at (and
        # including) each LLC access, plus the exposed private-hit
        # penalties inside the window.
        window_start = np.concatenate(([0], llc_index[:-1] + 1))
        window_stop = llc_index + 1
        gaps = cum_base[window_stop] - cum_base[window_start]
        for level, cum in cum_level.items():
            gaps = gaps + (cum[window_stop] - cum[window_start]) * penalties[level]

        num_accesses = trace.num_accesses
        tail_start = int(llc_index[-1]) + 1 if len(llc_index) else 0
        tail_cycles = cum_base[num_accesses] - cum_base[tail_start]
        for level, cum in cum_level.items():
            tail_cycles += float(cum[num_accesses] - cum[tail_start]) * penalties[level]
        tail_cycles += trace.tail_base_cycles

        # Per-interval outcome populations and SDC counters, as fused
        # histograms over (interval, outcome) pairs.
        slices = trace.interval_slices(self.interval_instructions)
        num_intervals = len(slices)
        starts = np.fromiter((start for start, _ in slices), dtype=np.int64, count=num_intervals)
        stops = np.fromiter((stop for _, stop in slices), dtype=np.int64, count=num_intervals)
        interval_id = np.repeat(np.arange(num_intervals, dtype=np.int64), stops - starts)
        outcomes = num_private + 2
        outcome_hist = np.bincount(
            interval_id * outcomes + served_level, minlength=num_intervals * outcomes
        ).reshape(num_intervals, outcomes)
        # SDC counters of each interval's slice of the LLC stream (the
        # per-set stacks persist across interval boundaries).
        slots = distance_slots(llc_distances, associativity)
        sdc_hist = np.bincount(
            interval_id[llc_index] * (associativity + 1) + slots,
            minlength=num_intervals * (associativity + 1),
        ).reshape(num_intervals, associativity + 1).astype(np.float64)

        overall = CPIStack()
        intervals: List[IntervalMeasurement] = []
        previous_boundary_insn = 0
        for interval_index in range(num_intervals):
            interval_stack = CPIStack()
            base_cycles = float(cum_base[stops[interval_index]] - cum_base[starts[interval_index]])
            if interval_index == num_intervals - 1:
                # Cycles after the last memory access belong to the last interval.
                base_cycles += trace.tail_base_cycles
            interval_stack.add_base(base_cycles)
            for level in range(num_private):
                if penalties[level]:
                    count = int(outcome_hist[interval_index, level])
                    interval_stack.add_private_cache(count * penalties[level])
            llc_hits = int(outcome_hist[interval_index, num_private])
            llc_misses = int(outcome_hist[interval_index, num_private + 1])
            interval_stack.add_llc(llc_hits * core_model.llc_hit_penalty)
            interval_stack.add_memory(llc_misses * core_model.memory_penalty)

            boundary_insn = min(
                (interval_index + 1) * self.interval_instructions, trace.num_instructions
            )
            interval_instructions = boundary_insn - previous_boundary_insn
            previous_boundary_insn = boundary_insn
            interval_stack.add_instructions(interval_instructions)

            intervals.append(
                IntervalMeasurement(
                    index=interval_index,
                    instructions=interval_instructions,
                    cycles=interval_stack.total_cycles,
                    memory_cycles=interval_stack.memory,
                    llc_accesses=llc_hits + llc_misses,
                    llc_hits=llc_hits,
                    llc_misses=llc_misses,
                    sdc=StackDistanceCounters(
                        associativity=associativity, counts=sdc_hist[interval_index]
                    ),
                )
            )
            overall = overall.merged_with(interval_stack)

        llc_trace = LLCAccessTrace(
            spec=trace.spec,
            num_instructions=trace.num_instructions,
            line=np.asarray(trace.access_line[llc_index], dtype=np.int64),
            insn=np.asarray(trace.access_insn[llc_index], dtype=np.int64),
            upstream_cycle_gap=np.asarray(gaps, dtype=np.float64),
            tail_cycles=float(tail_cycles),
            isolated_cycles=overall.total_cycles,
        )

        return SingleCoreRunResult(
            benchmark=trace.name,
            machine_name=machine.name,
            interval_instructions=self.interval_instructions,
            intervals=intervals,
            cpi_stack=overall,
            llc_trace=llc_trace,
        )
