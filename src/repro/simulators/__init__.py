"""Detailed trace-driven simulators.

This package is the stand-in for CMP$im, the detailed reference
simulator of the paper (see DESIGN.md, "Substitutions"):

* :class:`SingleCoreSimulator` runs one benchmark in isolation through
  the full cache hierarchy; it produces the per-interval measurements
  that make up the single-core profile (CPI, memory CPI,
  stack-distance counters) and the filtered LLC access trace used by
  the multi-core simulator.
* :class:`MultiCoreSimulator` replays several programs' LLC access
  traces against one *shared* last-level cache, interleaving them in
  per-core-cycle order and restarting finished programs so contention
  persists until the slowest program completes (the FAME methodology).
  Its measured per-program multi-core CPIs are the reference that MPPM
  predictions are validated against.
"""

from repro.simulators.llc_trace import LLCAccessTrace
from repro.simulators.single_core import (
    KERNELS,
    SingleCoreRunResult,
    SingleCoreSimulator,
)
from repro.simulators.multi_core import (
    MULTI_CORE_KERNELS,
    MultiCoreRunResult,
    MultiCoreSimulator,
    ProgramRunStats,
)

__all__ = [
    "KERNELS",
    "LLCAccessTrace",
    "MULTI_CORE_KERNELS",
    "SingleCoreRunResult",
    "SingleCoreSimulator",
    "MultiCoreRunResult",
    "MultiCoreSimulator",
    "ProgramRunStats",
]
