"""The filtered last-level-cache access trace of one program.

The single-core simulator filters a benchmark's memory accesses through
the private L1/L2; only the accesses that miss in all private levels
reach the shared LLC.  The multi-core reference simulator replays these
filtered streams — one per co-running program — against a single shared
LLC, so it needs, per LLC access, the line address and the number of
core cycles the program spends *upstream* (computing, hitting in
private caches) between consecutive LLC accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.benchmark import BenchmarkSpec


class LLCTraceError(ValueError):
    """Raised for inconsistent LLC access traces."""


@dataclass(frozen=True)
class LLCAccessTrace:
    """Per-program input to the shared-LLC multi-core simulation.

    Attributes
    ----------
    spec:
        The benchmark specification (provides the name and MLP factor).
    num_instructions:
        Dynamic instruction count of the underlying trace.
    line:
        Cache-line address of each LLC access, in program order.
    insn:
        Dynamic instruction index at which each LLC access occurs.
    upstream_cycle_gap:
        Core cycles spent since the previous LLC access (base CPI plus
        exposed private-cache hit penalties); the shared-LLC penalty of
        the access itself is *not* included — the multi-core simulator
        adds it depending on whether the shared LLC hits or misses.
    tail_cycles:
        Core cycles spent after the last LLC access until the end of
        the trace.
    isolated_cycles:
        Total cycles of the isolated (single-core) run of the same
        trace on the same machine; kept so that consumers can compute
        slowdowns without re-deriving the isolated CPI.
    """

    spec: BenchmarkSpec
    num_instructions: int
    line: np.ndarray
    insn: np.ndarray
    upstream_cycle_gap: np.ndarray
    tail_cycles: float
    isolated_cycles: float

    def __post_init__(self) -> None:
        n = len(self.line)
        if len(self.insn) != n or len(self.upstream_cycle_gap) != n:
            raise LLCTraceError("LLC trace arrays must all have the same length")
        if n == 0:
            raise LLCTraceError(
                f"{self.spec.name}: the program never accesses the LLC; the multi-core "
                "simulation would be degenerate"
            )
        if self.num_instructions <= 0:
            raise LLCTraceError("num_instructions must be positive")
        if self.tail_cycles < 0:
            # Zero is legal: a trace may end right on its last LLC access.
            raise LLCTraceError(
                f"tail_cycles must be non-negative, got {self.tail_cycles}"
            )
        if self.isolated_cycles <= 0:
            raise LLCTraceError(
                f"isolated_cycles must be positive, got {self.isolated_cycles}"
            )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_llc_accesses(self) -> int:
        return len(self.line)

    @property
    def llc_accesses_per_kilo_instruction(self) -> float:
        return 1000.0 * self.num_llc_accesses / self.num_instructions

    @property
    def isolated_cpi(self) -> float:
        """Single-core CPI of the program on the profiled machine."""
        return self.isolated_cycles / self.num_instructions

    @property
    def total_upstream_cycles(self) -> float:
        """Cycles the program spends without touching the LLC, per trace pass."""
        return float(self.upstream_cycle_gap.sum()) + self.tail_cycles

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_llc_accesses} LLC accesses "
            f"({self.llc_accesses_per_kilo_instruction:.1f} per kilo-instruction), "
            f"isolated CPI {self.isolated_cpi:.3f}"
        )
