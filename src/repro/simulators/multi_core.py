"""Multi-core detailed simulation with a shared last-level cache.

This is the reproduction's stand-in for detailed CMP$im simulation of a
multi-program workload: every core replays its program's filtered LLC
access trace; the accesses of all cores interleave in global time order
against a single shared LLC (LRU, as in the paper); a hit costs the
LLC latency, a miss the memory latency (both MLP-discounted per
program, consistently with the single-core runs).

The methodology follows the paper's references to Tuck & Tullsen and
Vera et al. (FAME): a program that finishes its trace before the
slowest one restarts from the beginning so that contention pressure is
maintained, and each program's multi-core CPI is measured over its
*first* complete pass.

Three kernels produce the interleaved walk:

* ``"chunked"`` (the default) advances all cores in numpy chunks: each
  core's next-K access times are estimated under its expected CPI (its
  measured hit rate so far, plus the exact penalties of any accesses
  rolled back from the previous round), the K-way merge of those
  estimates proposes a global order, the
  proposed order is replayed against a batched per-set LRU
  (:func:`repro.caches.vectorized.stack_distances`, seeded with the
  LLC's live recency state), and the exact ready times implied by the
  replayed outcomes are re-sorted to detect order violations — only
  the provably correct prefix commits, the rest rolls back and the
  next round re-speculates from the exact times.  Bit-identical to the
  reference by construction (see :meth:`MultiCoreSimulator._run_chunked`).
* ``"heap"`` keeps the per-core ready times in a binary heap — the
  per-access reference loop, kept as ground truth.
* ``"scan"`` is the straightforward O(num_cores) linear minimum scan,
  retained for the ready-queue benchmark guard.

All three break ready-time ties by core index and share one result
assembly, so they are bit-identical — asserted by the equivalence
matrix in the test suite and guarded by
``benchmarks/bench_multicore_interleave.py``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.caches.set_associative import SetAssociativeCache
from repro.caches.vectorized import stack_distances
from repro.config.machine import MachineConfig
from repro.cores.core_model import CoreTimingModel
from repro.simulators.llc_trace import LLCAccessTrace

#: The interleaving kernels ``MultiCoreSimulator`` can use.  ``heap``
#: and ``scan`` are the per-access reference loops (binary heap vs
#: linear minimum scan over the ready times); ``chunked`` is the
#: vectorized merge-and-rollback walk.  All three are bit-identical.
MULTI_CORE_KERNELS = ("chunked", "heap", "scan")

#: Chunked-kernel window sizing: accesses speculated per core per round.
#: The window adapts between the bounds — doubling while rounds commit
#: fully, halving when speculation rolls most of a round back.
_MIN_CHUNK = 64
_INITIAL_CHUNK = 1_024
_MAX_CHUNK = 4_096
#: How many times a round refines its speculative order (the first
#: attempt orders by estimated ready times, later attempts re-sort by
#: the exact ready times of the previous attempt's outcomes) before
#: committing the longest validated prefix.
_ORDER_ATTEMPTS = 2


class MultiCoreSimulationError(ValueError):
    """Raised when a multi-core simulation is set up inconsistently."""


@dataclass(frozen=True)
class ProgramRunStats:
    """Per-program outcome of a multi-core simulation."""

    name: str
    core: int
    num_instructions: int
    cycles: float
    isolated_cycles: float
    llc_accesses_first_pass: int
    llc_hits_first_pass: int
    llc_misses_first_pass: int
    passes_completed: int

    @property
    def cpi(self) -> float:
        """Multi-core CPI over the program's first complete trace pass."""
        return self.cycles / self.num_instructions

    @property
    def isolated_cpi(self) -> float:
        return self.isolated_cycles / self.num_instructions

    @property
    def slowdown(self) -> float:
        """Per-program slowdown relative to isolated execution (the paper's R_p)."""
        return self.cycles / self.isolated_cycles

    @property
    def llc_miss_rate_first_pass(self) -> float:
        if not self.llc_accesses_first_pass:
            return 0.0
        return self.llc_misses_first_pass / self.llc_accesses_first_pass


@dataclass(frozen=True)
class MultiCoreRunResult:
    """Outcome of simulating one multi-program workload mix."""

    machine_name: str
    num_cores: int
    programs: List[ProgramRunStats]
    total_llc_accesses: int
    total_llc_misses: int

    def __post_init__(self) -> None:
        # Guard both fresh constructions and deserialised payloads: a
        # result whose program list disagrees with its core count would
        # silently produce nonsense STP/ANTT (both average over the
        # program list).
        if self.num_cores <= 0:
            raise MultiCoreSimulationError(
                f"num_cores must be positive, got {self.num_cores}"
            )
        if len(self.programs) != self.num_cores:
            raise MultiCoreSimulationError(
                f"run result claims {self.num_cores} cores but carries "
                f"{len(self.programs)} programs"
            )
        cores = sorted(stats.core for stats in self.programs)
        if cores != list(range(self.num_cores)):
            raise MultiCoreSimulationError(
                f"program core indices must be exactly 0..{self.num_cores - 1}, "
                f"got {cores}"
            )

    def program(self, name: str, core: Optional[int] = None) -> ProgramRunStats:
        """Stats of the program with the given name (and core, if given).

        A bare name is ambiguous in mixes that run several copies of
        one benchmark; pass ``core=`` to pick a specific copy.  An
        ambiguous name-only lookup raises instead of silently returning
        the first copy.
        """
        matches = [stats for stats in self.programs if stats.name == name]
        if core is not None:
            for stats in matches:
                if stats.core == core:
                    return stats
            raise KeyError(f"no program named {name!r} on core {core} in this run")
        if not matches:
            raise KeyError(f"no program named {name!r} in this run")
        if len(matches) > 1:
            raise KeyError(
                f"{len(matches)} programs named {name!r} in this run (cores "
                f"{[stats.core for stats in matches]}); pass core= to disambiguate"
            )
        return matches[0]

    @property
    def per_program_cpi(self) -> Dict[int, float]:
        """Multi-core CPI keyed by core index."""
        return {stats.core: stats.cpi for stats in self.programs}

    @property
    def slowdowns(self) -> List[float]:
        return [stats.slowdown for stats in self.programs]

    @property
    def system_throughput(self) -> float:
        """STP (weighted speedup): sum over programs of CPI_SC / CPI_MC."""
        return sum(stats.isolated_cpi / stats.cpi for stats in self.programs)

    @property
    def average_normalized_turnaround_time(self) -> float:
        """ANTT: average over programs of CPI_MC / CPI_SC."""
        return sum(stats.cpi / stats.isolated_cpi for stats in self.programs) / len(self.programs)

    # ------------------------------------------------------------------
    # Serialisation (for the engine's persistent result cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-data representation suitable for JSON."""
        return {
            "machine_name": self.machine_name,
            "num_cores": self.num_cores,
            "total_llc_accesses": self.total_llc_accesses,
            "total_llc_misses": self.total_llc_misses,
            "programs": [
                {
                    "name": stats.name,
                    "core": stats.core,
                    "num_instructions": stats.num_instructions,
                    "cycles": stats.cycles,
                    "isolated_cycles": stats.isolated_cycles,
                    "llc_accesses_first_pass": stats.llc_accesses_first_pass,
                    "llc_hits_first_pass": stats.llc_hits_first_pass,
                    "llc_misses_first_pass": stats.llc_misses_first_pass,
                    "passes_completed": stats.passes_completed,
                }
                for stats in self.programs
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MultiCoreRunResult":
        """Inverse of :meth:`to_dict`.

        Inconsistent payloads — a program list that disagrees with the
        core count, or out-of-range core indices — are rejected here
        (via ``__post_init__``) rather than round-tripped into results
        whose STP/ANTT silently average over the wrong program count.
        """
        programs = [
            ProgramRunStats(
                name=entry["name"],
                core=int(entry["core"]),
                num_instructions=int(entry["num_instructions"]),
                cycles=float(entry["cycles"]),
                isolated_cycles=float(entry["isolated_cycles"]),
                llc_accesses_first_pass=int(entry["llc_accesses_first_pass"]),
                llc_hits_first_pass=int(entry["llc_hits_first_pass"]),
                llc_misses_first_pass=int(entry["llc_misses_first_pass"]),
                passes_completed=int(entry["passes_completed"]),
            )
            for entry in data["programs"]
        ]
        return cls(
            machine_name=data["machine_name"],
            num_cores=int(data["num_cores"]),
            programs=programs,
            total_llc_accesses=int(data["total_llc_accesses"]),
            total_llc_misses=int(data["total_llc_misses"]),
        )


#: Per-core offset added to line addresses so that two copies of the same
#: benchmark running on different cores do not share data in the LLC.  The
#: paper's multi-program workloads are independent processes with distinct
#: physical addresses, so constructive sharing between copies must not
#: happen.  The offset is far smaller than the per-benchmark address-space
#: stride used by the trace generator, so different benchmarks stay disjoint,
#: and it is not a multiple of any power-of-two set count, so copies of the
#: same benchmark land in (slightly) different sets — as distinct physical
#: page mappings would.
_CORE_ADDRESS_OFFSET = (1 << 30) + 12_347


def _resident_stacks(stream: np.ndarray, num_sets: int, associativity: int) -> np.ndarray:
    """Recency state of a cold-started LRU cache after replaying ``stream``.

    Returns the resident lines, grouped by set, each set's lines in
    LRU→MRU order — exactly the warm-up stream that, prepended to the
    next chunk, makes :func:`stack_distances` see the chunk with the
    correct live stack depths.  Evicted lines (per-set recency rank
    beyond the associativity) are dropped: their next access misses
    either way, and re-inserting them perturbs nobody above them.
    """
    n = len(stream)
    if n == 0:
        return stream
    position = np.arange(n, dtype=np.int64)
    by_line = np.lexsort((position, stream))
    ordered = stream[by_line]
    last = np.empty(n, dtype=bool)
    last[:-1] = ordered[1:] != ordered[:-1]
    last[-1] = True
    resident = ordered[last]
    last_position = by_line[last]
    sets = resident % num_sets
    by_set = np.lexsort((last_position, sets))
    sets_sorted = sets[by_set]
    m = len(sets_sorted)
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    boundary[1:] = sets_sorted[1:] != sets_sorted[:-1]
    group = np.cumsum(boundary) - 1
    starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(starts, m))
    rank = np.arange(m) - starts[group]
    keep = rank >= sizes[group] - associativity
    return resident[by_set][keep]


class MultiCoreSimulator:
    """Shared-LLC simulation of a multi-program workload mix.

    ``kernel`` selects the interleaving walk: ``"chunked"`` (the
    default) vectorizes it in speculative merge-and-rollback rounds;
    ``"heap"`` and ``"scan"`` are the per-access reference loops (see
    the module docstring).  All kernels are bit-identical.  The legacy
    ``ready_queue`` parameter still selects between the two reference
    loops.  The chunked kernel requires the LRU replacement policy (its
    batched replay rests on the LRU stack property); with another
    policy the default silently stays on the reference loop, and asking
    for ``"chunked"`` explicitly is an error.
    """

    def __init__(
        self,
        machine: MachineConfig,
        llc_policy: str = "lru",
        kernel: Optional[str] = None,
        ready_queue: Optional[str] = None,
    ) -> None:
        if ready_queue is not None:
            if ready_queue not in ("heap", "scan"):
                raise MultiCoreSimulationError("ready_queue must be 'heap' or 'scan'")
            if kernel is not None and kernel != ready_queue:
                raise MultiCoreSimulationError(
                    f"kernel {kernel!r} contradicts ready_queue {ready_queue!r}; "
                    "pass one or the other"
                )
            kernel = ready_queue
        lru = isinstance(llc_policy, str) and llc_policy.lower() == "lru"
        if kernel is None:
            kernel = "chunked" if lru else "heap"
        if kernel not in MULTI_CORE_KERNELS:
            raise MultiCoreSimulationError(
                f"kernel must be one of {MULTI_CORE_KERNELS}, got {kernel!r}"
            )
        if kernel == "chunked" and not lru:
            raise MultiCoreSimulationError(
                "the chunked kernel requires the LRU replacement policy; "
                "use kernel='heap' or 'scan' for other policies"
            )
        self.machine = machine
        self.llc_policy = llc_policy
        self.kernel = kernel

    def run(
        self, llc_traces: Sequence[LLCAccessTrace], kernel: Optional[str] = None
    ) -> MultiCoreRunResult:
        """Simulate one workload mix (one LLC trace per core).

        ``kernel`` overrides the simulator's interleaving kernel for
        this run only.
        """
        machine = self.machine
        if len(llc_traces) != machine.num_cores:
            raise MultiCoreSimulationError(
                f"machine has {machine.num_cores} cores but {len(llc_traces)} programs were given"
            )
        if kernel is None:
            kernel = self.kernel
        elif kernel not in MULTI_CORE_KERNELS:
            raise MultiCoreSimulationError(
                f"kernel must be one of {MULTI_CORE_KERNELS}, got {kernel!r}"
            )
        if kernel == "chunked":
            return self._run_chunked(llc_traces)
        return self._run_reference(llc_traces, use_heap=kernel == "heap")

    # ------------------------------------------------------------------
    # Reference kernels: one access at a time
    # ------------------------------------------------------------------

    def _run_reference(
        self, llc_traces: Sequence[LLCAccessTrace], use_heap: bool
    ) -> MultiCoreRunResult:
        machine = self.machine
        shared_llc = SetAssociativeCache(machine.llc, policy=self.llc_policy)
        num_cores = machine.num_cores

        core_models = [CoreTimingModel(machine, trace.spec) for trace in llc_traces]
        hit_penalty = [model.llc_hit_penalty for model in core_models]
        miss_penalty = [model.memory_penalty for model in core_models]

        # Per-core mutable state.
        index = [0] * num_cores
        cycle = [0.0] * num_cores
        first_pass_cycles: List[Optional[float]] = [None] * num_cores
        passes = [0] * num_cores
        accesses_first = [0] * num_cores
        hits_first = [0] * num_cores
        misses_first = [0] * num_cores
        total_accesses = 0
        total_misses = 0

        gaps = [trace.upstream_cycle_gap for trace in llc_traces]
        lines = [trace.line for trace in llc_traces]
        lengths = [trace.num_llc_accesses for trace in llc_traces]
        tails = [trace.tail_cycles for trace in llc_traces]

        unfinished = num_cores
        if use_heap:
            # (ready time, core): the tuple ordering reproduces the
            # scan's tie-break by lowest core index.
            ready_heap = [
                (cycle[core] + gaps[core][0], core) for core in range(num_cores)
            ]
            heapq.heapify(ready_heap)

        # Interleave LLC accesses in global time order: repeatedly pick the
        # core whose next LLC access is ready earliest.
        while unfinished:
            if use_heap:
                best_ready, core = heapq.heappop(ready_heap)
            else:
                core = -1
                best_ready = math.inf
                for candidate in range(num_cores):
                    ready = cycle[candidate] + gaps[candidate][index[candidate]]
                    if ready < best_ready:
                        best_ready = ready
                        core = candidate

            in_first_pass = first_pass_cycles[core] is None
            line = int(lines[core][index[core]]) + core * _CORE_ADDRESS_OFFSET
            hit = shared_llc.access(line).hit
            total_accesses += 1
            if in_first_pass:
                accesses_first[core] += 1
            if hit:
                penalty = hit_penalty[core]
                if in_first_pass:
                    hits_first[core] += 1
            else:
                penalty = miss_penalty[core]
                total_misses += 1
                if in_first_pass:
                    misses_first[core] += 1
            cycle[core] = best_ready + penalty

            index[core] += 1
            if index[core] >= lengths[core]:
                # End of the trace: account for the post-LLC tail, then
                # restart the program (FAME re-iteration).
                cycle[core] += tails[core]
                passes[core] += 1
                index[core] = 0
                if in_first_pass:
                    first_pass_cycles[core] = cycle[core]
                    unfinished -= 1
            if use_heap and unfinished:
                heapq.heappush(ready_heap, (cycle[core] + gaps[core][index[core]], core))

        return self._assemble(
            llc_traces,
            first_pass_cycles,
            passes,
            accesses_first,
            hits_first,
            misses_first,
            total_accesses,
            total_misses,
        )

    # ------------------------------------------------------------------
    # Chunked kernel: speculative vectorized merge with rollback
    # ------------------------------------------------------------------

    def _run_chunked(self, llc_traces: Sequence[LLCAccessTrace]) -> MultiCoreRunResult:
        """Advance all cores in numpy chunks; commit only validated prefixes.

        Each round takes a window of up to K next accesses per core
        (never crossing the core's trace end, so FAME wraparound only
        happens at window boundaries) and

        1. proposes a global order by merging per-core ready-time
           estimates — first under each core's expected penalty
           (measured hit rate, with the exact penalties of accesses
           rolled back from the previous round carried in front), then,
           if the proposal is refuted, under the exact times computed
           from the previous attempt's outcomes;
        2. replays the proposed order against the shared LLC in one
           batched per-set stack-distance pass, seeded with the LLC's
           live recency stacks as a warm-up prefix;
        3. recomputes every access's *exact* ready time from those
           outcomes with the reference's own operation order (an
           interleaved ``cumsum`` reproduces ``(ready + penalty) + gap``
           addition for addition), and re-sorts by (ready, core, index).

        Where the re-sorted true order agrees with the proposal, the
        outcomes — which only depend on the preceding access sequence —
        are provably the reference's, so that prefix commits; the first
        disagreement and everything after it rolls back.  Two further
        cuts keep the prefix honest: accesses ordered at or after a
        core's first *out-of-window* ready time cannot commit (that
        core's next access might interleave first), and the round stops
        exactly where the last first-pass wraparound would stop the
        reference loop.  Progress is unconditional: estimates are exact
        for each core's first window access (no penalty enters before
        it) and nondecreasing within a core, so every proposal's
        leading access is the true earliest (ready, core) head — the
        prefix never validates empty.
        """
        machine = self.machine
        num_cores = machine.num_cores
        num_sets = machine.llc.num_sets
        associativity = machine.llc.associativity

        core_models = [CoreTimingModel(machine, trace.spec) for trace in llc_traces]
        hit_penalty = np.array([model.llc_hit_penalty for model in core_models])
        miss_penalty = np.array([model.memory_penalty for model in core_models])
        # Cold-start expected penalty, used only until a core has a
        # measured hit rate; min() rather than the hit penalty so the
        # seed stays sane even for exotic machines whose hit penalty
        # exceeds the miss penalty.
        optimistic_penalty = np.minimum(hit_penalty, miss_penalty)

        gaps = [np.asarray(trace.upstream_cycle_gap, dtype=np.float64) for trace in llc_traces]
        # Prefix sums of the gaps, computed once per core: window
        # estimates re-derive their local cumsum as a difference instead
        # of re-summing the same slice on every rollback round.
        gap_cum = [np.cumsum(g) for g in gaps]
        lines = [
            np.asarray(trace.line, dtype=np.int64) + core * _CORE_ADDRESS_OFFSET
            for core, trace in enumerate(llc_traces)
        ]
        lengths = [trace.num_llc_accesses for trace in llc_traces]
        tails = [trace.tail_cycles for trace in llc_traces]

        index = [0] * num_cores
        cycle = [0.0] * num_cores
        first_pass_cycles: List[Optional[float]] = [None] * num_cores
        passes = [0] * num_cores
        accesses_first = [0] * num_cores
        hits_first = [0] * num_cores
        misses_first = [0] * num_cores
        total_accesses = 0
        total_misses = 0
        unfinished = num_cores

        # Running all-pass per-core totals and the rolled-back tail of
        # the previous round's speculative penalties: only used to
        # estimate ready times when sizing and ordering the next window
        # (never for the committed results, which come from the exact
        # replay).
        accesses_all = [0] * num_cores
        hits_all = [0] * num_cores
        carried = [np.empty(0, dtype=np.float64) for _ in range(num_cores)]

        #: The shared LLC's recency stacks, as a warm-up access stream.
        warm = np.empty(0, dtype=np.int64)
        chunk = _INITIAL_CHUNK

        while unfinished:
            windows = [min(chunk, lengths[core] - index[core]) for core in range(num_cores)]
            # Estimated ready time of each window access under the core's
            # *expected* penalty (its measured hit rate so far).  Two
            # uses: trimming the windows to a common time horizon, and
            # proposing the round's global order.  Estimates are exact
            # for each core's first access (no penalty enters before it)
            # and nondecreasing within a core, which is all the progress
            # guarantee below needs.
            estimates = []
            for core in range(num_cores):
                w = windows[core]
                start = index[core]
                window_cum = gap_cum[core][start : start + w]
                if start:
                    window_cum = window_cum - gap_cum[core][start - 1]
                if accesses_all[core]:
                    hit_rate = hits_all[core] / accesses_all[core]
                    expected = hit_rate * hit_penalty[core] + (1.0 - hit_rate) * miss_penalty[core]
                else:
                    expected = optimistic_penalty[core]
                expected_pen = np.full(w, expected)
                tail = carried[core][:w]
                expected_pen[: len(tail)] = tail
                # ready_est[j] = cycle + gaps[0..j] + penalties[0..j-1]:
                # exact for j = 0, whatever the penalty estimates.
                estimates.append(
                    cycle[core]
                    + window_cum
                    + np.concatenate(([0.0], np.cumsum(expected_pen[:-1])))
                )
            if num_cores > 1:
                # Equalize the *time* the windows cover: programs differ
                # wildly in cycles-per-LLC-access, and any access ordered
                # after the earliest-exhausted core's horizon rolls back
                # anyway.  Trim every window to the smallest estimated
                # end time among the chunk-limited cores (pass-limited
                # windows end in a wraparound and continue next round, so
                # they do not bound the horizon).
                limited = [core for core in range(num_cores) if windows[core] == chunk]
                if limited:
                    span = min(float(estimates[core][-1]) for core in limited)
                    windows = [
                        max(
                            1,
                            int(np.searchsorted(estimates[core], span, side="right")),
                        )
                        for core in range(num_cores)
                    ]
                    estimates = [
                        estimates[core][: windows[core]] for core in range(num_cores)
                    ]
            wraps = [index[core] + windows[core] == lengths[core] for core in range(num_cores)]
            offsets = np.concatenate(([0], np.cumsum(windows)))
            n = int(offsets[-1])
            merged_lines = np.concatenate(
                [lines[core][index[core] : index[core] + windows[core]] for core in range(num_cores)]
            )
            window_gaps = [
                gaps[core][index[core] : index[core] + windows[core]] for core in range(num_cores)
            ]
            core_id = np.repeat(np.arange(num_cores), windows)
            jpos = np.concatenate([np.arange(w, dtype=np.int64) for w in windows])

            def exact_times(penalties):
                """Per-access ready times under given per-access penalties.

                Reproduces the reference's float operation order exactly:
                the interleaved per-core array [cycle, gap0, pen0, gap1,
                pen1, ..., tail?] makes ``cumsum``'s left fold perform the
                same sequence of binary additions as the sequential
                ``ready = cycle + gap; cycle = ready + penalty`` loop.
                """
                ready = np.empty(n, dtype=np.float64)
                cumsums = []
                for core in range(num_cores):
                    w = windows[core]
                    arr = np.empty(1 + 2 * w + (1 if wraps[core] else 0))
                    arr[0] = cycle[core]
                    arr[1 : 1 + 2 * w : 2] = window_gaps[core]
                    arr[2 : 2 + 2 * w : 2] = penalties[offsets[core] : offsets[core] + w]
                    if wraps[core]:
                        arr[-1] = tails[core]
                    cs = np.cumsum(arr)
                    ready[offsets[core] : offsets[core] + w] = cs[1 : 1 + 2 * w : 2]
                    cumsums.append(cs)
                return ready, cumsums

            # Propose a global order from the estimates; refine with the
            # exact times of the replayed outcomes until the validated
            # prefix stops growing.  The validated prefix IS the true
            # interleaving (see below), so refinements freeze it and
            # re-sort/replay only the suffix — against an intra-round
            # warm state advanced past the frozen part.  Progress is
            # unconditional: each core's first window access has an
            # exact estimate, and the per-core estimate/ready sequences
            # are both nondecreasing, so every proposal's leading access
            # is the true earliest (ready, core) head — the prefix
            # never validates empty.
            order = np.lexsort((jpos, core_id, np.concatenate(estimates)))
            # Round-level buffers, updated only past the frozen prefix
            # on refinement attempts (prefix entries cannot change: the
            # stream prefix is fixed, and a prefix access's ready time
            # only depends on its own core's prefix penalties).
            hit_in_order = np.empty(n, dtype=bool)
            core_in_order = np.empty(n, dtype=np.int64)
            ready_in_order = np.empty(n, dtype=np.float64)
            penalties = np.empty(n, dtype=np.float64)
            positions = np.arange(n, dtype=np.int64)
            warm_attempt = warm
            frozen = 0
            best = None
            for attempt in range(_ORDER_ATTEMPTS):
                suffix = order[frozen:]
                distances = stack_distances(
                    np.concatenate((warm_attempt, merged_lines[suffix])),
                    num_sets,
                )[len(warm_attempt) :]
                hit_in_order[frozen:] = (distances > 0) & (distances <= associativity)
                core_in_order[frozen:] = core_id[suffix]
                penalties[suffix] = np.where(
                    hit_in_order[frozen:],
                    hit_penalty[core_in_order[frozen:]],
                    miss_penalty[core_in_order[frozen:]],
                )
                ready, cumsums = exact_times(penalties)
                ready_in_order[frozen:] = ready[suffix]
                resort = suffix[
                    np.lexsort((jpos[suffix], core_id[suffix], ready[suffix]))
                ]
                differs = suffix != resort
                agreed = n if not differs.any() else frozen + int(differs.argmax())

                # Horizon cut: once all of a core's window accesses have
                # been consumed, its true head lies beyond the window at
                # exactly the ready time the reference would push next
                # (known, because the whole window is inside the
                # validated prefix); later accesses may only commit if
                # they still precede that head in (ready, core) order.
                commit = agreed
                last_position = np.empty(num_cores, dtype=np.int64)
                last_position[core_in_order] = positions  # last write wins
                for core in range(num_cores):
                    last = last_position[core]
                    if last >= commit:
                        continue
                    after = cumsums[core][-1]
                    next_gap = (
                        gaps[core][0] if wraps[core] else gaps[core][index[core] + windows[core]]
                    )
                    horizon = after + next_gap
                    region_ready = ready_in_order[last + 1 : commit]
                    region_core = core_in_order[last + 1 : commit]
                    violating = np.flatnonzero(
                        (region_ready > horizon)
                        | ((region_ready == horizon) & (region_core > core))
                    )
                    if len(violating):
                        commit = last + 1 + int(violating[0])

                # Termination cut: the reference stops the moment the
                # last first-pass core wraps around; accesses ordered
                # after that wraparound are never processed.
                finishing = sorted(
                    last_position[core]
                    for core in range(num_cores)
                    if wraps[core] and first_pass_cycles[core] is None
                )
                remaining = unfinished
                for position in finishing:
                    if position >= commit:
                        break
                    remaining -= 1
                    if remaining == 0:
                        commit = position + 1
                        break

                if best is None or commit > best[0]:
                    # Later attempts never touch positions below their
                    # frozen prefix (>= this commit), so the references
                    # stored here stay valid without copies.
                    best = (commit, order, hit_in_order, core_in_order, cumsums, penalties)
                if commit == n or commit < agreed:
                    # Fully committed, or bound by a cut that another
                    # ordering attempt cannot lift.
                    break
                # Re-speculate the suffix: keep the validated prefix,
                # re-sort the rest by the exact times the previous
                # outcomes imply (usually the fixed point of the round),
                # and advance the intra-round warm state so the next
                # replay starts where the frozen prefix ends.
                if attempt + 1 == _ORDER_ATTEMPTS:
                    break
                new_order = np.concatenate((order[:frozen], resort))
                if agreed > frozen:
                    warm_attempt = _resident_stacks(
                        np.concatenate((warm_attempt, merged_lines[order[frozen:agreed]])),
                        num_sets,
                        associativity,
                    )
                    frozen = agreed
                order = new_order
            commit, order, hit_in_order, core_in_order, cumsums, penalties = best
            commit = int(commit)
            assert commit >= 1

            # Commit the validated prefix: outcomes, counters, exact
            # per-core cycle state, and the LLC's new recency stacks.
            committed_core = core_in_order[:commit]
            committed_hit = hit_in_order[:commit]
            total_accesses += commit
            total_misses += commit - int(committed_hit.sum())
            committed_counts = np.bincount(committed_core, minlength=num_cores)
            committed_hits = np.bincount(
                committed_core[committed_hit], minlength=num_cores
            )
            for core in range(num_cores):
                done = int(committed_counts[core])
                accesses_all[core] += done
                hits_all[core] += int(committed_hits[core])
                # The uncommitted tail's speculative penalties seed the
                # next round's proposal (a wrapped core starts fresh).
                carried[core] = penalties[offsets[core] + done : offsets[core] + windows[core]]
                if first_pass_cycles[core] is None:
                    accesses_first[core] += done
                    hits_first[core] += int(committed_hits[core])
                    misses_first[core] += done - int(committed_hits[core])
                if done == 0:
                    continue
                if done == windows[core]:
                    cycle[core] = float(cumsums[core][-1])
                    if wraps[core]:
                        passes[core] += 1
                        index[core] = 0
                        if first_pass_cycles[core] is None:
                            first_pass_cycles[core] = cycle[core]
                            unfinished -= 1
                    else:
                        index[core] += done
                else:
                    cycle[core] = float(cumsums[core][2 * done])
                    index[core] += done
            if unfinished:
                # The final commit never falls below the frozen prefix
                # (the attempt that froze it had already validated a
                # commit that long), so the intra-round warm state can
                # be advanced instead of rebuilding from round start.
                warm = _resident_stacks(
                    np.concatenate((warm_attempt, merged_lines[order[frozen:commit]])),
                    num_sets,
                    associativity,
                )
                # The horizon cut legitimately trims a tail even on good
                # rounds, so grow on mostly-committed rounds and shrink
                # only when speculation wasted most of the work.
                if commit * 4 >= n * 3:
                    chunk = min(chunk * 2, _MAX_CHUNK)
                elif commit * 4 < n:
                    chunk = max(_MIN_CHUNK, chunk // 2)

        return self._assemble(
            llc_traces,
            first_pass_cycles,
            passes,
            accesses_first,
            hits_first,
            misses_first,
            total_accesses,
            total_misses,
        )

    # ------------------------------------------------------------------
    # Shared assembly: per-core state -> MultiCoreRunResult
    # ------------------------------------------------------------------

    def _assemble(
        self,
        llc_traces: Sequence[LLCAccessTrace],
        first_pass_cycles: List[Optional[float]],
        passes: List[int],
        accesses_first: List[int],
        hits_first: List[int],
        misses_first: List[int],
        total_accesses: int,
        total_misses: int,
    ) -> MultiCoreRunResult:
        programs = []
        for core, trace in enumerate(llc_traces):
            cycles = first_pass_cycles[core]
            assert cycles is not None
            programs.append(
                ProgramRunStats(
                    name=trace.name,
                    core=core,
                    num_instructions=trace.num_instructions,
                    cycles=cycles,
                    isolated_cycles=trace.isolated_cycles,
                    llc_accesses_first_pass=accesses_first[core],
                    llc_hits_first_pass=hits_first[core],
                    llc_misses_first_pass=misses_first[core],
                    passes_completed=passes[core],
                )
            )

        return MultiCoreRunResult(
            machine_name=self.machine.name,
            num_cores=self.machine.num_cores,
            programs=programs,
            total_llc_accesses=total_accesses,
            total_llc_misses=total_misses,
        )
