"""Multi-core detailed simulation with a shared last-level cache.

This is the reproduction's stand-in for detailed CMP$im simulation of a
multi-program workload: every core replays its program's filtered LLC
access trace; the accesses of all cores interleave in global time order
against a single shared LLC (LRU, as in the paper); a hit costs the
LLC latency, a miss the memory latency (both MLP-discounted per
program, consistently with the single-core runs).

The methodology follows the paper's references to Tuck & Tullsen and
Vera et al. (FAME): a program that finishes its trace before the
slowest one restarts from the beginning so that contention pressure is
maintained, and each program's multi-core CPI is measured over its
*first* complete pass.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.caches.set_associative import SetAssociativeCache
from repro.config.machine import MachineConfig
from repro.cores.core_model import CoreTimingModel
from repro.simulators.llc_trace import LLCAccessTrace


class MultiCoreSimulationError(ValueError):
    """Raised when a multi-core simulation is set up inconsistently."""


@dataclass(frozen=True)
class ProgramRunStats:
    """Per-program outcome of a multi-core simulation."""

    name: str
    core: int
    num_instructions: int
    cycles: float
    isolated_cycles: float
    llc_accesses_first_pass: int
    llc_hits_first_pass: int
    llc_misses_first_pass: int
    passes_completed: int

    @property
    def cpi(self) -> float:
        """Multi-core CPI over the program's first complete trace pass."""
        return self.cycles / self.num_instructions

    @property
    def isolated_cpi(self) -> float:
        return self.isolated_cycles / self.num_instructions

    @property
    def slowdown(self) -> float:
        """Per-program slowdown relative to isolated execution (the paper's R_p)."""
        return self.cycles / self.isolated_cycles

    @property
    def llc_miss_rate_first_pass(self) -> float:
        if not self.llc_accesses_first_pass:
            return 0.0
        return self.llc_misses_first_pass / self.llc_accesses_first_pass


@dataclass(frozen=True)
class MultiCoreRunResult:
    """Outcome of simulating one multi-program workload mix."""

    machine_name: str
    num_cores: int
    programs: List[ProgramRunStats]
    total_llc_accesses: int
    total_llc_misses: int

    def program(self, name: str) -> ProgramRunStats:
        """Stats of the first program with the given name."""
        for stats in self.programs:
            if stats.name == name:
                return stats
        raise KeyError(f"no program named {name!r} in this run")

    @property
    def per_program_cpi(self) -> Dict[int, float]:
        """Multi-core CPI keyed by core index."""
        return {stats.core: stats.cpi for stats in self.programs}

    @property
    def slowdowns(self) -> List[float]:
        return [stats.slowdown for stats in self.programs]

    @property
    def system_throughput(self) -> float:
        """STP (weighted speedup): sum over programs of CPI_SC / CPI_MC."""
        return sum(stats.isolated_cpi / stats.cpi for stats in self.programs)

    @property
    def average_normalized_turnaround_time(self) -> float:
        """ANTT: average over programs of CPI_MC / CPI_SC."""
        return sum(stats.cpi / stats.isolated_cpi for stats in self.programs) / len(self.programs)

    # ------------------------------------------------------------------
    # Serialisation (for the engine's persistent result cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-data representation suitable for JSON."""
        return {
            "machine_name": self.machine_name,
            "num_cores": self.num_cores,
            "total_llc_accesses": self.total_llc_accesses,
            "total_llc_misses": self.total_llc_misses,
            "programs": [
                {
                    "name": stats.name,
                    "core": stats.core,
                    "num_instructions": stats.num_instructions,
                    "cycles": stats.cycles,
                    "isolated_cycles": stats.isolated_cycles,
                    "llc_accesses_first_pass": stats.llc_accesses_first_pass,
                    "llc_hits_first_pass": stats.llc_hits_first_pass,
                    "llc_misses_first_pass": stats.llc_misses_first_pass,
                    "passes_completed": stats.passes_completed,
                }
                for stats in self.programs
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MultiCoreRunResult":
        """Inverse of :meth:`to_dict`."""
        programs = [
            ProgramRunStats(
                name=entry["name"],
                core=int(entry["core"]),
                num_instructions=int(entry["num_instructions"]),
                cycles=float(entry["cycles"]),
                isolated_cycles=float(entry["isolated_cycles"]),
                llc_accesses_first_pass=int(entry["llc_accesses_first_pass"]),
                llc_hits_first_pass=int(entry["llc_hits_first_pass"]),
                llc_misses_first_pass=int(entry["llc_misses_first_pass"]),
                passes_completed=int(entry["passes_completed"]),
            )
            for entry in data["programs"]
        ]
        return cls(
            machine_name=data["machine_name"],
            num_cores=int(data["num_cores"]),
            programs=programs,
            total_llc_accesses=int(data["total_llc_accesses"]),
            total_llc_misses=int(data["total_llc_misses"]),
        )


#: Per-core offset added to line addresses so that two copies of the same
#: benchmark running on different cores do not share data in the LLC.  The
#: paper's multi-program workloads are independent processes with distinct
#: physical addresses, so constructive sharing between copies must not
#: happen.  The offset is far smaller than the per-benchmark address-space
#: stride used by the trace generator, so different benchmarks stay disjoint,
#: and it is not a multiple of any power-of-two set count, so copies of the
#: same benchmark land in (slightly) different sets — as distinct physical
#: page mappings would.
_CORE_ADDRESS_OFFSET = (1 << 30) + 12_347


class MultiCoreSimulator:
    """Shared-LLC simulation of a multi-program workload mix.

    ``ready_queue`` selects how the next LLC access in global time
    order is found: ``"heap"`` (the default) keeps the per-core ready
    times in a binary heap, which costs O(log num_cores) per access;
    ``"scan"`` is the straightforward O(num_cores) linear minimum scan,
    kept as the reference implementation for equivalence tests and the
    ready-queue benchmark guard.  Both orderings break ties by core
    index, so the two variants are bit-identical.
    """

    def __init__(
        self, machine: MachineConfig, llc_policy: str = "lru", ready_queue: str = "heap"
    ) -> None:
        if ready_queue not in ("heap", "scan"):
            raise MultiCoreSimulationError("ready_queue must be 'heap' or 'scan'")
        self.machine = machine
        self.llc_policy = llc_policy
        self.ready_queue = ready_queue

    def run(self, llc_traces: Sequence[LLCAccessTrace]) -> MultiCoreRunResult:
        """Simulate one workload mix (one LLC trace per core)."""
        machine = self.machine
        if len(llc_traces) != machine.num_cores:
            raise MultiCoreSimulationError(
                f"machine has {machine.num_cores} cores but {len(llc_traces)} programs were given"
            )

        shared_llc = SetAssociativeCache(machine.llc, policy=self.llc_policy)
        num_cores = machine.num_cores

        core_models = [CoreTimingModel(machine, trace.spec) for trace in llc_traces]
        hit_penalty = [model.llc_hit_penalty for model in core_models]
        miss_penalty = [model.memory_penalty for model in core_models]

        # Per-core mutable state.
        index = [0] * num_cores
        cycle = [0.0] * num_cores
        first_pass_cycles: List[Optional[float]] = [None] * num_cores
        passes = [0] * num_cores
        accesses_first = [0] * num_cores
        hits_first = [0] * num_cores
        misses_first = [0] * num_cores
        total_accesses = 0
        total_misses = 0

        gaps = [trace.upstream_cycle_gap for trace in llc_traces]
        lines = [trace.line for trace in llc_traces]
        lengths = [trace.num_llc_accesses for trace in llc_traces]
        tails = [trace.tail_cycles for trace in llc_traces]

        unfinished = num_cores
        use_heap = self.ready_queue == "heap"
        if use_heap:
            # (ready time, core): the tuple ordering reproduces the
            # scan's tie-break by lowest core index.
            ready_heap = [
                (cycle[core] + gaps[core][0], core) for core in range(num_cores)
            ]
            heapq.heapify(ready_heap)

        # Interleave LLC accesses in global time order: repeatedly pick the
        # core whose next LLC access is ready earliest.
        while unfinished:
            if use_heap:
                best_ready, core = heapq.heappop(ready_heap)
            else:
                core = -1
                best_ready = math.inf
                for candidate in range(num_cores):
                    ready = cycle[candidate] + gaps[candidate][index[candidate]]
                    if ready < best_ready:
                        best_ready = ready
                        core = candidate

            in_first_pass = first_pass_cycles[core] is None
            line = int(lines[core][index[core]]) + core * _CORE_ADDRESS_OFFSET
            hit = shared_llc.access(line).hit
            total_accesses += 1
            if in_first_pass:
                accesses_first[core] += 1
            if hit:
                penalty = hit_penalty[core]
                if in_first_pass:
                    hits_first[core] += 1
            else:
                penalty = miss_penalty[core]
                total_misses += 1
                if in_first_pass:
                    misses_first[core] += 1
            cycle[core] = best_ready + penalty

            index[core] += 1
            if index[core] >= lengths[core]:
                # End of the trace: account for the post-LLC tail, then
                # restart the program (FAME re-iteration).
                cycle[core] += tails[core]
                passes[core] += 1
                index[core] = 0
                if in_first_pass:
                    first_pass_cycles[core] = cycle[core]
                    unfinished -= 1
            if use_heap and unfinished:
                heapq.heappush(ready_heap, (cycle[core] + gaps[core][index[core]], core))

        programs = []
        for core, trace in enumerate(llc_traces):
            cycles = first_pass_cycles[core]
            assert cycles is not None
            programs.append(
                ProgramRunStats(
                    name=trace.name,
                    core=core,
                    num_instructions=trace.num_instructions,
                    cycles=cycles,
                    isolated_cycles=trace.isolated_cycles,
                    llc_accesses_first_pass=accesses_first[core],
                    llc_hits_first_pass=hits_first[core],
                    llc_misses_first_pass=misses_first[core],
                    passes_completed=passes[core],
                )
            )

        return MultiCoreRunResult(
            machine_name=machine.name,
            num_cores=num_cores,
            programs=programs,
            total_llc_accesses=total_accesses,
            total_llc_misses=total_misses,
        )
