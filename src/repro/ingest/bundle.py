"""Fitted-workload bundles: the on-disk artefact of ``repro ingest``.

A bundle is one JSON file (``bundle.json`` inside the ``--out``
directory, or any ``.json`` path) holding everything a fit produced:
the machine descriptor, the fit options, a digest of the source
samples, and per core the fitted :class:`BenchmarkSpec` plus its fit
report.  Reloading a bundle reconstructs the exact specs — samples →
fit → JSON → reload is lossless, so predictions from a reloaded bundle
are bit-identical to predictions from the in-memory fit (asserted by
the round-trip tests).

The ``perf:`` workload family accepts either a raw sample file (fit on
first use) or a bundle (no fitting at all), which is how expensive fits
are shipped to machines that never saw the samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.ingest.fit import CoreFit, FitOptions, PhaseFit
from repro.ingest.samples import IngestError, MachineDescriptor
from repro.io import atomic_write_json, read_json_tolerant
from repro.workloads.benchmark import (
    BenchmarkSpec,
    PhaseSpec,
    ReuseProfile,
    WorkloadError,
)

#: Bump on incompatible bundle layout changes.
FORMAT_VERSION = 1

#: Conventional bundle file name inside an ``--out`` directory.
BUNDLE_FILENAME = "bundle.json"


# ---------------------------------------------------------------------------
# BenchmarkSpec <-> dict
# ---------------------------------------------------------------------------


def spec_to_dict(spec: BenchmarkSpec) -> Dict:
    return {
        "name": spec.name,
        "base_cpi": spec.base_cpi,
        "mem_ref_fraction": spec.mem_ref_fraction,
        "reuse": {
            "buckets": [[depth, weight] for depth, weight in spec.reuse.buckets],
            "new_weight": spec.reuse.new_weight,
        },
        "working_set_lines": spec.working_set_lines,
        "mlp": spec.mlp,
        "phases": [
            {
                "fraction": phase.fraction,
                "cpi_multiplier": phase.cpi_multiplier,
                "mem_fraction_multiplier": phase.mem_fraction_multiplier,
                "reuse_depth_multiplier": phase.reuse_depth_multiplier,
                "new_line_multiplier": phase.new_line_multiplier,
            }
            for phase in spec.phases
        ],
        "seed": spec.seed,
    }


def spec_from_dict(data: Dict) -> BenchmarkSpec:
    try:
        reuse = data["reuse"]
        return BenchmarkSpec(
            name=data["name"],
            base_cpi=data["base_cpi"],
            mem_ref_fraction=data["mem_ref_fraction"],
            reuse=ReuseProfile(
                buckets=tuple(
                    (int(depth), float(weight)) for depth, weight in reuse["buckets"]
                ),
                new_weight=float(reuse["new_weight"]),
            ),
            working_set_lines=data["working_set_lines"],
            mlp=data["mlp"],
            phases=tuple(PhaseSpec(**phase) for phase in data["phases"]),
            seed=data["seed"],
        )
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, WorkloadError):
            raise
        raise IngestError(f"bad benchmark spec in bundle: {error!r}") from None


# ---------------------------------------------------------------------------
# Fit reports <-> dict
# ---------------------------------------------------------------------------


def _phase_fit_to_dict(phase: PhaseFit) -> Dict:
    return {
        "index": phase.index,
        "fraction": phase.fraction,
        "num_samples": phase.num_samples,
        "target_miss_rate": phase.target_miss_rate,
        "replayed_miss_rate": phase.replayed_miss_rate,
        "target_access_rate": phase.target_access_rate,
        "replayed_access_rate": phase.replayed_access_rate,
        "target_cpi": phase.target_cpi,
        "replayed_cpi": phase.replayed_cpi,
    }


def _phase_fit_from_dict(data: Dict) -> PhaseFit:
    try:
        return PhaseFit(**data)
    except TypeError as error:
        raise IngestError(f"bad phase fit in bundle: {error}") from None


def core_fit_to_dict(fit: CoreFit) -> Dict:
    return {
        "core": fit.core,
        "spec": spec_to_dict(fit.spec),
        "phases": [_phase_fit_to_dict(phase) for phase in fit.phases],
        "coverage": fit.coverage,
        "num_samples": fit.num_samples,
    }


def core_fit_from_dict(data: Dict) -> CoreFit:
    try:
        return CoreFit(
            core=int(data["core"]),
            spec=spec_from_dict(data["spec"]),
            phases=tuple(_phase_fit_from_dict(phase) for phase in data["phases"]),
            coverage=float(data["coverage"]),
            num_samples=int(data["num_samples"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, WorkloadError):
            raise
        raise IngestError(f"bad core fit in bundle: {error!r}") from None


# ---------------------------------------------------------------------------
# The bundle itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FittedWorkload:
    """Everything ``repro ingest`` produced from one sample stream."""

    machine: MachineDescriptor
    options: FitOptions
    source_digest: str
    fits: Tuple[CoreFit, ...]

    @property
    def specs(self) -> List[BenchmarkSpec]:
        return [fit.spec for fit in self.fits]

    def to_dict(self) -> Dict:
        return {
            "format_version": FORMAT_VERSION,
            "machine": self.machine.to_dict(),
            "options": self.options.to_dict(),
            "source_digest": self.source_digest,
            "fits": [core_fit_to_dict(fit) for fit in self.fits],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FittedWorkload":
        if not isinstance(data, dict):
            raise IngestError("bundle must be a JSON object")
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise IngestError(
                f"unsupported bundle format_version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            machine = MachineDescriptor.from_dict(data["machine"])
            options = FitOptions.from_dict(data["options"])
            digest = str(data["source_digest"])
            fits = tuple(core_fit_from_dict(fit) for fit in data["fits"])
        except KeyError as error:
            raise IngestError(f"bundle is missing field {error.args[0]!r}") from None
        if not fits:
            raise IngestError("bundle contains no fitted cores")
        return cls(machine=machine, options=options, source_digest=digest, fits=fits)


def bundle_file(path: Union[str, Path]) -> Path:
    """Resolve a bundle argument: a directory means ``<dir>/bundle.json``."""
    path = Path(path)
    if path.is_dir():
        return path / BUNDLE_FILENAME
    return path


def write_bundle(workload: FittedWorkload, out_dir: Union[str, Path]) -> Path:
    """Write ``<out_dir>/bundle.json`` (creating the directory) and return its path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / BUNDLE_FILENAME
    atomic_write_json(path, workload.to_dict())
    return path


def load_bundle(path: Union[str, Path]) -> FittedWorkload:
    """Load a bundle from a directory (``bundle.json`` inside) or JSON file."""
    file_path = bundle_file(path)
    if not file_path.is_file():
        raise IngestError(f"bundle not found: {file_path}")
    data = read_json_tolerant(file_path)
    if data is None:
        raise IngestError(f"cannot parse bundle {file_path}: invalid JSON")
    return FittedWorkload.from_dict(data)
