"""Registry glue for the ``perf:`` workload family.

``perf:<path>`` turns a PMU sample file (or a pre-fitted bundle) into a
benchmark suite: one ``pmu-c<core>`` benchmark per profiled core.  Two
path shapes are accepted:

* a **sample file** (``.csv`` / ``.jsonl``): validated at spec-parse
  time (so malformed files fail at the CLI flag / service 400 layer),
  fitted lazily on first suite use;
* a **bundle** (a directory holding ``bundle.json``, or any ``.json``
  file): the output of ``repro ingest`` — no fitting at all.

Spec canonicalisation stamps a content digest of the source bytes into
the canonical string (``...,digest=ab12...``), exactly like ``inline:``
suites: the engine's cache keys and the profile store qualify every
artefact by the workload spec, so two different sample files at the
same path can never share a cache entry, and a spec whose digest no
longer matches the bytes on disk is rejected instead of silently
serving stale results.

This module is imported lazily by :mod:`repro.workloads.registry` (the
workloads package imports the registry at package-import time, and the
ingest package imports the workloads package — laziness breaks the
cycle).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Tuple

from repro.ingest.bundle import FittedWorkload, bundle_file, load_bundle
from repro.ingest.fit import FitOptions, fit_stream
from repro.ingest.samples import (
    IngestError,
    SampleStream,
    default_machine_path,
    load_samples,
)
from repro.workloads.suite import BenchmarkSuite


def is_bundle_path(path: Path) -> bool:
    """Bundles are directories (holding ``bundle.json``) or ``.json`` files."""
    return path.is_dir() or path.suffix.lower() == ".json"


def _digest(*chunks: bytes) -> str:
    hasher = hashlib.sha256()
    for chunk in chunks:
        hasher.update(chunk)
        hasher.update(b"\x1f")
    return hasher.hexdigest()[:12]


@dataclass(frozen=True)
class PerfSource:
    """A validated ``perf:`` path: its content digest and core count."""

    path: str
    digest: str
    num_cores: int
    is_bundle: bool


def inspect_perf_path(path_text: str) -> PerfSource:
    """Validate a ``perf:`` path and compute its content digest.

    Reads and *validates* the source (sample parsing or bundle schema)
    but never fits — this runs on every spec canonicalisation, i.e. on
    every ``--suite`` flag and every service request.
    """
    path = Path(path_text)
    if is_bundle_path(path):
        file_path = bundle_file(path)
        bundle = load_bundle(path)  # schema validation
        return PerfSource(
            path=path_text,
            digest=_digest(file_path.read_bytes()),
            num_cores=len(bundle.fits),
            is_bundle=True,
        )
    if not path.is_file():
        raise IngestError(f"sample file not found: {path}")
    machine_path = default_machine_path(path)
    if machine_path is None:
        raise IngestError(
            f"no machine descriptor for {path}: put one at "
            f"{path.stem}.machine.json or machine.json beside the samples"
        )
    stream = load_samples(path)  # full parse-time validation
    return PerfSource(
        path=path_text,
        digest=_digest(path.read_bytes(), machine_path.read_bytes()),
        num_cores=len(stream.cores),
        is_bundle=False,
    )


def _select_cores(
    specs: Tuple, benchmarks: Optional[int], what: str
) -> Tuple:
    if benchmarks is None:
        return specs
    if not 0 < benchmarks <= len(specs):
        raise IngestError(
            f"benchmarks={benchmarks} out of range: {what} has {len(specs)} core(s)"
        )
    return specs[:benchmarks]


def build_perf_suite(
    path_text: str,
    benchmarks: Optional[int] = None,
    seed: Optional[int] = None,
) -> BenchmarkSuite:
    """Build the fitted suite behind a canonical ``perf:`` spec.

    For bundles the stored specs are used as-is (``seed=`` re-seeds
    their trace RNG); for raw sample files the fit runs here, on first
    suite use — the expensive step is never on the spec-parsing path.
    """
    path = Path(path_text)
    if is_bundle_path(path):
        bundle = load_bundle(path)
        fits = _select_cores(tuple(bundle.fits), benchmarks, f"bundle {path}")
        specs = tuple(fit.spec for fit in fits)
        if seed is not None:
            specs = tuple(replace(spec, seed=seed) for spec in specs)
        return BenchmarkSuite(specs=specs)
    stream = load_samples(path)
    options = FitOptions(seed=seed if seed is not None else 0)
    fits = fit_stream(stream, options)
    fits = _select_cores(tuple(fits), benchmarks, f"sample stream {path}")
    return BenchmarkSuite(specs=tuple(fit.spec for fit in fits))


def ingest_to_bundle(
    samples_path: str,
    machine_path: Optional[str] = None,
    options: FitOptions = FitOptions(),
) -> Tuple[FittedWorkload, SampleStream]:
    """The full ingest pipeline: load, fit, and package as a bundle.

    Returns the fitted workload plus the parsed stream (the CLI prints
    per-core sample counts from it).
    """
    path = Path(samples_path)
    if not path.is_file():
        raise IngestError(f"sample file not found: {path}")
    resolved_machine = (
        Path(machine_path) if machine_path is not None else default_machine_path(path)
    )
    if resolved_machine is None:
        raise IngestError(
            f"no machine descriptor for {path}: put one at "
            f"{path.stem}.machine.json or machine.json beside the samples, "
            "or pass --machine"
        )
    stream = load_samples(path, machine=resolved_machine)
    fits = fit_stream(stream, options)
    workload = FittedWorkload(
        machine=stream.machine,
        options=options,
        source_digest=_digest(path.read_bytes(), resolved_machine.read_bytes()),
        fits=tuple(fits),
    )
    return workload, stream
