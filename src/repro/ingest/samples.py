"""PMU sample streams: the raw input of the real-trace ingestion path.

The input shape mirrors what a per-core PMU sampler captures (see
SNIPPETS.md §1, ``profile_core.c``: LLC-loads, LLC-misses and
instructions-retired read per core at a fixed sampling interval): a
CSV or JSONL file with one row per ``(core, sample window)`` —

``core, timestamp, llc_loads, llc_misses, instructions``

— plus a *machine descriptor* JSON describing the profiled machine's
cache geometry (in lines) and clock frequency.  The descriptor is what
lets the fitter translate observed LLC traffic into reuse depths and
timestamps into cycles.

Everything malformed raises :class:`IngestError`, a
:class:`~repro.workloads.benchmark.WorkloadError` subclass, so parse
failures surface as registry/CLI errors and service 400s with one
consistent message shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import CacheConfig, MachineConfig, MemoryConfig
from repro.workloads.benchmark import WorkloadError

#: Columns every sample row must carry (CSV header / JSONL keys).
REQUIRED_COLUMNS = ("core", "timestamp", "llc_loads", "llc_misses", "instructions")


class IngestError(WorkloadError):
    """Raised for malformed sample streams or machine descriptors."""


# ---------------------------------------------------------------------------
# Machine descriptor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineDescriptor:
    """The profiled machine, as the fitter needs to know it.

    Cache capacities are in *lines* (the unit reuse depths are measured
    in); ``frequency_ghz`` converts sample timestamps (seconds) into
    cycles.  ``cores`` optionally declares the core ids the stream may
    contain — a row naming any other core is rejected, which catches
    samplers that mixed streams from different sockets into one file.
    """

    name: str = "profiled"
    frequency_ghz: float = 2.0
    line_size: int = 64
    l1_lines: int = 32
    l1_associativity: int = 8
    l1_latency: int = 1
    l2_lines: int = 256
    l2_associativity: int = 8
    l2_latency: int = 10
    llc_lines: int = 512
    llc_associativity: int = 8
    llc_latency: int = 16
    memory_latency: int = 200
    cores: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise IngestError(f"frequency_ghz must be positive, got {self.frequency_ghz}")
        if self.line_size <= 0:
            raise IngestError(f"line_size must be positive, got {self.line_size}")
        for label, lines, ways in (
            ("l1", self.l1_lines, self.l1_associativity),
            ("l2", self.l2_lines, self.l2_associativity),
            ("llc", self.llc_lines, self.llc_associativity),
        ):
            if lines <= 0 or ways <= 0:
                raise IngestError(f"{label}: lines and associativity must be positive")
            if lines % ways != 0:
                raise IngestError(
                    f"{label}: {lines} lines cannot be divided into {ways}-way sets"
                )
        if not self.l1_lines < self.l2_lines < self.llc_lines:
            raise IngestError(
                "cache levels must grow: need l1_lines < l2_lines < llc_lines, got "
                f"{self.l1_lines} / {self.l2_lines} / {self.llc_lines}"
            )
        if self.memory_latency <= 0:
            raise IngestError(f"memory_latency must be positive, got {self.memory_latency}")

    @property
    def private_lines(self) -> int:
        """Capacity of the largest private level — the 'reaches the LLC' boundary."""
        return self.l2_lines

    def to_machine_config(self) -> MachineConfig:
        """A single-core :class:`MachineConfig` with this geometry (the fit machine)."""
        return MachineConfig(
            num_cores=1,
            private_levels=(
                CacheConfig(
                    name="L1D",
                    size_bytes=self.l1_lines * self.line_size,
                    associativity=self.l1_associativity,
                    line_size=self.line_size,
                    latency=self.l1_latency,
                ),
                CacheConfig(
                    name="L2",
                    size_bytes=self.l2_lines * self.line_size,
                    associativity=self.l2_associativity,
                    line_size=self.line_size,
                    latency=self.l2_latency,
                ),
            ),
            llc=CacheConfig(
                name="L3",
                size_bytes=self.llc_lines * self.line_size,
                associativity=self.llc_associativity,
                line_size=self.line_size,
                latency=self.llc_latency,
                shared=True,
            ),
            memory=MemoryConfig(latency=self.memory_latency),
            name=self.name,
        )

    @classmethod
    def from_machine(
        cls,
        machine: MachineConfig,
        cores: Sequence[int] = (),
        frequency_ghz: float = 2.0,
        name: Optional[str] = None,
    ) -> "MachineDescriptor":
        """Describe an in-repo machine (the synthesizer's inverse of
        :meth:`to_machine_config`)."""
        if len(machine.private_levels) != 2:
            raise IngestError(
                "MachineDescriptor models an L1/L2/LLC hierarchy; got "
                f"{len(machine.private_levels)} private levels"
            )
        l1, l2 = machine.private_levels
        return cls(
            name=name if name is not None else machine.name,
            frequency_ghz=frequency_ghz,
            line_size=machine.line_size,
            l1_lines=l1.num_lines,
            l1_associativity=l1.associativity,
            l1_latency=l1.latency,
            l2_lines=l2.num_lines,
            l2_associativity=l2.associativity,
            l2_latency=l2.latency,
            llc_lines=machine.llc.num_lines,
            llc_associativity=machine.llc.associativity,
            llc_latency=machine.llc.latency,
            memory_latency=machine.memory.latency,
            cores=tuple(cores),
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "frequency_ghz": self.frequency_ghz,
            "line_size": self.line_size,
            "l1_lines": self.l1_lines,
            "l1_associativity": self.l1_associativity,
            "l1_latency": self.l1_latency,
            "l2_lines": self.l2_lines,
            "l2_associativity": self.l2_associativity,
            "l2_latency": self.l2_latency,
            "llc_lines": self.llc_lines,
            "llc_associativity": self.llc_associativity,
            "llc_latency": self.llc_latency,
            "memory_latency": self.memory_latency,
            "cores": list(self.cores),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MachineDescriptor":
        if not isinstance(data, dict):
            raise IngestError("machine descriptor must be a JSON object")
        known = {key for key in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            raise IngestError(
                f"unknown machine descriptor field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "cores" in kwargs:
            try:
                kwargs["cores"] = tuple(int(core) for core in kwargs["cores"])
            except (TypeError, ValueError):
                raise IngestError("machine descriptor 'cores' must be a list of ints") from None
        try:
            return cls(**kwargs)
        except TypeError as error:
            raise IngestError(f"bad machine descriptor: {error}") from None


# ---------------------------------------------------------------------------
# Sample streams
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoreSamples:
    """One core's time series, already validated and delta-decoded.

    Arrays are per sample window, in time order.  ``cycles`` comes from
    the timestamp deltas and the descriptor's clock frequency (the
    first window is measured from t=0).
    """

    core: int
    timestamps: np.ndarray
    instructions: np.ndarray
    llc_loads: np.ndarray
    llc_misses: np.ndarray
    cycles: np.ndarray

    @property
    def num_samples(self) -> int:
        return len(self.timestamps)

    @property
    def total_instructions(self) -> int:
        return int(self.instructions.sum())


@dataclass(frozen=True)
class SampleStream:
    """A parsed PMU sample file: per-core series plus the machine."""

    machine: MachineDescriptor
    cores: Tuple[CoreSamples, ...]

    @property
    def core_ids(self) -> List[int]:
        return [core.core for core in self.cores]


def _to_int(value: object, column: str, row: int) -> int:
    try:
        number = int(float(value))  # tolerate "4000.0" from spreadsheet exports
    except (TypeError, ValueError):
        raise IngestError(
            f"row {row}: column {column!r} must be a number, got {value!r}"
        ) from None
    if number < 0:
        raise IngestError(f"row {row}: column {column!r} must be non-negative, got {number}")
    return number


def _to_float(value: object, column: str, row: int) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise IngestError(
            f"row {row}: column {column!r} must be a number, got {value!r}"
        ) from None


def _rows_from_csv(text: str) -> List[Dict[str, object]]:
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise IngestError("sample file is empty")
    header = [column.strip().lower() for column in lines[0].split(",")]
    missing = sorted(set(REQUIRED_COLUMNS) - set(header))
    if missing:
        raise IngestError(
            f"missing required column(s): {', '.join(missing)} "
            f"(expected a header with {', '.join(REQUIRED_COLUMNS)})"
        )
    rows: List[Dict[str, object]] = []
    for number, line in enumerate(lines[1:], start=2):
        values = [value.strip() for value in line.split(",")]
        if len(values) != len(header):
            raise IngestError(
                f"row {number}: expected {len(header)} values, got {len(values)}"
            )
        rows.append(dict(zip(header, values)))
    return rows


def _rows_from_jsonl(text: str) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise IngestError(f"row {number}: invalid JSON ({error.msg})") from None
        if not isinstance(record, dict):
            raise IngestError(f"row {number}: each JSONL line must be an object")
        missing = sorted(set(REQUIRED_COLUMNS) - set(record))
        if missing:
            raise IngestError(
                f"row {number}: missing required column(s): {', '.join(missing)}"
            )
        rows.append(record)
    if not rows:
        raise IngestError("sample file is empty")
    return rows


def parse_samples(
    text: str, machine: MachineDescriptor, fmt: str = "csv"
) -> SampleStream:
    """Parse CSV or JSONL sample text into a validated :class:`SampleStream`."""
    if fmt == "csv":
        rows = _rows_from_csv(text)
    elif fmt == "jsonl":
        rows = _rows_from_jsonl(text)
    else:
        raise IngestError(f"unknown sample format {fmt!r}; use 'csv' or 'jsonl'")

    per_core: Dict[int, List[Tuple[float, int, int, int]]] = {}
    known_cores = set(machine.cores)
    first_data_row = 2 if fmt == "csv" else 1
    for offset, record in enumerate(rows):
        row = first_data_row + offset
        core = _to_int(record["core"], "core", row)
        if known_cores and core not in known_cores:
            raise IngestError(
                f"row {row}: unknown core id {core}; the machine descriptor "
                f"declares cores {sorted(known_cores)}"
            )
        timestamp = _to_float(record["timestamp"], "timestamp", row)
        if timestamp < 0:
            raise IngestError(f"row {row}: timestamp must be non-negative, got {timestamp}")
        loads = _to_int(record["llc_loads"], "llc_loads", row)
        misses = _to_int(record["llc_misses"], "llc_misses", row)
        instructions = _to_int(record["instructions"], "instructions", row)
        if misses > loads:
            raise IngestError(
                f"row {row}: llc_misses ({misses}) exceeds llc_loads ({loads})"
            )
        per_core.setdefault(core, []).append((timestamp, instructions, loads, misses))

    cores: List[CoreSamples] = []
    cycles_per_second = machine.frequency_ghz * 1e9
    for core in sorted(per_core):
        series = per_core[core]
        timestamps = np.array([entry[0] for entry in series], dtype=np.float64)
        if np.any(np.diff(timestamps) <= 0):
            raise IngestError(
                f"core {core}: non-monotonic timestamps — samples must be "
                "strictly increasing in time per core"
            )
        instructions = np.array([entry[1] for entry in series], dtype=np.int64)
        if instructions.sum() <= 0:
            raise IngestError(f"core {core}: no instructions retired in any sample")
        cycles = np.diff(timestamps, prepend=0.0) * cycles_per_second
        cores.append(
            CoreSamples(
                core=core,
                timestamps=timestamps,
                instructions=instructions,
                llc_loads=np.array([entry[2] for entry in series], dtype=np.int64),
                llc_misses=np.array([entry[3] for entry in series], dtype=np.int64),
                cycles=cycles,
            )
        )
    return SampleStream(machine=machine, cores=tuple(cores))


# ---------------------------------------------------------------------------
# File-level loaders
# ---------------------------------------------------------------------------


def read_machine_descriptor(path: Union[str, Path]) -> MachineDescriptor:
    """Load a machine descriptor JSON file."""
    path = Path(path)
    if not path.is_file():
        raise IngestError(f"machine descriptor not found: {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise IngestError(f"cannot parse machine descriptor {path}: {error}") from None
    return MachineDescriptor.from_dict(data)


def default_machine_path(samples_path: Union[str, Path]) -> Optional[Path]:
    """The descriptor conventionally paired with a samples file.

    ``<stem>.machine.json`` next to the samples wins; a shared
    ``machine.json`` in the same directory is the fallback.
    """
    samples_path = Path(samples_path)
    sibling = samples_path.with_name(samples_path.stem + ".machine.json")
    if sibling.is_file():
        return sibling
    shared = samples_path.parent / "machine.json"
    if shared.is_file():
        return shared
    return None


def load_samples(
    samples_path: Union[str, Path],
    machine: Union[MachineDescriptor, str, Path, None] = None,
) -> SampleStream:
    """Load a sample file (+ its machine descriptor) from disk.

    ``machine`` may be a descriptor object, a path to one, or ``None``
    to use the :func:`default_machine_path` convention.  Format is
    picked by suffix: ``.jsonl`` is JSONL, everything else CSV.
    """
    samples_path = Path(samples_path)
    if not samples_path.is_file():
        raise IngestError(f"sample file not found: {samples_path}")
    if machine is None:
        machine_path = default_machine_path(samples_path)
        if machine_path is None:
            raise IngestError(
                f"no machine descriptor for {samples_path}: put one at "
                f"{samples_path.stem}.machine.json or machine.json beside the "
                "samples, or pass --machine"
            )
        descriptor = read_machine_descriptor(machine_path)
    elif isinstance(machine, MachineDescriptor):
        descriptor = machine
    else:
        descriptor = read_machine_descriptor(machine)
    fmt = "jsonl" if samples_path.suffix.lower() == ".jsonl" else "csv"
    return parse_samples(samples_path.read_text(encoding="utf-8"), descriptor, fmt=fmt)
