"""Fit phase-segmented :class:`BenchmarkSpec` models to PMU samples.

The fitter turns one core's sample series into a synthetic benchmark
whose vectorized-kernel replay reproduces the observed behaviour on the
profiled machine:

1. **Segment** the per-window (miss rate, access rate, CPI) series into
   phases (:mod:`repro.ingest.segment`).
2. **Anchor** a base :class:`~repro.workloads.benchmark.ReuseProfile`
   on the busiest phase.  The profile has three mass points placed by
   the machine descriptor's cache geometry: a near bucket (hits the
   private levels, never reaches the LLC), an LLC-hit bucket between
   the private capacity and the LLC capacity, and the new-line weight
   (LLC misses).  The observed LLC access rate sets how much mass
   reaches the LLC; the observed miss ratio splits that mass between
   the hit bucket and new lines.
3. **Solve per phase** for the three
   :class:`~repro.workloads.benchmark.PhaseSpec` knobs —
   ``new_line_multiplier`` from the phase's miss-odds ratio,
   ``mem_fraction_multiplier`` from its access rate, and
   ``cpi_multiplier`` from its non-memory CPI (observed CPI minus the
   exposed-latency estimate of its LLC traffic).
4. **Refine**: replay the candidate spec through the real
   :class:`~repro.simulators.single_core.SingleCoreSimulator` on the
   descriptor's machine, compare per-phase replayed rates against the
   targets, and apply clipped multiplicative corrections — a few
   rounds of coordinate descent against the very simulator that will
   consume the fitted workload.

The final replay's residuals become the fit report: per-phase target
vs replayed miss rate / access rate / CPI, plus per-core coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ingest.samples import CoreSamples, IngestError, MachineDescriptor, SampleStream
from repro.ingest.segment import Segment, segment_series
from repro.simulators.single_core import SingleCoreSimulator
from repro.workloads.benchmark import BenchmarkSpec, PhaseSpec, ReuseProfile
from repro.workloads.generator import TraceGenerator

#: Floor on the fitted non-memory CPI (a real core never reaches 0).
_MIN_BASE_CPI = 0.15
#: The trace generator caps the effective per-phase memory fraction here.
_MAX_MEM_FRACTION = 0.95
#: Floor on the effective per-phase memory fraction.  Trace cycles ride
#: on memory accesses, so a phase with (almost) no loads can produce
#: zero-cycle profiling intervals; phases with no *LLC* traffic keep a
#: normal load stream and suppress LLC reach via the reuse weights.
_MIN_MEM_FRACTION = 0.05
#: Miss rates are clipped here wherever they parameterise odds, so a
#: fully-streaming phase (miss rate 1.0) keeps a tiny hit-bucket weight
#: and the odds stay finite.
_MAX_MISS_RATE = 0.995


def _miss_odds(miss_rate: float) -> float:
    """Miss odds with the miss rate clipped to ``_MAX_MISS_RATE``."""
    clipped = min(max(miss_rate, 0.0), _MAX_MISS_RATE)
    return clipped / (1.0 - clipped)


@dataclass(frozen=True)
class FitOptions:
    """Knobs of the fitting pipeline (all deterministic)."""

    num_instructions: int = 120_000
    max_phases: int = 6
    min_phase_samples: int = 3
    min_gain: float = 0.04
    rounds: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_instructions <= 0:
            raise IngestError(f"num_instructions must be positive, got {self.num_instructions}")
        if self.max_phases < 1:
            raise IngestError(f"max_phases must be >= 1, got {self.max_phases}")
        if self.min_phase_samples < 1:
            raise IngestError(
                f"min_phase_samples must be >= 1, got {self.min_phase_samples}"
            )
        if self.min_gain < 0:
            raise IngestError(f"min_gain must be non-negative, got {self.min_gain}")
        if self.rounds < 0:
            raise IngestError(f"rounds must be non-negative, got {self.rounds}")

    @property
    def interval_instructions(self) -> int:
        """Replay interval length (the usual ~50-interval structure)."""
        return max(1, self.num_instructions // 50)

    def to_dict(self) -> Dict:
        return {
            "num_instructions": self.num_instructions,
            "max_phases": self.max_phases,
            "min_phase_samples": self.min_phase_samples,
            "min_gain": self.min_gain,
            "rounds": self.rounds,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FitOptions":
        try:
            return cls(**data)
        except TypeError as error:
            raise IngestError(f"bad fit options: {error}") from None


@dataclass(frozen=True)
class PhaseFit:
    """Per-phase fit residuals: what was asked for vs what replay gives."""

    index: int
    fraction: float
    num_samples: int
    target_miss_rate: float
    replayed_miss_rate: float
    target_access_rate: float
    replayed_access_rate: float
    target_cpi: float
    replayed_cpi: float

    @property
    def miss_rate_error(self) -> float:
        """Absolute miss-rate residual."""
        return abs(self.replayed_miss_rate - self.target_miss_rate)

    @property
    def access_rate_error(self) -> float:
        """Relative access-rate residual."""
        if self.target_access_rate <= 0:
            return abs(self.replayed_access_rate)
        return abs(self.replayed_access_rate - self.target_access_rate) / self.target_access_rate

    @property
    def cpi_error(self) -> float:
        """Relative CPI residual."""
        if self.target_cpi <= 0:
            return abs(self.replayed_cpi)
        return abs(self.replayed_cpi - self.target_cpi) / self.target_cpi

    @property
    def has_memory_traffic(self) -> bool:
        """Whether the phase has enough LLC traffic for a meaningful miss rate.

        A phase observed with fewer than one LLC access per 1,000
        instructions has no statistically meaningful miss rate; its
        residual is excluded from :attr:`CoreFit.max_miss_rate_error`.
        """
        return self.target_access_rate >= 1e-3


@dataclass(frozen=True)
class CoreFit:
    """One fitted core: the spec plus its fit-quality report."""

    core: int
    spec: BenchmarkSpec
    phases: Tuple[PhaseFit, ...]
    coverage: float
    num_samples: int

    @property
    def max_miss_rate_error(self) -> float:
        """Largest per-phase miss-rate residual, over phases with LLC traffic."""
        errors = [
            phase.miss_rate_error for phase in self.phases if phase.has_memory_traffic
        ]
        return max(errors) if errors else 0.0

    @property
    def max_access_rate_error(self) -> float:
        errors = [
            phase.access_rate_error for phase in self.phases if phase.has_memory_traffic
        ]
        return max(errors) if errors else 0.0

    @property
    def max_cpi_error(self) -> float:
        return max(phase.cpi_error for phase in self.phases)


@dataclass(frozen=True)
class _PhaseTargets:
    """Observed per-phase rates, instruction-weighted over a segment."""

    fraction: float
    num_samples: int
    access_rate: float  # LLC loads per instruction
    miss_rate: float  # LLC misses per LLC load
    cpi: float


def _phase_targets(samples: CoreSamples, segments: Sequence[Segment]) -> List[_PhaseTargets]:
    total_instructions = float(samples.instructions.sum())
    targets: List[_PhaseTargets] = []
    for segment in segments:
        sel = slice(segment.start, segment.stop)
        instructions = float(samples.instructions[sel].sum())
        loads = float(samples.llc_loads[sel].sum())
        misses = float(samples.llc_misses[sel].sum())
        cycles = float(samples.cycles[sel].sum())
        targets.append(
            _PhaseTargets(
                fraction=instructions / total_instructions,
                num_samples=segment.num_samples,
                access_rate=loads / instructions,
                miss_rate=misses / loads if loads else 0.0,
                cpi=cycles / instructions,
            )
        )
    # Phase fractions must sum to exactly 1 for BenchmarkSpec.
    correction = 1.0 - sum(target.fraction for target in targets[:-1])
    targets[-1] = replace(targets[-1], fraction=correction)
    return targets


def _base_reuse(
    machine: MachineDescriptor, access_rate: float, miss_rate: float
) -> Tuple[ReuseProfile, float]:
    """The base-phase reuse profile and memory-reference fraction.

    Three mass points anchored on the cache geometry: reuse depths in
    the near bucket stay inside the private levels; the hit bucket sits
    between the private capacity and the LLC capacity (an LLC hit in
    expectation); new lines miss the LLC.  ``access_rate`` fixes how
    much mass reaches the LLC given the memory-reference fraction, and
    ``miss_rate`` splits it between the hit bucket and new lines.
    """
    priv = machine.private_lines
    llc = machine.llc_lines
    near_depth = max(1, min(8, priv // 4))
    hit_low = max(near_depth + 1, priv + (llc - priv) // 2)
    hit_high = max(hit_low + 1, priv + 3 * (llc - priv) // 4)

    # mem_ref_fraction: enough headroom that the LLC-reaching share stays
    # below 1 even for the most access-heavy phase.
    mem_fraction = float(np.clip(4.0 * access_rate, 0.25, 0.6))
    mem_fraction = max(mem_fraction, min(0.9, access_rate / 0.98))
    reach = min(0.98, access_rate / mem_fraction)

    clipped_miss = min(max(miss_rate, 0.0), _MAX_MISS_RATE)
    new_weight = max(clipped_miss * reach, 1e-4)
    hit_weight = max((1.0 - clipped_miss) * reach, 1e-4)
    near_weight = max(1.0 - reach, 1e-3)
    profile = ReuseProfile(
        buckets=((near_depth, near_weight), (hit_low, 0.0), (hit_high, hit_weight)),
        new_weight=new_weight,
    )
    return profile, mem_fraction


def _exposed_memory_cpi(
    machine: MachineDescriptor, access_rate: float, miss_rate: float, mlp: float
) -> float:
    """Estimated memory CPI of the observed LLC traffic (exposed latency)."""
    per_access = (1.0 - miss_rate) * machine.llc_latency + miss_rate * machine.memory_latency
    return access_rate * per_access / mlp


def _initial_spec(
    core: int,
    machine: MachineDescriptor,
    targets: Sequence[_PhaseTargets],
    options: FitOptions,
) -> BenchmarkSpec:
    base_index = max(
        range(len(targets)), key=lambda i: (targets[i].fraction, -i)
    )
    base = targets[base_index]
    reuse, mem_fraction = _base_reuse(machine, base.access_rate, base.miss_rate)
    # Memory-level parallelism: high enough that every phase's exposed
    # memory cost fits under its observed CPI (streaming programs hide
    # most of their miss latency; a fixed low MLP would put the memory
    # CPI floor above the whole observed CPI).
    mlp = 1.5
    for target in targets:
        exposed_serial = _exposed_memory_cpi(
            machine, target.access_rate, target.miss_rate, 1.0
        )
        mlp = max(mlp, exposed_serial / max(target.cpi - _MIN_BASE_CPI, 0.05))
    mlp = float(min(mlp, 16.0))
    base_cpi = max(
        _MIN_BASE_CPI,
        base.cpi - _exposed_memory_cpi(machine, base.access_rate, base.miss_rate, mlp),
    )

    base_odds = max(_miss_odds(base.miss_rate), 1e-4)
    near_weight = reuse.buckets[0][1]

    phases: List[PhaseSpec] = []
    for target in targets:
        # new_line_multiplier: match the phase's miss odds exactly (the
        # base phase lands on a multiplier of 1 by construction).
        new_mult = float(np.clip(_miss_odds(target.miss_rate) / base_odds, 1e-3, 100.0))
        # mem_fraction_multiplier: match the phase's LLC access rate given
        # how much reuse mass now reaches the LLC.
        phase_new = reuse.new_weight * new_mult
        phase_reach = (reuse.buckets[-1][1] + phase_new) / (
            near_weight + reuse.buckets[-1][1] + phase_new
        )
        wanted = target.access_rate / max(mem_fraction * phase_reach, 1e-9)
        mem_mult = float(
            np.clip(
                wanted,
                _MIN_MEM_FRACTION / mem_fraction,
                _MAX_MEM_FRACTION / mem_fraction,
            )
        )
        # cpi_multiplier: match the phase's non-memory CPI.
        phase_base_cpi = max(
            _MIN_BASE_CPI,
            target.cpi
            - _exposed_memory_cpi(machine, target.access_rate, target.miss_rate, mlp),
        )
        phases.append(
            PhaseSpec(
                fraction=target.fraction,
                cpi_multiplier=phase_base_cpi / base_cpi,
                mem_fraction_multiplier=mem_mult,
                reuse_depth_multiplier=1.0,
                new_line_multiplier=new_mult,
            )
        )
    return BenchmarkSpec(
        name=f"pmu-c{core}",
        base_cpi=base_cpi,
        mem_ref_fraction=mem_fraction,
        reuse=reuse,
        working_set_lines=max(4 * machine.llc_lines, 2048),
        mlp=mlp,
        phases=tuple(phases),
        seed=options.seed,
    )


def _replay_rates(
    spec: BenchmarkSpec, machine: MachineDescriptor, options: FitOptions
) -> List[Tuple[float, float, float]]:
    """Replay ``spec`` on the fit machine; per-phase (access rate, miss rate, CPI)."""
    trace = TraceGenerator(
        num_instructions=options.num_instructions, seed=0, kernel="vectorized"
    ).generate(spec)
    run = SingleCoreSimulator(
        machine.to_machine_config(),
        interval_instructions=options.interval_instructions,
        kernel="vectorized",
    ).run(trace)
    boundaries = spec.phase_boundaries(options.num_instructions)
    sums = np.zeros((len(boundaries), 4), dtype=np.float64)  # insn, loads, misses, cycles
    position = 0
    for interval in run.intervals:
        midpoint = position + interval.instructions / 2.0
        phase = int(np.searchsorted(boundaries, midpoint, side="left"))
        phase = min(phase, len(boundaries) - 1)
        sums[phase] += (
            interval.instructions,
            interval.llc_accesses,
            interval.llc_misses,
            interval.cycles,
        )
        position += interval.instructions
    rates: List[Tuple[float, float, float]] = []
    for insn, loads, misses, cycles in sums:
        if insn <= 0:
            rates.append((0.0, 0.0, 0.0))
            continue
        rates.append(
            (loads / insn, misses / loads if loads else 0.0, cycles / insn)
        )
    return rates


def _odds_ratio(target: float, replayed: float) -> float:
    """Multiplicative correction that moves the replayed miss rate to the target."""
    if target <= 0:
        return 0.25  # drive the new-line weight down
    if replayed <= 0:
        return 4.0  # no misses replayed yet, push weight up
    return _miss_odds(target) / max(_miss_odds(replayed), 1e-4)


def _refine(
    spec: BenchmarkSpec,
    machine: MachineDescriptor,
    targets: Sequence[_PhaseTargets],
    options: FitOptions,
) -> BenchmarkSpec:
    mem_cap = _MAX_MEM_FRACTION / spec.mem_ref_fraction
    mem_floor = _MIN_MEM_FRACTION / spec.mem_ref_fraction
    for _ in range(options.rounds):
        rates = _replay_rates(spec, machine, options)
        phases: List[PhaseSpec] = []
        for phase, target, (access, miss, cpi) in zip(spec.phases, targets, rates):
            new_mult = phase.new_line_multiplier * float(
                np.clip(_odds_ratio(target.miss_rate, miss), 0.25, 4.0)
            )
            new_mult = float(np.clip(new_mult, 1e-3, 100.0))
            wanted = target.access_rate / access if access > 0 else 4.0
            mem_mult = phase.mem_fraction_multiplier * float(
                np.clip(wanted, 0.25, 4.0)
            )
            mem_mult = float(np.clip(mem_mult, mem_floor, mem_cap))
            # An access residual the clipped memory fraction cannot
            # absorb spills into the new-line weight: cold lines change
            # how many references reach the LLC at all.  The spill is
            # square-root damped (reach responds sublinearly to the
            # weight) and skipped when it would fight the miss-rate
            # correction — raising cold traffic raises the miss rate,
            # so only phases at or above their miss target may spill up.
            applied = mem_mult / phase.mem_fraction_multiplier
            leftover = wanted / applied
            if leftover < 1.0 or target.miss_rate >= miss - 1e-3:
                new_mult *= float(np.clip(leftover, 0.25, 4.0)) ** 0.5
                new_mult = float(np.clip(new_mult, 1e-3, 100.0))
            if cpi > 0:
                cpi_mult = phase.cpi_multiplier * float(
                    np.clip(target.cpi / cpi, 0.5, 2.0)
                )
            else:
                cpi_mult = phase.cpi_multiplier
            phases.append(
                replace(
                    phase,
                    cpi_multiplier=cpi_mult,
                    mem_fraction_multiplier=mem_mult,
                    new_line_multiplier=new_mult,
                )
            )
        spec = replace(spec, phases=tuple(phases))
    return spec


def fit_core(
    samples: CoreSamples, machine: MachineDescriptor, options: FitOptions = FitOptions()
) -> CoreFit:
    """Fit one core's sample series into a :class:`CoreFit`."""
    keep = samples.instructions > 0
    num_total = samples.num_samples
    instructions = samples.instructions[keep]
    loads = samples.llc_loads[keep]
    misses = samples.llc_misses[keep]
    cycles = samples.cycles[keep]
    if len(instructions) == 0:
        raise IngestError(f"core {samples.core}: no usable sample windows")
    kept = CoreSamples(
        core=samples.core,
        timestamps=samples.timestamps[keep],
        instructions=instructions,
        llc_loads=loads,
        llc_misses=misses,
        cycles=cycles,
    )
    features = np.stack(
        [
            misses / np.maximum(loads, 1),
            loads / instructions,
            cycles / instructions,
        ],
        axis=1,
    )
    segments = segment_series(
        features,
        max_phases=options.max_phases,
        min_samples=min(options.min_phase_samples, len(instructions)),
        min_gain=options.min_gain,
    )
    targets = _phase_targets(kept, segments)
    spec = _initial_spec(samples.core, machine, targets, options)
    spec = _refine(spec, machine, targets, options)

    rates = _replay_rates(spec, machine, options)
    phases = tuple(
        PhaseFit(
            index=index,
            fraction=target.fraction,
            num_samples=target.num_samples,
            target_miss_rate=target.miss_rate,
            replayed_miss_rate=miss,
            target_access_rate=target.access_rate,
            replayed_access_rate=access,
            target_cpi=target.cpi,
            replayed_cpi=cpi,
        )
        for index, (target, (access, miss, cpi)) in enumerate(zip(targets, rates))
    )
    return CoreFit(
        core=samples.core,
        spec=spec,
        phases=phases,
        coverage=len(instructions) / num_total,
        num_samples=num_total,
    )


def fit_stream(stream: SampleStream, options: FitOptions = FitOptions()) -> List[CoreFit]:
    """Fit every core of a sample stream (sorted by core id)."""
    if not stream.cores:
        raise IngestError("sample stream has no cores")
    return [fit_core(core, stream.machine, options) for core in stream.cores]
