"""Change-point segmentation of a PMU sample series into phases.

The fitter needs phases, not raw windows: a :class:`BenchmarkSpec`
models time-varying behaviour as a handful of
:class:`~repro.workloads.benchmark.PhaseSpec` segments, so the first
step of fitting is deciding where the observed behaviour actually
changes.

The algorithm is greedy recursive binary splitting on the per-window
feature vector (miss rate, access rate, CPI), each feature normalised
to unit scale so no single counter dominates.  Starting from one
segment covering the whole series, the split with the largest
sum-of-squared-error reduction is applied repeatedly, as long as the
gain exceeds ``min_gain`` of the root SSE, both halves keep at least
``min_samples`` windows, and the phase budget (``max_phases``) is not
exhausted.  Ties break on the lowest split position, so segmentation is
fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class Segment:
    """A half-open window range ``[start, stop)`` of one sample series."""

    start: int
    stop: int

    @property
    def num_samples(self) -> int:
        return self.stop - self.start


def _sse(prefix: np.ndarray, prefix_sq: np.ndarray, start: int, stop: int) -> float:
    """Within-segment SSE of ``features[start:stop]`` from cumulative sums."""
    count = stop - start
    if count <= 0:
        return 0.0
    total = prefix[stop] - prefix[start]
    total_sq = prefix_sq[stop] - prefix_sq[start]
    # sum((x - mean)^2) per feature = sum(x^2) - sum(x)^2 / n
    return float(np.sum(total_sq - total * total / count))


def _best_split(
    prefix: np.ndarray,
    prefix_sq: np.ndarray,
    start: int,
    stop: int,
    min_samples: int,
) -> Tuple[float, int]:
    """The split of ``[start, stop)`` with the largest SSE reduction.

    Returns ``(gain, split)``; ``gain`` is ``-inf`` when no admissible
    split exists.  Among equal gains the lowest split index wins.
    """
    parent = _sse(prefix, prefix_sq, start, stop)
    best_gain = -np.inf
    best_split = -1
    for split in range(start + min_samples, stop - min_samples + 1):
        gain = parent - (
            _sse(prefix, prefix_sq, start, split) + _sse(prefix, prefix_sq, split, stop)
        )
        if gain > best_gain + 1e-12:
            best_gain = gain
            best_split = split
    return best_gain, best_split


def _normalise(features: np.ndarray) -> np.ndarray:
    """Scale each feature column to unit standard deviation (flat columns stay 0)."""
    centred = features - features.mean(axis=0, keepdims=True)
    scale = centred.std(axis=0, keepdims=True)
    scale[scale == 0] = 1.0
    return centred / scale


def segment_series(
    features: np.ndarray,
    max_phases: int = 6,
    min_samples: int = 3,
    min_gain: float = 0.04,
) -> List[Segment]:
    """Segment a ``(num_windows, num_features)`` series into phases.

    Greedy top-down splitting: at each step the admissible split with
    the largest SSE gain (across all current segments) is applied, and
    splitting stops once the best gain drops below ``min_gain`` times
    the root SSE, the phase budget is reached, or no segment can be
    split without dropping below ``min_samples`` windows.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    num_windows = features.shape[0]
    if num_windows == 0:
        return []
    if max_phases < 1:
        raise ValueError(f"max_phases must be >= 1, got {max_phases}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")

    normalised = _normalise(features)
    zeros = np.zeros((1, normalised.shape[1]), dtype=np.float64)
    prefix = np.concatenate([zeros, np.cumsum(normalised, axis=0)])
    prefix_sq = np.concatenate([zeros, np.cumsum(normalised * normalised, axis=0)])

    root_sse = _sse(prefix, prefix_sq, 0, num_windows)
    threshold = min_gain * root_sse
    boundaries = [0, num_windows]
    while len(boundaries) - 1 < max_phases:
        best = (-np.inf, -1)
        for left, right in zip(boundaries, boundaries[1:]):
            gain, split = _best_split(prefix, prefix_sq, left, right, min_samples)
            # Strictly-greater keeps the earliest candidate on exact ties.
            if gain > best[0]:
                best = (gain, split)
        if best[1] < 0 or best[0] <= threshold or best[0] <= 0:
            break
        boundaries.append(best[1])
        boundaries.sort()
    return [Segment(start, stop) for start, stop in zip(boundaries, boundaries[1:])]
