"""Real-trace ingestion: PMU sample streams → fitted ``perf:`` workloads.

The subsystem has five layers, in pipeline order:

* :mod:`repro.ingest.samples` — parse CSV/JSONL per-core LLC-loads /
  LLC-misses / instructions-retired streams plus a machine descriptor,
  with structured :class:`IngestError`\\ s for everything malformed;
* :mod:`repro.ingest.segment` — change-point segmentation of the
  per-window series into phases;
* :mod:`repro.ingest.fit` — per-phase fitting of a
  :class:`~repro.workloads.benchmark.ReuseProfile` + access-rate/CPI
  model, refined against the real single-core replay kernel, with an
  explicit fit-quality report;
* :mod:`repro.ingest.bundle` — the on-disk fitted-workload artefact
  (``repro ingest ... --out DIR`` writes it, ``perf:DIR`` loads it);
* :mod:`repro.ingest.synth` — the inverse direction: synthesize
  PMU-shaped sample files from any existing benchmark, which is what
  lets CI close the loop without hardware.

:mod:`repro.ingest.workload` wires the pipeline into the workload
registry as the ``perf:<path>`` family.
"""

from repro.ingest.bundle import FittedWorkload, load_bundle, write_bundle
from repro.ingest.fit import CoreFit, FitOptions, PhaseFit, fit_core, fit_stream
from repro.ingest.samples import (
    CoreSamples,
    IngestError,
    MachineDescriptor,
    SampleStream,
    load_samples,
    parse_samples,
)
from repro.ingest.segment import Segment, segment_series
from repro.ingest.synth import synthesize_rows, write_samples

__all__ = [
    "CoreFit",
    "CoreSamples",
    "FitOptions",
    "FittedWorkload",
    "IngestError",
    "MachineDescriptor",
    "PhaseFit",
    "SampleStream",
    "Segment",
    "fit_core",
    "fit_stream",
    "load_bundle",
    "load_samples",
    "parse_samples",
    "segment_series",
    "synthesize_rows",
    "write_bundle",
    "write_samples",
]
