"""Synthesize PMU-shaped sample files from synthetic benchmarks.

The inverse of the ingest pipeline, and the thing that makes it
testable without hardware: take any existing :class:`BenchmarkSpec`,
replay it through the vectorized single-core kernel on a chosen
machine, and write the per-interval LLC-loads / LLC-misses /
instructions-retired series in exactly the CSV shape a real PMU
sampler produces — one "core" per benchmark, timestamps from the
simulated cycle counts and the descriptor's clock frequency.

CI's closed loop is: known profile → :func:`write_samples` →
``repro ingest`` → fitted ``perf:`` workload whose replayed rates match
the originals within tolerance.

Runnable directly::

    PYTHONPATH=src python -m repro.ingest.synth gamess soplex --out samples.csv
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.config.machine import MachineConfig
from repro.ingest.samples import REQUIRED_COLUMNS, MachineDescriptor
from repro.simulators.single_core import SingleCoreSimulator
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.generator import TraceGenerator


def synthesize_rows(
    specs: Sequence[BenchmarkSpec],
    machine: MachineConfig,
    num_instructions: int = 60_000,
    interval_instructions: int = 1_500,
    seed: int = 0,
    frequency_ghz: float = 2.0,
) -> List[Tuple[int, float, int, int, int]]:
    """Per-sample ``(core, timestamp, llc_loads, llc_misses, instructions)`` rows.

    Benchmark ``i`` becomes core ``i``; each profiling interval of its
    isolated run becomes one sample window, timestamped at the window's
    end by the simulated cycle count.
    """
    generator = TraceGenerator(
        num_instructions=num_instructions, seed=seed, kernel="vectorized"
    )
    simulator = SingleCoreSimulator(
        machine.single_core(),
        interval_instructions=interval_instructions,
        kernel="vectorized",
    )
    cycles_per_second = frequency_ghz * 1e9
    rows: List[Tuple[int, float, int, int, int]] = []
    for core, spec in enumerate(specs):
        run = simulator.run(generator.generate(spec))
        cycles = 0.0
        for interval in run.intervals:
            cycles += interval.cycles
            rows.append(
                (
                    core,
                    cycles / cycles_per_second,
                    interval.llc_accesses,
                    interval.llc_misses,
                    interval.instructions,
                )
            )
    return rows


def rows_to_csv(rows: Sequence[Tuple[int, float, int, int, int]]) -> str:
    lines = [",".join(REQUIRED_COLUMNS)]
    for core, timestamp, loads, misses, instructions in rows:
        lines.append(f"{core},{timestamp:.9f},{loads},{misses},{instructions}")
    return "\n".join(lines) + "\n"


def write_samples(
    specs: Sequence[BenchmarkSpec],
    machine: MachineConfig,
    out_path: Path,
    num_instructions: int = 60_000,
    interval_instructions: int = 1_500,
    seed: int = 0,
    frequency_ghz: float = 2.0,
) -> Tuple[Path, Path]:
    """Write a sample CSV plus its ``<stem>.machine.json`` descriptor.

    Returns ``(samples_path, machine_path)``; the descriptor declares
    exactly the synthesized core ids, so streams and descriptors that
    drift apart are caught at parse time.
    """
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    rows = synthesize_rows(
        specs,
        machine,
        num_instructions=num_instructions,
        interval_instructions=interval_instructions,
        seed=seed,
        frequency_ghz=frequency_ghz,
    )
    out_path.write_text(rows_to_csv(rows), encoding="utf-8")
    descriptor = MachineDescriptor.from_machine(
        machine.single_core(),
        cores=range(len(specs)),
        frequency_ghz=frequency_ghz,
    )
    machine_path = out_path.with_name(out_path.stem + ".machine.json")
    machine_path.write_text(
        json.dumps(descriptor.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out_path, machine_path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Synthesize a PMU-shaped sample CSV from suite benchmarks."
    )
    parser.add_argument("benchmarks", nargs="+", help="benchmark names from the suite")
    parser.add_argument("--out", required=True, type=Path, help="output CSV path")
    parser.add_argument("--suite", default="suite:spec29", help="workload spec to draw from")
    parser.add_argument("--llc-config", type=int, default=1, help="Table 2 LLC configuration")
    parser.add_argument("--scale", type=int, default=16, help="cache capacity scale divisor")
    parser.add_argument("--instructions", type=int, default=60_000)
    parser.add_argument("--interval-instructions", type=int, default=1_500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--frequency-ghz", type=float, default=2.0)
    args = parser.parse_args(argv)

    from repro.config.llc_configs import machine_with_llc
    from repro.config.scaling import scaled
    from repro.workloads.registry import workload_for

    try:
        suite = workload_for(args.suite).suite()
        specs = [suite[name] for name in args.benchmarks]
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    machine = scaled(machine_with_llc(args.llc_config, num_cores=1), args.scale)
    samples_path, machine_path = write_samples(
        specs,
        machine,
        args.out,
        num_instructions=args.instructions,
        interval_instructions=args.interval_instructions,
        seed=args.seed,
        frequency_ghz=args.frequency_ghz,
    )
    print(f"wrote {samples_path} and {machine_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
