"""Whole-machine configuration.

A :class:`MachineConfig` ties together the core configuration, the
private cache levels, the shared last-level cache and main memory, plus
the number of cores.  It is the single object that both the detailed
simulators and MPPM receive to know what machine they are targeting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.config.cache_config import CacheConfig, ConfigurationError, MemoryConfig, KIB
from repro.config.core_config import CoreConfig


def _default_private_levels() -> Tuple[CacheConfig, ...]:
    return (
        CacheConfig(name="L1D", size_bytes=32 * KIB, associativity=8, latency=1),
        CacheConfig(name="L2", size_bytes=256 * KIB, associativity=8, latency=10),
    )


@dataclass(frozen=True)
class MachineConfig:
    """Configuration of a multi-core machine.

    Parameters
    ----------
    num_cores:
        Number of cores; each core runs one program of the
        multi-program workload mix.
    core:
        The per-core pipeline configuration.
    private_levels:
        The private cache levels in access order (L1 data cache first,
        then L2).  The instruction cache is not modelled separately:
        the paper's workloads are data-cache bound and the model only
        acts on the shared LLC.
    llc:
        The shared last-level cache.  Must have ``shared=True``.
    memory:
        Main-memory latency.
    name:
        Optional label, e.g. ``"config #1"``; used in reports.
    """

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    private_levels: Tuple[CacheConfig, ...] = field(default_factory=_default_private_levels)
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L3", size_bytes=512 * KIB, associativity=8, latency=16, shared=True
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    name: str = "baseline"

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError(f"num_cores must be positive, got {self.num_cores}")
        if not self.llc.shared:
            raise ConfigurationError("the last-level cache must be marked shared=True")
        for level in self.private_levels:
            if level.shared:
                raise ConfigurationError(
                    f"private cache level {level.name} must not be marked shared"
                )
        line_sizes = {level.line_size for level in self.private_levels} | {self.llc.line_size}
        if len(line_sizes) != 1:
            raise ConfigurationError(
                f"all cache levels must use the same line size, got {sorted(line_sizes)}"
            )

    @property
    def line_size(self) -> int:
        """Cache-line size shared by all levels."""
        return self.llc.line_size

    @property
    def cache_levels(self) -> Tuple[CacheConfig, ...]:
        """All cache levels in access order (private levels, then the LLC)."""
        return self.private_levels + (self.llc,)

    def with_num_cores(self, num_cores: int) -> "MachineConfig":
        """Return a copy targeting a different core count."""
        return replace(self, num_cores=num_cores)

    def with_llc(self, llc: CacheConfig, name: str | None = None) -> "MachineConfig":
        """Return a copy with a different (shared) last-level cache."""
        if not llc.shared:
            llc = replace(llc, shared=True)
        return replace(self, llc=llc, name=name if name is not None else self.name)

    def single_core(self) -> "MachineConfig":
        """The same machine restricted to one core.

        Single-core profiling runs a benchmark in isolation on the same
        core architecture and cache hierarchy (paper §2): this helper
        produces that configuration.
        """
        return self.with_num_cores(1)

    def profile_key(self) -> str:
        """A stable string identifying everything the single-core profile depends on.

        Two machine configurations that differ only in the number of
        cores share the same profiles; the key therefore excludes
        ``num_cores``.
        """
        parts = [f"core=w{self.core.width}"]
        for level in self.cache_levels:
            parts.append(
                f"{level.name}:{level.size_bytes}:{level.associativity}:"
                f"{level.line_size}:{level.latency}"
            )
        parts.append(f"mem:{self.memory.latency}")
        return "|".join(parts)

    def describe(self) -> str:
        """Multi-line human-readable description of the machine."""
        lines = [f"{self.name}: {self.num_cores} cores, {self.core.width}-wide"]
        for level in self.cache_levels:
            lines.append("  " + level.describe())
        lines.append(f"  memory {self.memory.latency} cycles")
        return "\n".join(lines)
