"""Cache and memory configuration records.

A :class:`CacheConfig` describes one cache level: capacity,
associativity, line size, access latency and whether it is shared
between cores.  The record is immutable and hashable so that it can be
used as a cache key (the profile store keys profiles by the machine
configuration they were collected on).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


KIB = 1024
MIB = 1024 * KIB


class ConfigurationError(ValueError):
    """Raised when a machine/cache configuration is internally inconsistent."""


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of a single cache level.

    Parameters
    ----------
    name:
        Human-readable level name, e.g. ``"L1D"`` or ``"L3"``.
    size_bytes:
        Total capacity in bytes.
    associativity:
        Number of ways per set.  ``associativity == number of lines``
        makes the cache fully associative.
    line_size:
        Cache-line size in bytes (64 in the paper's setup).
    latency:
        Access (hit) latency in cycles.
    shared:
        Whether the cache is shared between all cores (the L3 in the
        paper) or private per core (L1/L2).
    """

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 64
    latency: int = 1
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{self.name}: size must be positive, got {self.size_bytes}")
        if self.line_size <= 0:
            raise ConfigurationError(f"{self.name}: line size must be positive, got {self.line_size}")
        if self.associativity <= 0:
            raise ConfigurationError(
                f"{self.name}: associativity must be positive, got {self.associativity}"
            )
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: latency must be non-negative, got {self.latency}")
        if self.size_bytes % self.line_size != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} is not a multiple of the line size {self.line_size}"
            )
        if self.num_lines % self.associativity != 0:
            raise ConfigurationError(
                f"{self.name}: {self.num_lines} lines cannot be divided into "
                f"{self.associativity}-way sets"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines divided by associativity)."""
        return self.num_lines // self.associativity

    @property
    def is_fully_associative(self) -> bool:
        return self.num_sets == 1

    def with_associativity(self, associativity: int) -> "CacheConfig":
        """Return a copy with a different associativity (same capacity).

        The paper notes that single-core profiles collected for a
        16-way LLC can be *derived* for an 8-way LLC without extra
        simulation; this helper builds the corresponding configuration.
        """
        return replace(self, associativity=associativity)

    def with_size(self, size_bytes: int) -> "CacheConfig":
        """Return a copy with a different capacity."""
        return replace(self, size_bytes=size_bytes)

    def with_latency(self, latency: int) -> "CacheConfig":
        """Return a copy with a different access latency."""
        return replace(self, latency=latency)

    def describe(self) -> str:
        """Human-readable one-line description, e.g. ``"L3 512KB 8-way 16cyc shared"``."""
        if self.size_bytes % MIB == 0:
            size = f"{self.size_bytes // MIB}MB"
        elif self.size_bytes % KIB == 0:
            size = f"{self.size_bytes // KIB}KB"
        else:
            size = f"{self.size_bytes}B"
        sharing = "shared" if self.shared else "private"
        return f"{self.name} {size} {self.associativity}-way {self.latency}cyc {sharing}"


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory configuration.

    The paper uses a flat 200-cycle memory latency (Table 1).
    """

    latency: int = 200

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ConfigurationError(f"memory latency must be positive, got {self.latency}")
