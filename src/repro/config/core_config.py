"""Core (pipeline) configuration.

The paper's Table 1 describes a 4-wide, 8-stage out-of-order core with
a 128-entry ROB and perfect branch prediction.  MPPM itself never looks
inside the core — it only consumes the single-core CPI and the memory
CPI — so the core configuration here is carried for completeness and
as input to the additive core timing model in :mod:`repro.cores`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cache_config import ConfigurationError


@dataclass(frozen=True)
class CoreConfig:
    """Configuration of one processor core.

    Parameters
    ----------
    width:
        Issue/commit width (instructions per cycle at peak).
    rob_entries:
        Reorder-buffer size; only used for documentation and for the
        sanity checks of the core timing model.
    pipeline_depth:
        Number of pipeline stages.
    max_loads_per_cycle, max_stores_per_cycle:
        Load/store issue limits (Table 1: two loads and one store).
    perfect_branch_prediction:
        The paper assumes perfect branch prediction; kept as a flag so
        the core model can optionally add a branch-misprediction CPI
        component.
    """

    width: int = 4
    rob_entries: int = 128
    pipeline_depth: int = 8
    max_loads_per_cycle: int = 2
    max_stores_per_cycle: int = 1
    perfect_branch_prediction: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"core width must be positive, got {self.width}")
        if self.rob_entries <= 0:
            raise ConfigurationError(f"ROB size must be positive, got {self.rob_entries}")
        if self.pipeline_depth <= 0:
            raise ConfigurationError(
                f"pipeline depth must be positive, got {self.pipeline_depth}"
            )
        if self.max_loads_per_cycle <= 0 or self.max_stores_per_cycle <= 0:
            raise ConfigurationError("load/store issue limits must be positive")

    @property
    def ideal_cpi(self) -> float:
        """CPI of a perfectly scheduled instruction stream (1 / width)."""
        return 1.0 / self.width
