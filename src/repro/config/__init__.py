"""Machine configuration objects.

This package models the processor configuration of the paper's Table 1
(baseline core, private L1 instruction/data caches, private L2, shared
L3, main memory) and Table 2 (the six last-level-cache design points
that the design-space experiments of Sections 5 and 6 rank against
each other).

The central type is :class:`MachineConfig`, a frozen description of a
multi-core machine: one :class:`CoreConfig`, per-level
:class:`CacheConfig` objects and a :class:`MemoryConfig`.  Experiment
code obtains the paper's configurations from
:func:`baseline_machine` and :func:`llc_design_space`, optionally
scaled down with :func:`scaled` so that short synthetic traces exercise
the hierarchy the way the paper's 1B-instruction traces exercise the
real sizes (see DESIGN.md, "Substitutions").
"""

from repro.config.cache_config import CacheConfig, MemoryConfig
from repro.config.core_config import CoreConfig
from repro.config.machine import MachineConfig
from repro.config.llc_configs import (
    LLC_CONFIGS,
    baseline_machine,
    llc_design_space,
    machine_with_llc,
)
from repro.config.scaling import scaled, scale_cache

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "CoreConfig",
    "MachineConfig",
    "LLC_CONFIGS",
    "baseline_machine",
    "llc_design_space",
    "machine_with_llc",
    "scaled",
    "scale_cache",
]
