"""The paper's baseline machine (Table 1) and LLC design space (Table 2).

Table 2 of the paper lists six shared last-level-cache configurations
that the design-space experiments of Sections 5 and 6 rank against each
other:

======== ======= ============== ========
config    size    associativity  latency
======== ======= ============== ========
 #1       512KB        8            16
 #2       512KB       16            20
 #3         1MB        8            18
 #4         1MB       16            22
 #5         2MB        8            20
 #6         2MB       16            24
======== ======= ============== ========

Configuration #1 (the smallest LLC) is the default for accuracy
experiments "to stress the model"; configuration #4 is used for the
16-core experiments.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.cache_config import CacheConfig, KIB, MIB
from repro.config.machine import MachineConfig


def _llc(size_bytes: int, associativity: int, latency: int) -> CacheConfig:
    return CacheConfig(
        name="L3",
        size_bytes=size_bytes,
        associativity=associativity,
        latency=latency,
        shared=True,
    )


#: The six LLC design points of Table 2, keyed by configuration number.
LLC_CONFIGS: Dict[int, CacheConfig] = {
    1: _llc(512 * KIB, 8, 16),
    2: _llc(512 * KIB, 16, 20),
    3: _llc(1 * MIB, 8, 18),
    4: _llc(1 * MIB, 16, 22),
    5: _llc(2 * MIB, 8, 20),
    6: _llc(2 * MIB, 16, 24),
}


def baseline_machine(num_cores: int = 4, llc_config: int = 1) -> MachineConfig:
    """The baseline machine of Table 1 with one of Table 2's LLCs.

    Parameters
    ----------
    num_cores:
        Number of cores (the paper evaluates 2, 4, 8 and 16).
    llc_config:
        Which Table 2 configuration to use for the shared L3
        (1 is the paper's default, 4 is used for 16 cores).
    """
    return machine_with_llc(llc_config, num_cores=num_cores)


def machine_with_llc(llc_config: int, num_cores: int = 4) -> MachineConfig:
    """Baseline machine with the given Table 2 LLC configuration."""
    if llc_config not in LLC_CONFIGS:
        raise KeyError(
            f"unknown LLC configuration #{llc_config}; valid choices are {sorted(LLC_CONFIGS)}"
        )
    return MachineConfig(
        num_cores=num_cores,
        llc=LLC_CONFIGS[llc_config],
        name=f"config #{llc_config}",
    )


def llc_design_space(num_cores: int = 4) -> List[MachineConfig]:
    """All six Table 2 machines, in configuration order (#1 .. #6)."""
    return [machine_with_llc(i, num_cores=num_cores) for i in sorted(LLC_CONFIGS)]
