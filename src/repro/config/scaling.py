"""Scaling of machine configurations to short synthetic traces.

The paper simulates 1B-instruction SimPoints against 32KB L1 caches and
512KB–2MB shared L3 caches.  Our synthetic traces are much shorter (a
few hundred thousand instructions) so, unscaled, they would barely warm
up a 2MB LLC and contention would vanish.  The experiment harness
therefore scales every cache capacity down by a common factor while
keeping associativities, latencies and capacity *ratios* intact.  The
contention behaviour MPPM models depends on the ratio of the combined
working sets to the LLC capacity and on the associativity, both of
which survive this joint scaling (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.cache_config import CacheConfig, ConfigurationError
from repro.config.machine import MachineConfig


def scale_cache(cache: CacheConfig, scale: int) -> CacheConfig:
    """Scale one cache level's capacity down by ``scale``.

    The scaled cache keeps the line size, associativity and latency of
    the original; only the number of sets shrinks.  The capacity must
    remain at least one full set.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if scale == 1:
        return cache
    min_size = cache.line_size * cache.associativity
    new_size = cache.size_bytes // scale
    if new_size < min_size:
        new_size = min_size
    # Round down to a whole number of sets.
    set_bytes = cache.line_size * cache.associativity
    new_size = max(set_bytes, (new_size // set_bytes) * set_bytes)
    return replace(cache, size_bytes=new_size)


def scaled(machine: MachineConfig, scale: int) -> MachineConfig:
    """Scale all cache capacities of ``machine`` down by ``scale``.

    Latencies, associativities, core parameters and the memory latency
    are untouched.  ``scale == 1`` returns the machine unchanged.
    """
    if scale == 1:
        return machine
    return replace(
        machine,
        private_levels=tuple(scale_cache(level, scale) for level in machine.private_levels),
        llc=scale_cache(machine.llc, scale),
        name=f"{machine.name} (1/{scale} scale)",
    )
