"""Section 1: the multi-program workload-space explosion.

The paper motivates MPPM with the number of possible multi-program
workloads: for 29 SPEC CPU2006 benchmarks there are 435 two-program
mixes, 35,960 four-program mixes and more than 30.2 million
eight-program mixes, so exhaustive detailed simulation is infeasible.
This experiment recomputes those counts, together with the simulation
time they would imply at the detailed-simulation speeds measured on
this machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.experiments.reporting import format_table
from repro.experiments.setup import ExperimentSetup
from repro.workloads import count_mixes


@dataclass(frozen=True)
class WorkloadSpaceReport:
    """Counts of possible multi-program workloads per core count."""

    num_benchmarks: int
    rows: List[Mapping[str, object]]

    def to_rows(self) -> List[Mapping[str, object]]:
        return list(self.rows)

    def render(self) -> str:
        return format_table(
            self.rows,
            columns=["cores", "possible_mixes", "paper_reports"],
            title=(
                f"Multi-program workload space for {self.num_benchmarks} benchmarks "
                "(combinations with repetition):"
            ),
            float_format="{:.0f}",
        )


#: The counts quoted in the paper's introduction for 29 benchmarks.
PAPER_COUNTS = {2: "435", 4: "35,960", 8: "more than 30.2 million"}


def workload_space_report(
    setup: ExperimentSetup, core_counts: List[int] = (2, 4, 8, 16)
) -> WorkloadSpaceReport:
    """Count all possible mixes of the setup's suite for each core count."""
    num_benchmarks = len(setup.suite)
    rows = []
    for cores in core_counts:
        rows.append(
            {
                "cores": cores,
                "possible_mixes": count_mixes(num_benchmarks, cores),
                "paper_reports": PAPER_COUNTS.get(cores, "-"),
            }
        )
    return WorkloadSpaceReport(num_benchmarks=num_benchmarks, rows=rows)
